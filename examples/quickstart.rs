//! Quickstart: build a world, run a short campaign, print the headline
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the 30-second tour of the library: one simulated Internet,
//! one measurement campaign (3 rounds), and the paper's Fig.-2 headline
//! — what fraction of endpoint pairs each relay type improves.

use colo_shortcuts::core::analysis::improvement::ImprovementAnalysis;
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::core::RelayType;

fn main() {
    // A deterministic synthetic Internet: ~1.3k ASes, ~140 colocation
    // facilities, RIPE-Atlas-style probes, PlanetLab sites, Looking
    // Glasses and the stale 2015 facility dataset.
    println!("building world ...");
    let world = World::build(&WorldConfig::paper_scale(), 7);
    println!(
        "  {} ASes, {} facilities, {} IXPs, {} hosts",
        world.topo.as_count(),
        world.topo.facilities().len(),
        world.topo.ixps().len(),
        world.hosts.len()
    );

    // The paper's measurement campaign, shortened to 3 rounds (the full
    // study ran 45 rounds, one every 12 hours).
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = 3;
    println!("running {}-round campaign ...", cfg.rounds);
    let results = Campaign::new(&world, cfg).run();
    println!(
        "  {} cases measured with {:.1} M pings",
        results.total_cases(),
        results.pings_sent as f64 / 1e6
    );

    // Fig. 2 headline: fraction of cases each relay type improves.
    let analysis = ImprovementAnalysis::compute(&results);
    println!("\nfraction of endpoint pairs improved vs the direct BGP path:");
    for t in RelayType::ALL {
        let ti = analysis.for_type(t);
        println!(
            "  {:<10} {:>5.1}%   (median improvement {:.1} ms)",
            t.label(),
            100.0 * ti.improved_fraction,
            ti.median_improvement_ms
        );
    }
    println!("\nColo-hosted relays (COR) should come out on top — that is the paper's result.");
}
