//! Trading-overlay scenario: shave milliseconds off a fixed set of
//! financial routes.
//!
//! ```sh
//! cargo run --release --example trading_overlay
//! ```
//!
//! The paper opens with the cost of a millisecond to electronic-trading
//! platforms. This example takes the classic financial city pairs,
//! places one endpoint host in an eyeball AS of each metro, and asks —
//! for each route — which single colo relay minimizes RTT and how many
//! milliseconds it saves over the direct BGP path. It exercises the
//! lower-level API: hand-picked hosts, explicit ping windows, manual
//! stitching.

use colo_shortcuts::core::colo::{run_pipeline, ColoPipelineConfig};
use colo_shortcuts::core::feasibility::is_feasible;
use colo_shortcuts::core::measure::{measure_pair, stitch, WindowConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::netsim::clock::SimTime;
use colo_shortcuts::netsim::HostId;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTES: &[(&str, &str)] = &[
    ("NewYork", "London"),
    ("Chicago", "Frankfurt"),
    ("London", "Tokyo"),
    ("NewYork", "SaoPaulo"),
    ("Frankfurt", "Singapore"),
    ("Chicago", "Tokyo"),
];

fn main() {
    let world = World::build(&WorldConfig::paper_scale(), 1234);
    let engine = world.shared().engine(Default::default());
    let mut rng = StdRng::seed_from_u64(42);

    // Verified colo relays (the §2.2 pipeline).
    let vantage = world.looking_glasses.lgs()[0].host;
    let colo = run_pipeline(
        &world,
        &*engine,
        vantage,
        SimTime(0.0),
        &ColoPipelineConfig::default(),
        &mut rng,
    );
    println!(
        "relay pool: {} verified colo interfaces in {} facilities\n",
        colo.relays.len(),
        colo.facility_count()
    );

    // One probe host per metro: the first RIPE Atlas probe in the city.
    let probe_in = |city_name: &str| -> Option<HostId> {
        let city = world.topo.cities.by_name(city_name)?;
        world
            .ripe
            .probes()
            .iter()
            .find(|p| p.city == city.id)
            .map(|p| p.host)
    };

    let window = WindowConfig::default();
    println!(
        "{:<24} {:>10} {:>10} {:>8}  via",
        "route", "direct", "relayed", "saved"
    );
    for &(a_name, b_name) in ROUTES {
        let (Some(a), Some(b)) = (probe_in(a_name), probe_in(b_name)) else {
            println!("{a_name:<12} -> {b_name:<12}  no probe available");
            continue;
        };
        let Some(direct) = measure_pair(&*engine, a, b, SimTime(0.0), &window, &mut rng) else {
            println!("{a_name:<12} -> {b_name:<12}  unresponsive");
            continue;
        };
        let (sa, sb) = (world.hosts.get(a).location, world.hosts.get(b).location);

        // Feasible colo relays only, then measure both legs and stitch.
        let mut best: Option<(f64, String)> = None;
        for relay in &colo.relays {
            let loc = world.hosts.get(relay.host).location;
            if !is_feasible(&sa, &sb, &loc, direct) {
                continue;
            }
            let (Some(l1), Some(l2)) = (
                measure_pair(&*engine, a, relay.host, SimTime(0.0), &window, &mut rng),
                measure_pair(&*engine, b, relay.host, SimTime(0.0), &window, &mut rng),
            ) else {
                continue;
            };
            let rtt = stitch(l1, l2);
            if best.as_ref().is_none_or(|(b_rtt, _)| rtt < *b_rtt) {
                let fac = world.topo.facility(relay.facility);
                let city = world.topo.cities.get(fac.city);
                best = Some((rtt, format!("{} ({})", fac.name, city.name)));
            }
        }

        match best {
            Some((rtt, via)) if rtt < direct => println!(
                "{:<24} {:>8.1}ms {:>8.1}ms {:>+7.1}  {via}",
                format!("{a_name} -> {b_name}"),
                direct,
                rtt,
                direct - rtt
            ),
            _ => println!(
                "{:<24} {:>8.1}ms {:>10} {:>8}  direct path already optimal",
                format!("{a_name} -> {b_name}"),
                direct,
                "-",
                "-"
            ),
        }
    }
}
