//! VoIP provider scenario: pick relay sites for a Skype-like service.
//!
//! ```sh
//! cargo run --release --example voip_provider
//! ```
//!
//! The paper's intro motivates overlays with real-time applications;
//! ITU G.114 treats RTTs above ~320 ms as bad for calls. This example
//! plays the role of a VoIP provider that can afford to rent VMs in a
//! handful of colocation facilities and asks:
//!
//! 1. How many of my user-pair calls are over the 320 ms cliff on the
//!    direct Internet path?
//! 2. If I deploy relays in the best k facilities, how far does that
//!    fraction drop, and which facilities should I rent in?

use colo_shortcuts::core::analysis::top_relays::TopRelayAnalysis;
use colo_shortcuts::core::analysis::voip::VOIP_THRESHOLD_MS;
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::core::RelayType;
use std::collections::{HashMap, HashSet};

fn main() {
    let world = World::build(&WorldConfig::paper_scale(), 99);
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = 4;
    println!("measuring call paths ({} rounds) ...", cfg.rounds);
    let results = Campaign::new(&world, cfg).run();

    let total = results.total_cases() as f64;
    let bad_direct = results
        .cases
        .iter()
        .filter(|c| c.direct_ms > VOIP_THRESHOLD_MS)
        .count() as f64;
    println!(
        "\ndirect paths over {VOIP_THRESHOLD_MS} ms: {:.1}% of {} call pairs",
        100.0 * bad_direct / total,
        results.total_cases()
    );

    // Rank COR relays, group the best ones by facility, and evaluate
    // deployments of growing size.
    let ranking = TopRelayAnalysis::compute(&results, RelayType::Cor, 200);
    println!(
        "\n{:>12} {:>16} {:>22}",
        "#facilities", "bad calls left", "relative reduction"
    );
    for k_fac in [1usize, 2, 4, 6, 10] {
        // Greedily take top relays until k facilities are covered.
        let mut facilities: HashSet<_> = HashSet::new();
        let mut allowed: HashSet<_> = HashSet::new();
        for &(host, _) in &ranking.ranked {
            let Some(meta) = results.relay_meta.get(&host) else {
                continue;
            };
            let Some(f) = meta.facility else { continue };
            if facilities.len() >= k_fac && !facilities.contains(&f) {
                continue;
            }
            facilities.insert(f);
            allowed.insert(host);
        }
        let bad_with = results
            .cases
            .iter()
            .filter(|c| {
                let best = c
                    .outcome(RelayType::Cor)
                    .improving
                    .iter()
                    .filter(|(h, _)| allowed.contains(h))
                    .map(|&(_, imp)| f64::from(imp))
                    .fold(0.0_f64, f64::max);
                c.direct_ms - best > VOIP_THRESHOLD_MS
            })
            .count() as f64;
        println!(
            "{:>12} {:>15.1}% {:>21.1}%",
            k_fac,
            100.0 * bad_with / total,
            100.0 * (1.0 - bad_with / bad_direct.max(1.0))
        );
    }

    // Name the facilities a 6-site deployment would rent in.
    let mut chosen: Vec<(String, usize)> = {
        let mut per_fac: HashMap<_, usize> = HashMap::new();
        for &(host, count) in &ranking.ranked {
            if let Some(f) = results.relay_meta.get(&host).and_then(|m| m.facility) {
                *per_fac.entry(f).or_default() += count;
            }
        }
        let mut v: Vec<_> = per_fac.into_iter().collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v.into_iter()
            .take(6)
            .map(|(f, n)| {
                let fac = world.topo.facility(f);
                let city = world.topo.cities.get(fac.city);
                (format!("{} in {}", fac.name, city.name), n)
            })
            .collect()
    };
    println!("\nrecommended 6-facility deployment:");
    for (name, improvements) in chosen.drain(..) {
        println!("  {name:<40} ({improvements} call improvements observed)");
    }
}
