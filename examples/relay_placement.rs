//! Relay-placement study: where should the next relay go?
//!
//! ```sh
//! cargo run --release --example relay_placement
//! ```
//!
//! The paper's second research question is *where to place relays*.
//! This example runs a short campaign and then greedily builds a relay
//! deployment one facility at a time (maximum marginal coverage),
//! printing the coverage curve — the practical "how many colos do I
//! need?" answer, and a direct application of the Fig.-3 analysis.

use colo_shortcuts::core::workflow::{Campaign, CampaignConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::core::RelayType;
use colo_shortcuts::netsim::HostId;
use colo_shortcuts::topology::FacilityId;
use std::collections::{HashMap, HashSet};

fn main() {
    let world = World::build(&WorldConfig::paper_scale(), 31);
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = 4;
    println!("running {}-round campaign ...", cfg.rounds);
    let results = Campaign::new(&world, cfg).run();
    let total = results.total_cases() as f64;

    // For each facility: the set of cases improved by any of its relays.
    let mut by_facility: HashMap<FacilityId, HashSet<u32>> = HashMap::new();
    for (idx, case) in results.cases.iter().enumerate() {
        for &(host, _) in &case.outcome(RelayType::Cor).improving {
            let Some(meta) = results.relay_meta.get(&host) else {
                continue;
            };
            let Some(f) = meta.facility else { continue };
            by_facility.entry(f).or_default().insert(idx as u32);
        }
    }
    println!(
        "{} facilities contributed at least one improvement\n",
        by_facility.len()
    );

    // Greedy max-coverage: repeatedly take the facility adding the most
    // not-yet-covered cases.
    let mut covered: HashSet<u32> = HashSet::new();
    let mut remaining: HashMap<FacilityId, HashSet<u32>> = by_facility.clone();
    println!(
        "{:>4} {:<28} {:<14} {:>10} {:>12}",
        "k", "facility", "city", "marginal", "cumulative"
    );
    for k in 1..=12 {
        let Some((&best_f, _)) = remaining
            .iter()
            .max_by_key(|(f, cases)| {
                let marginal = cases.difference(&covered).count();
                (marginal, std::cmp::Reverse(f.0)) // deterministic ties
            })
            .filter(|(_, cases)| !cases.is_disjoint(&covered) || !cases.is_empty())
        else {
            break;
        };
        let marginal = remaining[&best_f].difference(&covered).count();
        if marginal == 0 {
            break;
        }
        covered.extend(remaining[&best_f].iter().copied());
        remaining.remove(&best_f);
        let fac = world.topo.facility(best_f);
        let city = world.topo.cities.get(fac.city);
        println!(
            "{:>4} {:<28} {:<14} {:>9.1}% {:>11.1}%",
            k,
            fac.name,
            city.name,
            100.0 * marginal as f64 / total,
            100.0 * covered.len() as f64 / total
        );
    }

    // How many relays is that, really?
    let relays_in_covered: usize = results
        .relay_meta
        .iter()
        .filter(|(_, m)| {
            m.rtype == RelayType::Cor && m.facility.is_some_and(|f| !remaining.contains_key(&f))
        })
        .count();
    let _type_check: Vec<HostId> = Vec::new();
    println!(
        "\nthe greedy deployment uses {} relay interfaces; the paper found 10 relays in 6 large Colos capture ~58% of all cases",
        relays_in_covered
    );
}
