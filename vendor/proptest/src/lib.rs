//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the surface the workspace's property tests use:
//! [`proptest!`], [`prop_compose!`], `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, [`ProptestConfig`], numeric-range and tuple
//! strategies, `prop::bool::ANY` and `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! - no shrinking — a failing case panics with the already-sampled
//!   values in scope (the deterministic per-test RNG makes failures
//!   reproducible: the seed is derived from the test's file and name);
//! - `prop_assume!` skips the current case instead of discarding and
//!   resampling (cases are cheap; the distributions here don't rely on
//!   rejection tuning);
//! - `PROPTEST_CASES` overrides the case count globally.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::test_runner::case_count(__cfg.cases);
            let mut __rng =
                $crate::test_runner::rng_for(concat!(file!(), "::", stringify!($name)));
            for __case in 0..__cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                // The body runs in a closure so `prop_assume!` can skip
                // the rest of the case with a plain `return`.
                let mut __one_case = || $body;
                __one_case();
            }
        }
    )*};
}

/// Defines a function returning a composite [`strategy::Strategy`].
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ( $($outer:tt)* )
        ( $($pat:pat in $strat:expr),* $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::SFn::new(move |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Asserts inside a property test (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, proptest};

    /// The `prop::…` namespace (`prop::collection::vec` et al.).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..100, b in 0u32..100) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -1.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn composed_strategies_work(p in arb_pair()) {
            prop_assert!(p.0 < 100 && p.1 < 100);
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }

        #[test]
        fn mut_patterns_work(mut v in prop::collection::vec(0u32..5, 1..4)) {
            v.push(9);
            prop_assert_eq!(*v.last().expect("non-empty"), 9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
