//! Deterministic per-test RNG derivation and case-count control.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG for one property test, seeded from its qualified name so each
/// test gets a stable, independent stream across runs and processes.
pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(fnv1a(name.as_bytes()))
}

/// Case count: the config's value unless `PROPTEST_CASES` overrides it.
pub fn case_count(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_distinct_streams() {
        use rand::RngCore;
        let mut a = rng_for("test_a");
        let mut b = rng_for("test_b");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fnv_matches_reference() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }
}
