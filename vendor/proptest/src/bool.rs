//! Boolean strategies (`proptest::bool` subset).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly samples `true`/`false`.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The canonical boolean strategy (`prop::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Samples `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    Weighted { p }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..200).filter(|_| ANY.sample(&mut rng)).count();
        assert!((50..150).contains(&trues), "{trues} of 200");
    }

    #[test]
    fn weighted_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..1000).filter(|_| weighted(0.9).sample(&mut rng)).count();
        assert!(trues > 800, "{trues} of 1000 at p=0.9");
        assert!((0..1000).all(|_| !weighted(0.0).sample(&mut rng)));
    }
}
