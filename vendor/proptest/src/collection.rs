//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `elem` with length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_cover_range() {
        let s = vec(0u32..10, 1..5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            lens.insert(v.len());
        }
        assert_eq!(lens.len(), 4, "all lengths 1..5 should appear");
    }

    #[test]
    fn fixed_size_from_usize() {
        let s = vec(0.0f64..1.0, 7usize);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(s.sample(&mut rng).len(), 7);
    }
}
