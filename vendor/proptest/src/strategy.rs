//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),*)),*) => {$(
        impl<$($S: Strategy),*> Strategy for ($($S,)*) {
            type Value = ($($S::Value,)*);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)*)
            }
        }
    )*};
}

tuple_strategies!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// A strategy from a closure (used by `prop_compose!`).
pub struct SFn<F> {
    f: F,
}

impl<F> SFn<F> {
    /// Wraps the sampling closure.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut StdRng) -> T,
    {
        SFn { f }
    }
}

impl<F, T> Strategy for SFn<F>
where
    F: Fn(&mut StdRng) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_strategy_samples_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3u32..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn sfn_wraps_closures() {
        let s = SFn::new(|rng: &mut StdRng| rng.gen_range(0u8..4) as u16 * 10);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) % 10 == 0);
        }
    }
}
