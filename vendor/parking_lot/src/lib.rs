//! Offline, API-compatible subset of `parking_lot`, backed by
//! `std::sync`. Guards are returned without `Result` wrapping (a
//! poisoned lock panics, matching parking_lot's abort-on-poison
//! spirit); that is the only surface the workspace uses.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with infallible guard accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("rwlock poisoned")
    }
}

/// Mutex with an infallible guard accessor.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Exclusive guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 400);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
