//! Offline, API-compatible subset of `rayon`.
//!
//! Provides the one shape the measurement engine needs —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — executed on scoped
//! `std::thread` workers with dynamic (atomic-counter) scheduling, so
//! uneven task costs still balance across cores. Results are placed by
//! index: output order is identical to input order regardless of
//! thread interleaving, which is what keeps parallel campaigns
//! bit-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    // RAYON_NUM_THREADS mirrors upstream's env override; useful for
    // benchmarking scaling curves.
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Sync + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map across worker threads and collects in input
    /// order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_par_vec(par_map_slice(self.items, &self.f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_par_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_par_vec(v: Vec<R>) -> Self {
        v
    }
}

/// The execution core: dynamic scheduling, index-ordered results.
fn par_map_slice<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index scheduled exactly once"))
        .collect()
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = v
            .par_iter()
            .map(|&x| {
                // Make early items much more expensive than late ones.
                let spins = if x < 4 { 100_000 } else { 10 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x
            })
            .collect();
        assert_eq!(out, v);
    }
}
