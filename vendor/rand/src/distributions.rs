//! Distribution types (`rand::distributions` subset).

use crate::Rng;

/// Types that can produce samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error building a [`WeightedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight list was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            WeightedError::NoItem => "no weights provided",
            WeightedError::InvalidWeight => "invalid (negative or non-finite) weight",
            WeightedError::AllWeightsZero => "all weights are zero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WeightedError {}

/// Numeric types (owned or borrowed) usable as sampling weights.
pub trait IntoWeight {
    /// Lossy conversion to `f64` for cumulative-sum sampling.
    fn weight_f64(&self) -> f64;
}

macro_rules! impl_into_weight {
    ($($t:ty),*) => {$(
        impl IntoWeight for $t {
            fn weight_f64(&self) -> f64 { *self as f64 }
        }
    )*};
}

impl_into_weight!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: IntoWeight> IntoWeight for &T {
    fn weight_f64(&self) -> f64 {
        (**self).weight_f64()
    }
}

/// Samples indices `0..n` proportionally to a weight list.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the sampler from weights (owned or borrowed).
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: IntoWeight,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = w.weight_f64();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(0.0..self.total);
        // First cumulative strictly greater than x; zero-weight entries
        // (cumulative equal to their predecessor) are never selected.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        WeightedIndex::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn respects_weights() {
        let weights: Vec<usize> = vec![1, 0, 9];
        let dist = WeightedIndex::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be drawn");
        assert!(counts[2] > counts[0] * 5, "counts {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn accepts_owned_iterator() {
        let dist = WeightedIndex::new((1..4usize).map(|w| w.max(1))).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(dist.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            WeightedIndex::new(Vec::<usize>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new(vec![0usize, 0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new(vec![1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }
}
