//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the upstream `StdRng` (ChaCha12): streams are reproducible
/// within this workspace only. Statistical quality is more than enough
/// for simulation sampling (xoshiro256++ passes BigCrush).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut sm: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut first = [0u8; 8];
        first.copy_from_slice(&seed[..8]);
        Self::from_state(u64::from_le_bytes(first))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // xoshiro breaks on an all-zero state; SplitMix64 expansion of
        // seed 0 must avoid it.
        let rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
        let mut r = rng.clone();
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
