//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in provides exactly the surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] with `gen_range`,
//!   `gen_bool` and friends;
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   via SplitMix64 (NOT the upstream ChaCha12; same-seed streams are
//!   reproducible within this workspace, not across rand versions —
//!   which is all the campaign's determinism contract promises);
//! - [`seq::SliceRandom`] (`choose`, `choose_multiple`, `shuffle`);
//! - [`distributions::WeightedIndex`].
//!
//! Everything is implemented with care for determinism: no global
//! state, no OS entropy, no platform-dependent behavior.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A random generator with distribution helpers.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be > 0");
        self.gen_range(0..denominator) < numerator
    }

    /// Samples a value from a distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: &D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (the only constructor the
    /// workspace uses; expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges [`Rng::gen_range`] can sample from. The single generic impl
/// per range shape (mirroring upstream) is what lets integer-literal
/// ranges unify with the surrounding expression's type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Types with uniform sampling between two bounds.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let width = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = uniform_u128(rng, width);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Uniform integer in `[0, width)` by widening multiply (Lemire); free
/// of modulo bias for any width that fits in 64 bits.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    if width > u64::MAX as u128 {
        // Only reachable for the full u64/i64 inclusive range.
        return rng.next_u64() as u128;
    }
    let width = width as u64;
    let mut m = (rng.next_u64() as u128) * (width as u128);
    let mut lo = m as u64;
    if lo < width {
        let threshold = width.wrapping_neg() % width;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (width as u128);
            lo = m as u64;
        }
    }
    m >> 64
}

/// Maps 64 random bits to a double in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&v));
            let w: u32 = rng.gen_range(0..50);
            assert!(w < 50);
            let x: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(10.0..200.0);
            assert!((10.0..200.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn<R: crate::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(8);
        let v = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
