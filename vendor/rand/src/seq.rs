//! Sequence sampling helpers (`rand::seq` subset).

use crate::Rng;

/// Random selection from slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// One uniform element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements (all of them if `amount > len`), in
    /// random order.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let v = [1, 2, 3, 4];
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let picked: Vec<u32> = v.choose_multiple(&mut rng, 5).cloned().collect();
            assert_eq!(picked.len(), 5);
            let set: std::collections::HashSet<_> = picked.iter().collect();
            assert_eq!(set.len(), 5, "duplicates in {picked:?}");
        }
        // Oversized request returns everything.
        assert_eq!(v.choose_multiple(&mut rng, 100).count(), 20);
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
