//! Offline, API-compatible subset of `criterion`.
//!
//! Supports the workspace's bench style:
//!
//! ```ignore
//! criterion_group! {
//!     name = benches;
//!     config = Criterion::default().sample_size(10);
//!     targets = bench_a, bench_b
//! }
//! criterion_main!(benches);
//! ```
//!
//! Each `bench_function` runs a short warm-up, then samples the closure
//! until `sample_size` iterations or `measurement_time` elapse
//! (whichever comes first) and prints mean/min/max wall-clock times.
//! When invoked with `--test` (as `cargo test` does for harness-less
//! bench targets) every benchmark runs exactly once, as a smoke test.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Iterations per benchmark (upper bound).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Switches to run-once smoke-test mode (`--test`).
    pub fn test_mode(mut self) -> Self {
        self.test_mode = true;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: self.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            return;
        }
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: up to sample_size samples within the time budget.
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<45} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<45} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name(test_mode: bool) {
            let mut c = $config;
            if test_mode {
                c = c.test_mode();
            }
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench targets with
            // `--test`; run each benchmark once in that mode.
            let test_mode = std::env::args().any(|a| a == "--test");
            $($group(test_mode);)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3, "warm-up + samples should run the closure");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default().test_mode();
        let mut runs = 0u32;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
