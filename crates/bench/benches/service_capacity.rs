//! Service capacity: SUBSCRIBE fan-out vs solo RUNs.
//!
//! The broadcast hub's reason to exist is that N clients asking the
//! same question should cost one execution, not N. This bench pins
//! that down: 8 subscribers attached to one broadcast (rounds executed
//! once, fanned out) must deliver at least 3x the aggregate rounds/sec
//! of 8 independent `RUN` sessions computing the same campaign — and
//! every fanned-out stream must be byte-identical to a solo run, with
//! one tap negotiated onto binary framing to prove the frame codec is
//! unobservable in the payloads.
//!
//! Knobs: `SHORTCUTS_CAPACITY_SUBSCRIBERS` (default 8) sessions per
//! schedule, `SHORTCUTS_BENCH_ROUNDS` (default 6) rounds per campaign,
//! `SHORTCUTS_CAPACITY_MIN_SPEEDUP` (default 3.0; 0 disables the
//! assertion) the required fan-out advantage, `RAYON_NUM_THREADS`
//! caps each run's worker count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::report::cases_csv;
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_service::{Client, CreditConfig, Framing, Server, ServiceConfig, StreamEvent};
use std::net::SocketAddr;
use std::time::Instant;

const WORLD_SEED: u64 = 7;
const CAMPAIGN_SEED: u64 = 2017;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn subscribers() -> usize {
    env_f64("SHORTCUTS_CAPACITY_SUBSCRIBERS", 8.0) as usize
}

fn rounds() -> u32 {
    env_f64("SHORTCUTS_BENCH_ROUNDS", 6.0) as u32
}

/// Starts a server with generous credits (the bench measures serving,
/// not admission) and warms the world's engine stack.
fn warmed_server() -> Server {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 64;
    cfg.default_world_seed = WORLD_SEED;
    cfg.credits = CreditConfig::generous();
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");
    run_session(server.local_addr(), "RUN", Framing::Text, 1);
    server
}

/// One full session: request, stream, fetch the cases CSV, quit.
/// Returns the ordered stream events plus the CSV bytes.
fn run_session(
    addr: SocketAddr,
    verb: &str,
    framing: Framing,
    seed: u64,
) -> (Vec<String>, Vec<u8>) {
    let mut client = Client::connect(addr).expect("session admitted");
    if framing != Framing::Text {
        client.negotiate(framing).expect("HELLO framing");
    }
    let mut events = Vec::new();
    client
        .run_streaming(
            &format!(
                "{verb} seed={seed} rounds={} world-seed={WORLD_SEED}",
                rounds()
            ),
            |e| match e {
                StreamEvent::Round(p) => events.push(format!("ROUND {p}")),
                StreamEvent::End(p) => events.push(format!("END {p}")),
            },
        )
        .expect(verb);
    let (_, bytes) = client.fetch_csv("cases").expect("csv");
    client.quit();
    (events, bytes)
}

/// N sessions issuing the same request concurrently; one tap of the
/// SUBSCRIBE schedule runs on binary framing to keep the codec honest.
fn concurrent_sessions(addr: SocketAddr, verb: &str) -> Vec<(Vec<String>, Vec<u8>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..subscribers())
            .map(|i| {
                let framing = if verb == "SUBSCRIBE" && i == 1 {
                    Framing::Binary
                } else {
                    Framing::Text
                };
                scope.spawn(move || run_session(addr, verb, framing, CAMPAIGN_SEED))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Timed solo-RUNs-vs-fan-out comparison with byte-identity canaries
/// and the >= 3x capacity assertion.
fn bench_capacity_report(c: &mut Criterion) {
    let server = warmed_server();
    let addr = server.local_addr();
    let n = subscribers();
    let rounds = rounds();

    // Fan-out goes first so its one execution is really executed:
    // running the solo RUNs first would leave the broadcast in the
    // done-cache and the subscribers would replay it for free. RUN
    // never taps a broadcast, so the solo phase is unaffected by
    // whatever the fan-out phase cached.
    let t = Instant::now();
    let fanned = concurrent_sessions(addr, "SUBSCRIBE");
    let fanned_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let solo = concurrent_sessions(addr, "RUN");
    let solo_secs = t.elapsed().as_secs_f64();

    // Canary 1: every stream — solo or fanned, text or binary — is the
    // same byte sequence; the fan-out is unobservable in the payloads.
    let reference = &solo[0];
    for (i, s) in solo.iter().chain(fanned.iter()).enumerate() {
        assert_eq!(s.0, reference.0, "stream {i} events diverged");
        assert_eq!(s.1, reference.1, "stream {i} CSV diverged");
    }
    assert_eq!(reference.0.len() as u32, rounds + 1, "rounds + END");

    // Canary 2: the service reproduces a direct solo campaign byte for
    // byte — pooling, broadcasting and framing never leak into results.
    let world = World::build(&WorldConfig::small(), WORLD_SEED);
    let mut solo_cfg = CampaignConfig::small();
    solo_cfg.seed = CAMPAIGN_SEED;
    solo_cfg.rounds = rounds;
    let direct = cases_csv(&Campaign::new(&world, solo_cfg).run());
    assert_eq!(
        direct.as_bytes(),
        &reference.1[..],
        "service CSV diverged from the solo campaign"
    );

    let total_rounds = (n as u64 * u64::from(rounds)) as f64;
    let solo_rate = total_rounds / solo_secs;
    let fanned_rate = total_rounds / fanned_secs;
    let speedup = fanned_rate / solo_rate;
    println!(
        "service_capacity ({n} sessions x {rounds} rounds, one warmed world, \
         {} worker thread(s) per run):",
        rayon::current_num_threads(),
    );
    for (name, secs, rate) in [
        ("solo RUNs", solo_secs, solo_rate),
        ("SUBSCRIBE fan-out", fanned_secs, fanned_rate),
    ] {
        println!("  {name:>17}: {secs:6.2}s  {rate:8.2} rounds/s delivered");
    }
    println!("  fan-out advantage: {speedup:.2}x");

    let min_speedup = env_f64("SHORTCUTS_CAPACITY_MIN_SPEEDUP", 3.0);
    if min_speedup > 0.0 {
        assert!(
            speedup >= min_speedup,
            "fan-out delivered only {speedup:.2}x the solo aggregate \
             rounds/sec (required {min_speedup:.1}x)"
        );
    }

    // Keep criterion's ledger aware this ran.
    c.bench_function("service_capacity/report_noop", |b| b.iter(|| black_box(0)));
}

/// Criterion-sampled fan-out schedule, for trend tracking.
fn bench_fanout(c: &mut Criterion) {
    let server = warmed_server();
    let addr = server.local_addr();
    c.bench_function("service_capacity/subscribe_fanout", |b| {
        b.iter(|| black_box(concurrent_sessions(addr, "SUBSCRIBE")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_capacity_report, bench_fanout
}
criterion_main!(benches);
