//! Criterion micro-benchmarks for the simulator's hot paths:
//! router-level path expansion, ping sampling, and the
//! median/statistics kernels the analyses lean on. Route computation
//! has its own `routing` bench (flat core vs. heap oracle).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shortcuts_core::analysis::stats;
use shortcuts_core::measure::median;
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::path::{expand_path, ExpandConfig};
use shortcuts_netsim::{HostRegistry, LatencyModel, PingEngine};
use shortcuts_topology::routing::Router;
use shortcuts_topology::{Topology, TopologyConfig};

fn bench_expansion(c: &mut Criterion) {
    let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::paper_scale(), 1));
    let router = Router::new(std::sync::Arc::clone(&topo));
    let eyes = topo.eyeball_asns();
    // A representative long AS path.
    let (src, dst) = (eyes[0], eyes[eyes.len() / 2]);
    let as_path = router.as_path(src, dst).expect("routable");
    let src_loc = topo
        .cities
        .get(topo.pop(topo.expect_as(src).pops[0]).city)
        .location;
    let dst_loc = topo
        .cities
        .get(topo.pop(topo.expect_as(dst).pops[0]).city)
        .location;
    let cfg = ExpandConfig::default();
    c.bench_function("netsim/expand_path", |b| {
        b.iter(|| black_box(expand_path(&topo, &as_path, src_loc, dst_loc, &cfg)))
    });
}

fn bench_ping(c: &mut Criterion) {
    let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::paper_scale(), 1));
    let router = std::sync::Arc::new(Router::new(std::sync::Arc::clone(&topo)));
    let mut hosts = HostRegistry::new();
    let eyes = topo.eyeball_asns();
    let mut ids = Vec::new();
    for &asn in eyes.iter().take(50) {
        if let Ok(id) = hosts.add_host_in_as(&topo, asn, None) {
            ids.push(id);
        }
    }
    let engine = PingEngine::new(
        std::sync::Arc::clone(&topo),
        router,
        std::sync::Arc::new(hosts),
        LatencyModel::default(),
    );
    // Warm the pair caches so the benchmark measures the steady state
    // the campaign actually runs in.
    let mut rng = StdRng::seed_from_u64(5);
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i + 1) {
            let _ = engine.ping(a, b, SimTime(0.0), &mut rng);
        }
    }
    c.bench_function("netsim/ping_cached_pair", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = ids[i % ids.len()];
            let d = ids[(i + 7) % ids.len()];
            i += 1;
            black_box(engine.ping(a, d, SimTime(i as f64), &mut rng))
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    use rand::Rng;
    let samples6: Vec<f64> = (0..6).map(|_| rng.gen_range(10.0..200.0)).collect();
    let samples10k: Vec<f64> = (0..10_000).map(|_| rng.gen_range(10.0..200.0)).collect();
    c.bench_function("stats/median_of_6", |b| {
        b.iter(|| black_box(median(&samples6)))
    });
    c.bench_function("stats/percentile_10k", |b| {
        b.iter(|| black_box(stats::percentile(&samples10k, 95.0)))
    });
    let xs: Vec<f64> = (0..=200).map(f64::from).collect();
    c.bench_function("stats/cdf_10k_at_200_points", |b| {
        b.iter(|| black_box(stats::cdf_at(&samples10k, &xs)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_expansion, bench_ping, bench_stats
}
criterion_main!(benches);
