//! Incremental routing repair under topology churn vs. the full
//! per-destination recompute it replaces, at paper scale.
//!
//! Three delta shapes matter:
//!
//! - **Single link down** — the common churn event. Most destination
//!   tables don't route over the lost link, so repair proves them
//!   untouched in one relevance scan; the few that do get a
//!   restricted three-phase sweep over their dirty cut. The
//!   acceptance bar is ≥ 5× vs. recomputing every table.
//! - **Eight links down in one batch** — a correlated failure (a
//!   facility outage taking several adjacencies at once).
//! - **One AS down** — the widest deletion: every table holding a
//!   route through the downed AS has a dirty cut.
//!
//! A wall-clock speedup table over `SHORTCUTS_BENCH_TABLES`
//! destinations (default 64) prints alongside the criterion numbers —
//! the measured rows feed the README's churn-bench table. Every timed
//! repair is cross-checked entry-for-entry against the full
//! [`repair::compute_table_view`] sweep it must reproduce.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_topology::routing::{repair, RoutingTable};
use shortcuts_topology::{Asn, DeltaView, Topology, TopologyConfig, TopologyDelta};
use std::time::Instant;

fn table_count() -> usize {
    std::env::var("SHORTCUTS_BENCH_TABLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn paper_topology() -> std::sync::Arc<Topology> {
    std::sync::Arc::new(Topology::generate(&TopologyConfig::paper_scale(), 1))
}

/// All base links, canonically ordered — the pool churn draws from.
fn base_links(topo: &Topology) -> Vec<(Asn, Asn)> {
    let mut links = std::collections::BTreeSet::new();
    for info in topo.ases().iter() {
        let adj = topo.adjacency(info.asn);
        for &other in adj
            .providers
            .iter()
            .chain(adj.customers.iter())
            .chain(adj.peers.iter())
        {
            links.insert((info.asn.min(other), info.asn.max(other)));
        }
    }
    links.into_iter().collect()
}

/// A link guaranteed to carry traffic toward `dst`: one of the
/// destination's own adjacencies. Downing it forces a real repair on
/// `dst`'s table instead of an all-clean relevance pass.
fn link_at(topo: &Topology, dst: Asn) -> (Asn, Asn) {
    let adj = topo.adjacency(dst);
    let other = adj
        .providers
        .iter()
        .chain(adj.peers.iter())
        .chain(adj.customers.iter())
        .next()
        .copied()
        .expect("paper-scale eyeball AS has at least one adjacency");
    (dst, other)
}

/// The three delta batches the report times, derived from `topo`.
fn batches(topo: &Topology, dsts: &[Asn]) -> Vec<(&'static str, Vec<TopologyDelta>)> {
    let links = base_links(topo);
    let (a, b) = link_at(topo, dsts[0]);
    let single = vec![TopologyDelta::LinkDown { a, b }];
    // Eight links spread across the link list, plus the hot one, so
    // the batch mixes carried and idle adjacencies.
    let mut eight = vec![TopologyDelta::LinkDown { a, b }];
    let stride = (links.len() / 8).max(1);
    for (la, lb) in links.iter().step_by(stride).take(7) {
        eight.push(TopologyDelta::LinkDown { a: *la, b: *lb });
    }
    // Down a transit AS that is not itself a measured destination.
    let hub = topo
        .ases()
        .iter()
        .map(|i| i.asn)
        .find(|asn| !dsts.contains(asn) && !topo.adjacency(*asn).customers.is_empty())
        .expect("paper-scale topology has a transit AS outside the destination set");
    let as_down = vec![TopologyDelta::AsDown { asn: hub }];
    vec![
        ("single link", single),
        ("8-link batch", eight),
        ("AS down", as_down),
    ]
}

fn bench_single_link(c: &mut Criterion) {
    let topo = paper_topology();
    let eyes = topo.eyeball_asns();
    let dsts: Vec<Asn> = eyes.iter().cycle().take(table_count()).copied().collect();
    let tables: Vec<RoutingTable> = dsts
        .iter()
        .map(|&d| shortcuts_topology::routing::compute_table(&topo, d))
        .collect();
    let (a, b) = link_at(&topo, dsts[0]);
    let batch = vec![TopologyDelta::LinkDown { a, b }];
    let old_view = DeltaView::empty();
    let new_view = old_view.applied(&topo, &batch);

    c.bench_function("churn/repair_single_link", |bch| {
        let mut i = 0;
        bch.iter(|| {
            let t = &tables[i % tables.len()];
            i += 1;
            black_box(repair::repair_table(&topo, &old_view, &new_view, &batch, t))
        })
    });
    c.bench_function("churn/recompute_single_link", |bch| {
        let mut i = 0;
        bch.iter(|| {
            let dst = dsts[i % dsts.len()];
            i += 1;
            black_box(repair::compute_table_view(&topo, &new_view, dst))
        })
    });
}

/// One timed repair-all / recompute-all run per delta shape, with the
/// explicit speedup table the README quotes. Every repaired table is
/// cross-checked against the full view sweep, so the speedup rows are
/// guaranteed to compare identical outputs.
fn bench_repair_report(c: &mut Criterion) {
    let topo = paper_topology();
    let eyes = topo.eyeball_asns();
    let dsts: Vec<Asn> = eyes.iter().cycle().take(table_count()).copied().collect();
    let tables: Vec<RoutingTable> = dsts
        .iter()
        .map(|&d| shortcuts_topology::routing::compute_table(&topo, d))
        .collect();
    let old_view = DeltaView::empty();

    println!(
        "churn/repair speedup ({} tables, {} ASes, single thread):",
        dsts.len(),
        topo.as_count(),
    );
    for (name, batch) in batches(&topo, &dsts) {
        let new_view = old_view.applied(&topo, &batch);

        let t = Instant::now();
        let repaired: Vec<(Option<RoutingTable>, repair::RepairOutcome)> = tables
            .iter()
            .map(|old| repair::repair_table(&topo, &old_view, &new_view, &batch, old))
            .collect();
        let repair_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let full: Vec<RoutingTable> = dsts
            .iter()
            .map(|&d| repair::compute_table_view(&topo, &new_view, d))
            .collect();
        let full_secs = t.elapsed().as_secs_f64();

        // Canary: repair (or the provably untouched original) must
        // agree with the full sweep entry for entry.
        let (mut untouched, mut swept, mut rebuilt) = (0usize, 0usize, 0usize);
        for ((out, outcome), (old, want)) in repaired.iter().zip(tables.iter().zip(&full)) {
            match outcome {
                repair::RepairOutcome::Unchanged => untouched += 1,
                repair::RepairOutcome::Repaired { .. } => swept += 1,
                repair::RepairOutcome::FullRebuild => rebuilt += 1,
            }
            let got = out.as_ref().unwrap_or(old);
            assert_eq!(got.reachable_count(), want.reachable_count());
            for info in topo.ases().iter() {
                assert_eq!(got.route(info.asn), want.route(info.asn));
            }
        }

        println!(
            "  {name:>13}: repair {repair_secs:8.4}s  full {full_secs:8.4}s  \
             ({:5.1}x; {untouched} untouched, {swept} re-swept, {rebuilt} rebuilt of {})",
            full_secs / repair_secs,
            tables.len(),
        );
    }

    // Keep a criterion entry so `--test` smoke mode exercises the
    // widest shape too (one repair under the AS-down batch).
    let batch = batches(&topo, &dsts).pop().expect("three shapes").1;
    let new_view = old_view.applied(&topo, &batch);
    c.bench_function("churn/repair_as_down", |bch| {
        let mut i = 0;
        bch.iter(|| {
            let t = &tables[i % tables.len()];
            i += 1;
            black_box(repair::repair_table(&topo, &old_view, &new_view, &batch, t))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_link, bench_repair_report
}
criterion_main!(benches);
