//! Cross-campaign scenario sweep vs. sequential solo campaigns: the
//! number behind the ROADMAP's "many scenarios served fast" item.
//!
//! Both sides run the same `(seed, config)` scenarios on the same
//! world:
//!
//! - **sequential** — each scenario as a solo `Campaign::run`
//!   (parallel exec mode) with its own router, destination tables and
//!   pair cache, one after another. Every campaign re-pays cold
//!   routing tables, cold pair expansion and per-stage barrier idle
//!   time.
//! - **sweep** — `core::sweep` runs all scenarios concurrently on one
//!   engine: destination tables warmed once with the union of all
//!   scenarios' destinations, pair facts computed once however many
//!   scenarios visit the pair, and `(campaign, round)` jobs from every
//!   scenario interleaved on one worker pool so no core idles at any
//!   single campaign's stage barrier.
//!
//! The outputs are asserted byte-identical per scenario (the sweep
//! determinism contract), so the speedup table compares equal work.
//!
//! Knobs: `SHORTCUTS_SWEEP_SCENARIOS` (default 4) scenarios,
//! `SHORTCUTS_BENCH_ROUNDS` (default 4) rounds each,
//! `SHORTCUTS_JOBS_IN_FLIGHT` (default 8) sweep jobs in flight,
//! `RAYON_NUM_THREADS` caps the worker count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::report::cases_csv;
use shortcuts_core::sweep::{run_sequential, Sweep, SweepConfig};
use shortcuts_core::workflow::CampaignConfig;
use shortcuts_core::world::{World, WorldConfig};
use std::sync::Arc;
use std::time::Instant;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sweep_config() -> SweepConfig {
    let mut base = CampaignConfig::paper();
    base.rounds = env_or("SHORTCUTS_BENCH_ROUNDS", 4);
    let scenarios = u64::from(env_or("SHORTCUTS_SWEEP_SCENARIOS", 4));
    let mut cfg = SweepConfig::from_seeds(&base, 2017..2017 + scenarios);
    cfg.jobs_in_flight = env_or("SHORTCUTS_JOBS_IN_FLIGHT", 8) as usize;
    cfg
}

fn bench_sweep(c: &mut Criterion) {
    let world = Arc::new(World::build(&WorldConfig::small(), 7));
    let cfg = sweep_config();
    c.bench_function("campaign_sweep/sweep", |b| {
        b.iter(|| black_box(Sweep::new(Arc::clone(&world), cfg.clone()).run()))
    });
}

fn bench_sequential(c: &mut Criterion) {
    let world = Arc::new(World::build(&WorldConfig::small(), 7));
    let cfg = sweep_config();
    c.bench_function("campaign_sweep/sequential", |b| {
        b.iter(|| black_box(run_sequential(&world, &cfg)))
    });
}

/// One timed sweep-vs-sequential run with an explicit speedup table,
/// plus the bit-identity canary on every scenario.
fn bench_speedup_report(c: &mut Criterion) {
    let world = Arc::new(World::build(&WorldConfig::small(), 7));
    let cfg = sweep_config();

    let t = Instant::now();
    let sequential = run_sequential(&world, &cfg);
    let sequential_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let sweep = Sweep::new(Arc::clone(&world), cfg.clone()).run();
    let sweep_secs = t.elapsed().as_secs_f64();

    // Canary: scenario for scenario, the sweep must reproduce the solo
    // runs byte for byte — the speedup rows compare identical outputs.
    for (a, b) in sweep.scenarios.iter().zip(&sequential.scenarios) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            cases_csv(&a.results),
            cases_csv(&b.results),
            "sweep diverged from solo on {}",
            a.label
        );
        assert_eq!(a.results.pings_sent, b.results.pings_sent);
    }

    let cases: usize = sweep
        .scenarios
        .iter()
        .map(|s| s.results.total_cases())
        .sum();
    println!(
        "campaign_sweep/speedup ({} scenarios x {} rounds, {cases} cases total, \
         {} thread(s), {} jobs in flight):",
        cfg.scenarios.len(),
        env_or("SHORTCUTS_BENCH_ROUNDS", 4),
        rayon::current_num_threads(),
        cfg.jobs_in_flight,
    );
    for (name, secs) in [("sequential", sequential_secs), ("sweep", sweep_secs)] {
        println!(
            "  {name:>10}: {secs:6.2}s  ({:.2}x vs sequential)",
            sequential_secs / secs
        );
    }

    // Keep criterion's ledger aware this ran.
    c.bench_function("campaign_sweep/speedup_report_noop", |b| {
        b.iter(|| black_box(0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_speedup_report, bench_sweep, bench_sequential
}
criterion_main!(benches);
