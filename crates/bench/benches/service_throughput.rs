//! Service throughput: N concurrent client sessions vs N sequential
//! sessions on one warmed shared world.
//!
//! Each session is the full client workflow over a real socket —
//! connect, `RUN`, stream every `ROUND` line, fetch the cases CSV,
//! `QUIT`. The server pools one engine stack for the world, so the
//! question this bench answers is the service's reason to exist: how
//! much faster do N clients finish when their sessions overlap on the
//! warmed stack than when they queue up one after another?
//!
//! The report prints **sessions/sec** and aggregate **rounds/sec** for
//! both schedules, plus a byte-identity canary: every concurrent
//! session's CSV must equal its sequential twin's, and the first seed's
//! CSV must equal a direct solo `Campaign::run` on a locally built
//! world — concurrency and pooling must never leak into results.
//!
//! Knobs: `SHORTCUTS_SERVICE_SESSIONS` (default 4) concurrent clients,
//! `SHORTCUTS_BENCH_ROUNDS` (default 4) rounds per session,
//! `RAYON_NUM_THREADS` caps each run's worker count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::report::cases_csv;
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_service::{Client, Server, ServiceConfig};
use std::net::SocketAddr;
use std::time::Instant;

const WORLD_SEED: u64 = 7;
const FIRST_CAMPAIGN_SEED: u64 = 2017;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sessions() -> u64 {
    u64::from(env_or("SHORTCUTS_SERVICE_SESSIONS", 4))
}

fn rounds() -> u32 {
    env_or("SHORTCUTS_BENCH_ROUNDS", 4)
}

fn seeds() -> Vec<u64> {
    (FIRST_CAMPAIGN_SEED..FIRST_CAMPAIGN_SEED + sessions()).collect()
}

/// Starts a server on an ephemeral port and warms the world's engine
/// stack with one throwaway session, so both schedules measure serving
/// cost, not first-touch world construction.
fn warmed_server() -> Server {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 64;
    cfg.default_world_seed = WORLD_SEED;
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");
    run_one_session(server.local_addr(), 1, rounds());
    server
}

/// One full client session; returns (rounds streamed, cases CSV).
fn run_one_session(addr: SocketAddr, seed: u64, rounds: u32) -> (u64, Vec<u8>) {
    let mut client = Client::connect(addr).expect("session admitted");
    let mut streamed = 0u64;
    client
        .run_streaming(
            &format!("RUN seed={seed} rounds={rounds} world-seed={WORLD_SEED}"),
            |e| {
                if matches!(e, shortcuts_service::StreamEvent::Round(_)) {
                    streamed += 1;
                }
            },
        )
        .expect("run");
    let (_, bytes) = client.fetch_csv("cases").expect("csv");
    client.quit();
    (streamed, bytes)
}

fn sequential_sessions(addr: SocketAddr) -> Vec<(u64, Vec<u8>)> {
    seeds()
        .into_iter()
        .map(|seed| run_one_session(addr, seed, rounds()))
        .collect()
}

fn concurrent_sessions(addr: SocketAddr) -> Vec<(u64, Vec<u8>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds()
            .into_iter()
            .map(|seed| scope.spawn(move || run_one_session(addr, seed, rounds())))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn bench_sequential(c: &mut Criterion) {
    let server = warmed_server();
    let addr = server.local_addr();
    c.bench_function("service_throughput/sequential_sessions", |b| {
        b.iter(|| black_box(sequential_sessions(addr)))
    });
}

fn bench_concurrent(c: &mut Criterion) {
    let server = warmed_server();
    let addr = server.local_addr();
    c.bench_function("service_throughput/concurrent_sessions", |b| {
        b.iter(|| black_box(concurrent_sessions(addr)))
    });
}

/// One timed concurrent-vs-sequential comparison with an explicit
/// sessions/sec + rounds/sec table and the byte-identity canaries.
fn bench_throughput_report(c: &mut Criterion) {
    let server = warmed_server();
    let addr = server.local_addr();
    let n = sessions();
    let rounds = rounds();

    let t = Instant::now();
    let sequential = sequential_sessions(addr);
    let sequential_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let concurrent = concurrent_sessions(addr);
    let concurrent_secs = t.elapsed().as_secs_f64();

    // Canary 1: concurrency is unobservable in the payloads.
    for (seed, ((r_seq, csv_seq), (r_con, csv_con))) in
        seeds().iter().zip(sequential.iter().zip(&concurrent))
    {
        assert_eq!(r_seq, r_con, "seed {seed} round counts differ");
        assert_eq!(*r_seq, u64::from(rounds), "seed {seed} missing rounds");
        assert_eq!(csv_seq, csv_con, "seed {seed} CSV differs across schedules");
    }
    // Canary 2: the service reproduces a direct solo run byte for byte.
    let world = World::build(&WorldConfig::small(), WORLD_SEED);
    let mut solo_cfg = CampaignConfig::small();
    solo_cfg.seed = FIRST_CAMPAIGN_SEED;
    solo_cfg.rounds = rounds;
    let solo = cases_csv(&Campaign::new(&world, solo_cfg).run());
    assert_eq!(
        solo.as_bytes(),
        &concurrent[0].1[..],
        "service CSV diverged from the solo campaign"
    );

    let total_rounds = (n * u64::from(rounds)) as f64;
    println!(
        "service_throughput ({n} sessions x {rounds} rounds, one warmed world, \
         {} worker thread(s) per run):",
        rayon::current_num_threads(),
    );
    for (name, secs) in [
        ("sequential", sequential_secs),
        ("concurrent", concurrent_secs),
    ] {
        println!(
            "  {name:>10}: {secs:6.2}s  {:6.2} sessions/s  {:7.2} rounds/s  ({:.2}x vs sequential)",
            n as f64 / secs,
            total_rounds / secs,
            sequential_secs / secs,
        );
    }

    // Keep criterion's ledger aware this ran.
    c.bench_function("service_throughput/report_noop", |b| {
        b.iter(|| black_box(0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_throughput_report, bench_concurrent, bench_sequential
}
criterion_main!(benches);
