//! The flat index-based routing core vs. the heap-based oracle it
//! replaced, at paper scale.
//!
//! Three comparisons matter:
//!
//! - **Single-table construction** — `routing::compute_table` (CSR
//!   adjacency + bucket-queue sweeps over dense `Vec<RouteEntry>`)
//!   against `routing::oracle::compute_table` (BinaryHeap Dijkstra
//!   over `HashMap` adjacency and results). This is the PR's headline
//!   number; the acceptance bar is ≥ 2×.
//! - **Cached path reconstruction** — `as_path` now follows dense
//!   next-node links instead of chasing a `HashMap` per hop.
//! - **Cold-start warmup** — `Router::precompute` building a whole
//!   campaign's destination tables on the worker pool vs. computing
//!   them one after another, which is what the first round's cache
//!   misses used to do.
//!
//! A wall-clock speedup table over `SHORTCUTS_BENCH_TABLES`
//! destinations (default 64) prints alongside the criterion numbers —
//! the measured rows feed the README's routing-bench table.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_topology::routing::{self, oracle, Router};
use shortcuts_topology::{Asn, Topology, TopologyConfig};
use std::time::Instant;

fn table_count() -> usize {
    std::env::var("SHORTCUTS_BENCH_TABLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn paper_topology() -> std::sync::Arc<Topology> {
    std::sync::Arc::new(Topology::generate(&TopologyConfig::paper_scale(), 1))
}

fn bench_single_table(c: &mut Criterion) {
    let topo = paper_topology();
    let eyes = topo.eyeball_asns();
    c.bench_function("routing/compute_table_flat", |b| {
        let mut i = 0;
        b.iter(|| {
            let dst = eyes[i % eyes.len()];
            i += 1;
            black_box(routing::compute_table(&topo, dst))
        })
    });
    c.bench_function("routing/compute_table_oracle_heap", |b| {
        let mut i = 0;
        b.iter(|| {
            let dst = eyes[i % eyes.len()];
            i += 1;
            black_box(oracle::compute_table(&topo, dst))
        })
    });
    c.bench_function("routing/compute_table_shortest_flat", |b| {
        let mut i = 0;
        b.iter(|| {
            let dst = eyes[i % eyes.len()];
            i += 1;
            black_box(routing::compute_table_shortest(&topo, dst))
        })
    });
}

fn bench_as_path(c: &mut Criterion) {
    let topo = paper_topology();
    let eyes = topo.eyeball_asns();
    let router = Router::new(std::sync::Arc::clone(&topo));
    let dst = eyes[0];
    let _ = router.table(dst); // warm the one table
    c.bench_function("routing/as_path_cached", |b| {
        let mut i = 0;
        b.iter(|| {
            let src = eyes[i % eyes.len()];
            i += 1;
            black_box(router.as_path(src, dst))
        })
    });
}

/// One timed serial-oracle / serial-flat / parallel-flat run over a
/// campaign-sized destination set, with the explicit speedup table the
/// README quotes. Also cross-checks every flat table against the
/// oracle's, so the speedup rows are guaranteed to compare identical
/// outputs.
fn bench_warmup_report(c: &mut Criterion) {
    let topo = paper_topology();
    let dsts: Vec<Asn> = topo
        .eyeball_asns()
        .iter()
        .cycle()
        .take(table_count())
        .copied()
        .collect();

    let t = Instant::now();
    let oracle_tables: Vec<_> = dsts
        .iter()
        .map(|&d| oracle::compute_table(&topo, d))
        .collect();
    let oracle_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let flat_tables: Vec<_> = dsts
        .iter()
        .map(|&d| routing::compute_table(&topo, d))
        .collect();
    let flat_secs = t.elapsed().as_secs_f64();

    let router = Router::new(std::sync::Arc::clone(&topo));
    let t = Instant::now();
    router.precompute(&dsts);
    let precompute_secs = t.elapsed().as_secs_f64();

    // Canary: the timed implementations must agree entry for entry.
    for (flat, reference) in flat_tables.iter().zip(&oracle_tables) {
        assert_eq!(flat.reachable_count(), reference.len());
        for info in topo.ases() {
            assert_eq!(flat.route(info.asn), reference.get(&info.asn));
        }
    }

    let n = dsts.len();
    let unique: std::collections::HashSet<Asn> = dsts.iter().copied().collect();
    println!(
        "routing/warmup speedup ({n} tables, {} ASes, {} thread(s)):",
        topo.as_count(),
        rayon::current_num_threads(),
    );
    for (name, secs) in [
        ("oracle serial", oracle_secs),
        ("flat serial", flat_secs),
        ("flat precompute", precompute_secs),
    ] {
        println!(
            "  {name:>16}: {secs:7.3}s  ({:5.2}x vs oracle serial)",
            oracle_secs / secs
        );
    }
    // Note: precompute dedups, so its row builds `unique` tables.
    println!(
        "  (precompute row covers {} unique destinations)",
        unique.len()
    );

    // Keep a criterion entry so `--test` smoke mode exercises this
    // path too (one cheap iteration over a single destination).
    c.bench_function("routing/precompute_one", |b| {
        b.iter(|| {
            let r = Router::new(std::sync::Arc::clone(&topo));
            r.precompute(&dsts[..1]);
            black_box(r.cached_tables())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_table, bench_as_path, bench_warmup_report
}
criterion_main!(benches);
