//! Criterion benchmark for the end-to-end pipeline: one full
//! measurement round over the small world, and the §2.2 colo filter
//! funnel. This is the number that tells you how long a 45-round
//! paper-scale reproduction will take.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shortcuts_core::colo::{run_pipeline, ColoPipelineConfig};
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_netsim::clock::SimTime;

fn bench_campaign_round(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    c.bench_function("campaign/one_round_small_world", |b| {
        b.iter(|| {
            let mut cfg = CampaignConfig::small();
            cfg.rounds = 1;
            black_box(Campaign::new(&world, cfg).run())
        })
    });
}

fn bench_colo_funnel(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    let engine = world.shared().engine(Default::default());
    let vantage = world.looking_glasses.lgs()[0].host;
    c.bench_function("campaign/colo_filter_funnel", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(run_pipeline(
                &world,
                &*engine,
                vantage,
                SimTime(0.0),
                &ColoPipelineConfig::default(),
                &mut rng,
            ))
        })
    });
}

fn bench_world_build(c: &mut Criterion) {
    c.bench_function("campaign/world_build_small", |b| {
        b.iter(|| black_box(World::build(&WorldConfig::small(), 7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_world_build, bench_colo_funnel, bench_campaign_round
}
criterion_main!(benches);
