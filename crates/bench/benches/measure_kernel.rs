//! Scalar vs batched measurement kernel, on the stage the campaign
//! actually executes: a round's direct-task list handed to
//! [`NetsimBackend::measure_batch`].
//!
//! The scalar oracle resolves every pair through the cache once per
//! *window* and walks pings one at a time; the batched kernel resolves
//! the whole stage's distinct pairs in one shard-grouped pass
//! ([`resolve_pairs`]: one lock round per cache shard, one routing
//! table per destination-AS group) and then samples windows off the
//! struct-of-arrays [`PairBlock`] with no per-window allocation. Both
//! produce bit-identical medians — asserted here as a canary on every
//! run — so the ratio between the two rows is pure kernel overhead
//! removed.
//!
//! Scales: `round` is one paper-shaped round on the small world;
//! `10x` concatenates ten rounds' stages into one batch (more distinct
//! pairs, deeper cache pressure). `RAYON_NUM_THREADS` caps workers.
//!
//! [`resolve_pairs`]: shortcuts_netsim::PingEngine::resolve_pairs
//! [`PairBlock`]: shortcuts_netsim::PairBlock

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::backend::{MeasureTask, MeasurementBackend, NetsimBackend};
use shortcuts_core::plan::plan_round_for;
use shortcuts_core::workflow::{CampaignConfig, CampaignSetup};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_netsim::{FaultPlan, PingHandle};
use std::sync::Arc;
use std::time::Instant;

/// Bit-level identity of two stage results — the canary that keeps
/// this benchmark honest: a kernel that drifts from the oracle has no
/// speedup worth reporting.
fn assert_identical(a: &[Option<f64>], b: &[Option<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "{what}: task {i}"),
            (None, None) => {}
            other => panic!("{what}: task {i} diverged: {other:?}"),
        }
    }
}

fn bench_measure_kernel(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    let cfg = CampaignConfig::paper();
    let engine = world.shared().engine(cfg.routing);
    let setup_handle = PingHandle::with_faults(Arc::clone(&engine), FaultPlan::none());
    let setup = CampaignSetup::prepare(&world, &setup_handle, &cfg);
    engine.router().precompute(&setup.warmup());

    // Ten rounds of direct stages, planned exactly as the campaign
    // plans them (pure functions of (seed, round)).
    let stages: Vec<Vec<MeasureTask>> = (0..10)
        .map(|r| plan_round_for(&world, &setup.endpoints, &setup.relays, &cfg, r).direct_tasks())
        .collect();
    let round: Vec<MeasureTask> = stages[0].clone();
    let tenx: Vec<MeasureTask> = stages.iter().flatten().copied().collect();

    // Two backends over ONE shared engine (same warmed pair cache, so
    // neither side pays cold-resolution cost the other skips); only the
    // measurement strategy differs. RNG streams are per-task, so
    // results match bit for bit.
    let batched = NetsimBackend::new(
        PingHandle::with_faults(Arc::clone(&engine), FaultPlan::none()),
        cfg.window,
        cfg.seed,
    )
    .with_scalar_oracle(false);
    let scalar = NetsimBackend::new(
        PingHandle::with_faults(Arc::clone(&engine), FaultPlan::none()),
        cfg.window,
        cfg.seed,
    )
    .with_scalar_oracle(true);

    // Warm the cache and run the identity canary at both scales.
    assert_identical(
        &batched.measure_batch(&round, true),
        &scalar.measure_batch(&round, true),
        "paper round",
    );
    assert_identical(
        &batched.measure_batch(&tenx, true),
        &scalar.measure_batch(&tenx, true),
        "10x stage",
    );

    c.bench_function("measure_kernel/scalar_round", |b| {
        b.iter(|| black_box(scalar.measure_batch(&round, true)))
    });
    c.bench_function("measure_kernel/batched_round", |b| {
        b.iter(|| black_box(batched.measure_batch(&round, true)))
    });
    c.bench_function("measure_kernel/scalar_10x", |b| {
        b.iter(|| black_box(scalar.measure_batch(&tenx, true)))
    });
    c.bench_function("measure_kernel/batched_10x", |b| {
        b.iter(|| black_box(batched.measure_batch(&tenx, true)))
    });

    // Explicit wall-clock speedup table (the acceptance number: the
    // batched row must clear 1.5x at paper scale).
    for (label, tasks, iters) in [("round", &round, 30u32), ("10x", &tenx, 6u32)] {
        let time = |backend: &NetsimBackend| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(backend.measure_batch(tasks, true));
            }
            start.elapsed().as_secs_f64() / f64::from(iters)
        };
        let s = time(&scalar);
        let b = time(&batched);
        println!(
            "measure_kernel speedup [{label}] tasks={} scalar={:.2}ms batched={:.2}ms speedup={:.2}x",
            tasks.len(),
            s * 1e3,
            b * 1e3,
            s / b
        );
    }

    // Telemetry overhead canary: the batched kernel with pipeline
    // spans enabled must stay within a few percent of spans disabled.
    // Spans fire per *stage*, not per ping, so the budget is two clock
    // reads and a couple of relaxed atomics per measure_batch call —
    // the wide assertion bound only guards against a regression that
    // puts work back on the per-ping path.
    let tele = shortcuts_telemetry::global();
    let was_enabled = tele.enabled();
    let timed = |iters: u32| {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(batched.measure_batch(&tenx, true));
        }
        start.elapsed().as_secs_f64() / f64::from(iters)
    };
    tele.set_enabled(false);
    // One warm pass, then interleaved off/on blocks keeping each
    // mode's best: a shared-runner CI machine drifts across seconds,
    // and min-of-blocks discards the noise spikes that a single long
    // sample averages in.
    timed(2);
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        tele.set_enabled(false);
        off = off.min(timed(3));
        tele.set_enabled(true);
        on = on.min(timed(3));
    }
    tele.set_enabled(was_enabled);
    let overhead = (on / off - 1.0) * 100.0;
    println!(
        "measure_kernel telemetry overhead [10x] off={:.2}ms on={:.2}ms overhead={overhead:+.1}%",
        off * 1e3,
        on * 1e3,
    );
    assert!(
        overhead < 15.0,
        "telemetry-on measure kernel is {overhead:.1}% slower than off (budget: a few %)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_measure_kernel
}
criterion_main!(benches);
