//! Serial vs. parallel measurement engine: the paper's campaign
//! configuration scaled to the small world, run once per execution
//! mode, plus an explicit wall-clock speedup report.
//!
//! The two modes produce bit-identical results (asserted here on case
//! counts and medians as a cheap canary; the full bit-level check
//! lives in `tests/determinism_equivalence.rs`), so the only thing
//! this benchmark measures is scheduling.
//!
//! Knobs: `SHORTCUTS_BENCH_ROUNDS` (default 2) scales the campaign;
//! `RAYON_NUM_THREADS` caps the parallel mode's workers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::backend::ExecMode;
use shortcuts_core::workflow::{Campaign, CampaignConfig, CampaignResults};
use shortcuts_core::world::{World, WorldConfig};
use std::time::Instant;

fn bench_rounds() -> u32 {
    std::env::var("SHORTCUTS_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn campaign_cfg(exec: ExecMode) -> CampaignConfig {
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = bench_rounds();
    cfg.exec = exec;
    cfg
}

fn run(world: &World, exec: ExecMode) -> CampaignResults {
    Campaign::new(world, campaign_cfg(exec)).run()
}

fn bench_campaign_serial(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    c.bench_function("campaign_parallel/serial", |b| {
        b.iter(|| black_box(run(&world, ExecMode::Serial)))
    });
}

fn bench_campaign_parallel(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    c.bench_function("campaign_parallel/parallel", |b| {
        b.iter(|| black_box(run(&world, ExecMode::Parallel)))
    });
}

/// One timed head-to-head run with an explicit speedup line — the
/// number the ROADMAP's "as fast as the hardware allows" item tracks.
fn bench_speedup_report(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);

    let t = Instant::now();
    let serial = run(&world, ExecMode::Serial);
    let serial_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let parallel = run(&world, ExecMode::Parallel);
    let parallel_secs = t.elapsed().as_secs_f64();

    // Canary: the modes must agree exactly.
    assert_eq!(serial.total_cases(), parallel.total_cases());
    assert_eq!(serial.pings_sent, parallel.pings_sent);
    for (a, b) in serial.cases.iter().zip(&parallel.cases) {
        assert_eq!(a.direct_ms.to_bits(), b.direct_ms.to_bits());
    }

    let cores = rayon::current_num_threads();
    println!(
        "campaign_parallel/speedup: {serial_secs:.2}s serial vs {parallel_secs:.2}s parallel \
         ({:.2}x on {cores} thread(s), {} rounds, {} cases)",
        serial_secs / parallel_secs,
        bench_rounds(),
        serial.total_cases(),
    );

    // Keep criterion's ledger aware this ran.
    c.bench_function("campaign_parallel/speedup_report_noop", |b| {
        b.iter(|| black_box(0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_speedup_report, bench_campaign_serial, bench_campaign_parallel
}
criterion_main!(benches);
