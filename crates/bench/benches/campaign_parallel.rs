//! Serial vs. parallel vs. round-sharded measurement engine: the
//! paper's campaign configuration scaled to the small world, run once
//! per execution mode, plus an explicit wall-clock speedup table.
//!
//! All modes produce bit-identical results (asserted here on case
//! counts and medians as a cheap canary; the full bit-level check
//! lives in `tests/determinism_equivalence.rs`), so the only thing
//! this benchmark measures is scheduling:
//!
//! - `serial` — one window at a time;
//! - `parallel` — each round's stage fans across cores with a barrier
//!   per stage, so the slowest window of every stage gates the rest of
//!   the machine;
//! - `sharded` — several rounds in flight at once, windows interleaved
//!   across rounds, so stage barriers only exist per round and cores
//!   never idle while another round still has work. The gap between
//!   `parallel` and `sharded` grows with round count and core count.
//!
//! First-touch rounds also stress the ping engine's pair cache; it is
//! sharded across 64 locks precisely so the many concurrent inserts of
//! a multi-round-in-flight campaign do not serialize (the sharded
//! row of the table is where a single-lock cache shows up as lost
//! speedup).
//!
//! Knobs: `SHORTCUTS_BENCH_ROUNDS` (default 4) scales the campaign;
//! `SHORTCUTS_ROUNDS_IN_FLIGHT` (default 4) the sharding depth;
//! `RAYON_NUM_THREADS` caps the worker count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::backend::ExecMode;
use shortcuts_core::workflow::{Campaign, CampaignConfig, CampaignResults};
use shortcuts_core::world::{World, WorldConfig};
use std::time::Instant;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_rounds() -> u32 {
    env_or("SHORTCUTS_BENCH_ROUNDS", 4)
}

fn rounds_in_flight() -> usize {
    env_or("SHORTCUTS_ROUNDS_IN_FLIGHT", 4) as usize
}

fn campaign_cfg(exec: ExecMode) -> CampaignConfig {
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = bench_rounds();
    cfg.exec = exec;
    cfg
}

fn run(world: &World, exec: ExecMode) -> CampaignResults {
    Campaign::new(world, campaign_cfg(exec)).run()
}

fn sharded_mode() -> ExecMode {
    ExecMode::Sharded {
        rounds_in_flight: rounds_in_flight(),
    }
}

fn bench_campaign_serial(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    c.bench_function("campaign_parallel/serial", |b| {
        b.iter(|| black_box(run(&world, ExecMode::Serial)))
    });
}

fn bench_campaign_parallel(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    c.bench_function("campaign_parallel/parallel", |b| {
        b.iter(|| black_box(run(&world, ExecMode::Parallel)))
    });
}

fn bench_campaign_sharded(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);
    c.bench_function("campaign_parallel/sharded", |b| {
        b.iter(|| black_box(run(&world, sharded_mode())))
    });
}

/// One timed three-way run with an explicit speedup table — the
/// numbers the ROADMAP's "as fast as the hardware allows" item tracks.
fn bench_speedup_report(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(), 7);

    let t = Instant::now();
    let serial = run(&world, ExecMode::Serial);
    let serial_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let parallel = run(&world, ExecMode::Parallel);
    let parallel_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let sharded = run(&world, sharded_mode());
    let sharded_secs = t.elapsed().as_secs_f64();

    // Canary: the modes must agree exactly.
    for other in [&parallel, &sharded] {
        assert_eq!(serial.total_cases(), other.total_cases());
        assert_eq!(serial.pings_sent, other.pings_sent);
        for (a, b) in serial.cases.iter().zip(&other.cases) {
            assert_eq!(a.direct_ms.to_bits(), b.direct_ms.to_bits());
        }
    }

    let cores = rayon::current_num_threads();
    println!(
        "campaign_parallel/speedup ({} rounds, {} cases, {cores} thread(s), \
         {} rounds in flight):",
        bench_rounds(),
        serial.total_cases(),
        rounds_in_flight(),
    );
    for (name, secs) in [
        ("serial", serial_secs),
        ("parallel", parallel_secs),
        ("sharded", sharded_secs),
    ] {
        println!(
            "  {name:>8}: {secs:6.2}s  ({:.2}x vs serial)",
            serial_secs / secs
        );
    }
    println!(
        "  sharded vs parallel: {:.2}x",
        parallel_secs / sharded_secs
    );

    // Keep criterion's ledger aware this ran.
    c.bench_function("campaign_parallel/speedup_report_noop", |b| {
        b.iter(|| black_box(0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_speedup_report, bench_campaign_serial, bench_campaign_parallel,
        bench_campaign_sharded
}
criterion_main!(benches);
