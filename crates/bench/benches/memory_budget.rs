//! Throughput vs memory budget on internet-scale worlds: the number
//! behind the ISSUE's "bounded caches with eviction" tentpole.
//!
//! The budget contract is that a `--memory-budget` bounds cache
//! *residency*, never results: the router's destination-table cache
//! and the engine's pair cache evict (CLOCK, second chance) and
//! transparently recompute, so a budgeted sweep streams the same CSV
//! bytes as an unbounded one — it just re-derives evicted world facts
//! on demand. This bench puts a price on that: for each world scale
//! it runs one unbounded reference sweep, records its end-of-run
//! cache residency (the unbounded stack only grows, so end-of-run IS
//! peak), then re-runs the identical sweep under budgets at a set of
//! fractions of that peak (default 50%, 25% and 12.5%) and reports
//! wall time, throughput, residency, evictions and recomputes per
//! budget level. Every
//! budgeted run's per-scenario CSV is asserted byte-identical to the
//! reference — the table compares equal outputs by construction.
//!
//! Knobs:
//! - `SHORTCUTS_BUDGET_SCALES` (default `10`): comma-separated world
//!   scale factors over the paper topology, e.g. `10,100` for the
//!   full internet-scale table.
//! - `SHORTCUTS_BUDGET_FRACS` (default `50,25,12.5`): budget levels
//!   as percentages of the unbounded run's peak residency.
//! - `SHORTCUTS_BUDGET_SCENARIOS` (default 3) sweep scenarios,
//!   `SHORTCUTS_BENCH_ROUNDS` (default 2) rounds each.
//! - `RAYON_NUM_THREADS` caps the worker count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use shortcuts_core::report::cases_csv;
use shortcuts_core::sweep::{Sweep, SweepConfig};
use shortcuts_core::workflow::CampaignConfig;
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_netsim::ping::{pair_entry_min_bytes, PingEngine, CACHE_SHARDS};
use shortcuts_topology::routing::table_approx_bytes;
use shortcuts_topology::MemoryBudget;
use std::sync::Arc;
use std::time::Instant;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scales() -> Vec<f64> {
    std::env::var("SHORTCUTS_BUDGET_SCALES")
        .unwrap_or_else(|_| "10".into())
        .split(',')
        .filter_map(|s| s.trim().parse::<f64>().ok())
        .filter(|&f| f >= 1.0)
        .collect()
}

/// Budget levels as percentages of the unbounded run's peak
/// residency (`SHORTCUTS_BUDGET_FRACS`, default `50,25,12.5`).
fn budget_fracs() -> Vec<f64> {
    std::env::var("SHORTCUTS_BUDGET_FRACS")
        .unwrap_or_else(|_| "50,25,12.5".into())
        .split(',')
        .filter_map(|s| s.trim().parse::<f64>().ok())
        .filter(|&f| f > 0.0 && f < 100.0)
        .collect()
}

fn sweep_config() -> SweepConfig {
    let mut base = CampaignConfig::paper();
    base.rounds = env_or("SHORTCUTS_BENCH_ROUNDS", 2);
    let scenarios = u64::from(env_or("SHORTCUTS_BUDGET_SCENARIOS", 3));
    SweepConfig::from_seeds(&base, 2017..2017 + scenarios)
}

struct RunStats {
    secs: f64,
    pings: u64,
    resident: u64,
    evictions: u64,
    recomputes: u64,
    csvs: Vec<(String, String)>,
}

/// One full sweep through a freshly built engine under `budget`.
fn run_once(world: &Arc<World>, cfg: &SweepConfig, budget: MemoryBudget) -> RunStats {
    let engine: Arc<PingEngine> = world
        .shared()
        .engine_budgeted(cfg.scenarios[0].config.routing, budget);
    let t = Instant::now();
    let report = Sweep::with_engine(Arc::clone(world), Arc::clone(&engine), cfg.clone()).run();
    let secs = t.elapsed().as_secs_f64();
    let stats = engine.engine_stats();
    RunStats {
        secs,
        pings: stats.pings_sent,
        resident: stats.router_resident_bytes + stats.pair_resident_bytes,
        evictions: stats.router_evictions + stats.pair_evictions,
        recomputes: stats.router_recomputes,
        csvs: report
            .scenarios
            .iter()
            .map(|s| (s.label.clone(), cases_csv(&s.results)))
            .collect(),
    }
}

/// The smallest budget `ensure_fits` would accept for this world —
/// the bench never asks for a budget the CLI would reject.
fn floor_bytes(world: &World) -> u64 {
    let table = table_approx_bytes(world.topo.node_index().len());
    let need_router = table * 2;
    let need_pair = pair_entry_min_bytes() * CACHE_SHARDS as u64;
    (need_router.max(need_pair) * 1000 / 450) + 1000
}

fn bench_budget_report(c: &mut Criterion) {
    let cfg = sweep_config();
    for scale in scales() {
        let t = Instant::now();
        let world = Arc::new(World::build(&WorldConfig::scaled(scale), 7));
        let build_secs = t.elapsed().as_secs_f64();

        let reference = run_once(&world, &cfg, MemoryBudget::unbounded());
        let peak = reference.resident;
        let floor = floor_bytes(&world);

        println!(
            "memory_budget/scale-{scale}x: {} ASes, {} links, world build {build_secs:.1}s, \
             {} scenarios x {} rounds, {} thread(s); unbounded peak residency {:.1} MiB",
            world.topo.as_count(),
            world.topo.link_count(),
            cfg.scenarios.len(),
            env_or("SHORTCUTS_BENCH_ROUNDS", 2),
            rayon::current_num_threads(),
            peak as f64 / (1 << 20) as f64,
        );
        println!(
            "  {:>12} {:>8} {:>12} {:>14} {:>10} {:>10}",
            "budget", "time", "pings/s", "resident", "evictions", "recomputes"
        );
        let row = |name: &str, s: &RunStats| {
            println!(
                "  {:>12} {:>7.2}s {:>12.0} {:>10.1} MiB {:>10} {:>10}",
                name,
                s.secs,
                s.pings as f64 / s.secs,
                s.resident as f64 / (1 << 20) as f64,
                s.evictions,
                s.recomputes
            );
        };
        row("unbounded", &reference);

        for frac_pct in budget_fracs() {
            let name = format!("{frac_pct}%");
            let bytes = ((peak as f64 * frac_pct / 100.0) as u64).max(floor);
            let budget = MemoryBudget::bytes(bytes);
            let run = run_once(&world, &cfg, budget);
            // The whole point: bounded residency, identical bytes.
            assert!(
                run.resident <= bytes,
                "scale {scale}x budget {bytes}: residency {} exceeded the budget",
                run.resident
            );
            assert_eq!(
                run.csvs, reference.csvs,
                "scale {scale}x budget {bytes}: budgeted sweep diverged from unbounded"
            );
            row(&name, &run);
        }
    }

    // Keep criterion's ledger aware this ran.
    c.bench_function("memory_budget/report_noop", |b| b.iter(|| black_box(0)));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_budget_report
}
criterion_main!(benches);
