//! # shortcuts-bench
//!
//! Reproduction harness: one binary per figure/table of the paper plus
//! ablations, and Criterion micro-benchmarks for the hot paths.
//!
//! Every binary runs a deterministic paper-scale campaign and prints the
//! same rows/series the paper reports, next to the paper's reference
//! values. Two environment variables control scale:
//!
//! - `SHORTCUTS_ROUNDS` — measurement rounds (default 8 for a fast run;
//!   set 45 for the paper's full campaign).
//! - `SHORTCUTS_SEED` — world/campaign seed (default 2017).
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured numbers.

use shortcuts_core::workflow::{Campaign, CampaignConfig, CampaignResults};
use shortcuts_core::world::{World, WorldConfig};

/// Number of rounds from `SHORTCUTS_ROUNDS` (default 8).
pub fn rounds_from_env() -> u32 {
    std::env::var("SHORTCUTS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Seed from `SHORTCUTS_SEED` (default 2017).
pub fn seed_from_env() -> u64 {
    std::env::var("SHORTCUTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2017)
}

/// Builds the paper-scale world used by all experiment binaries.
pub fn build_world() -> World {
    World::build(&WorldConfig::paper_scale(), seed_from_env())
}

/// Runs the standard campaign over `world` with the env-selected number
/// of rounds.
pub fn run_campaign(world: &World) -> CampaignResults {
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = rounds_from_env();
    cfg.seed = seed_from_env();
    Campaign::new(world, cfg).run()
}

/// Prints the standard experiment header.
pub fn print_header(title: &str, world: &World, rounds: u32) {
    println!("== {title} ==");
    println!(
        "world: {} ASes, {} facilities, {} hosts | rounds: {rounds} (SHORTCUTS_ROUNDS to change; paper used 45) | seed: {}",
        world.topo.as_count(),
        world.topo.facilities().len(),
        world.hosts.len(),
        world.seed,
    );
    println!();
}

/// Renders a unit-interval value as a short ASCII bar.
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Not set in the test environment.
        std::env::remove_var("SHORTCUTS_ROUNDS");
        std::env::remove_var("SHORTCUTS_SEED");
        assert_eq!(rounds_from_env(), 8);
        assert_eq!(seed_from_env(), 2017);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.5, 4), "####");
    }
}
