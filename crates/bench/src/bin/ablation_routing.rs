//! Ablation — valley-free policy routing vs. unrestricted shortest
//! path.
//!
//! The paper attributes relay gains to BGP **path inflation**. If that
//! is the mechanism, removing routing policy (shortest-path over the
//! same graph) should collapse the direct paths' inflation and with it
//! most of the relays' advantage. This ablation runs the identical
//! campaign under both policies and compares the headline fractions.

use shortcuts_bench::{build_world, print_header, rounds_from_env, seed_from_env};
use shortcuts_core::analysis::improvement::ImprovementAnalysis;
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::RelayType;
use shortcuts_topology::routing::RoutingPolicy;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env().min(6);
    print_header(
        "Ablation: valley-free vs shortest-path routing",
        &world,
        rounds,
    );

    let run = |policy: RoutingPolicy| {
        let mut cfg = CampaignConfig::paper();
        cfg.rounds = rounds;
        cfg.seed = seed_from_env();
        cfg.routing = policy;
        let results = Campaign::new(&world, cfg).run();
        let analysis = ImprovementAnalysis::compute(&results);
        (results, analysis)
    };

    let (vf_res, vf) = run(RoutingPolicy::ValleyFree);
    let (sp_res, sp) = run(RoutingPolicy::ShortestPath);

    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "type", "valley-free", "shortest-path", "delta(pp)"
    );
    for t in RelayType::ALL {
        let a = 100.0 * vf.for_type(t).improved_fraction;
        let b = 100.0 * sp.for_type(t).improved_fraction;
        println!(
            "{:<10} {:>15.1}% {:>15.1}% {:>+12.1}",
            t.label(),
            a,
            b,
            b - a
        );
    }

    let vf_median: f64 = median_direct(&vf_res);
    let sp_median: f64 = median_direct(&sp_res);
    println!();
    println!(
        "median direct RTT: valley-free {vf_median:.1} ms, shortest-path {sp_median:.1} ms \
         (policy inflation adds {:.1} ms at the median)",
        vf_median - sp_median
    );
    println!(
        "median COR improvement: valley-free {:.1} ms, shortest-path {:.1} ms",
        vf.for_type(RelayType::Cor).median_improvement_ms,
        sp.for_type(RelayType::Cor).median_improvement_ms,
    );
    println!("\nReading: policy inflation raises direct RTTs, and — more tellingly —");
    println!("valley-free routing is what makes COLO relays uniquely strong: under");
    println!("shortest-path routing the other relay types close most of the gap,");
    println!("because the peering shortcuts concentrated at colos only matter when");
    println!("policy would otherwise deny those paths.");
}

fn median_direct(results: &shortcuts_core::CampaignResults) -> f64 {
    let mut v: Vec<f64> = results.cases.iter().map(|c| c.direct_ms).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if v.is_empty() {
        0.0
    } else {
        v[v.len() / 2]
    }
}
