//! loadgen: open-loop load harness for the session server.
//!
//! Drives N scripted client sessions against a server — spawned
//! in-process (`--spawn`, the default) or remote (`--addr`) — with an
//! open-loop arrival schedule: session i starts at `i / rate` seconds
//! after the run begins whether or not earlier sessions finished, the
//! way real clients arrive. Each session plays one scripted workload
//! drawn from a weighted mix of `RUN` (private execution, per-session
//! campaign seed), `SUBSCRIBE` (all subscribers share one broadcast
//! key) and `STATS` probes. Denied or busy sessions retry with the
//! client's jittered exponential backoff.
//!
//! The report prints outcome counts, per-round latency percentiles
//! (gap between consecutive stream events), session-duration
//! percentiles, aggregate sessions/sec and rounds/sec, and the peak
//! number of concurrently open sessions. Exits nonzero if no session
//! succeeded.
//!
//!     loadgen --sessions 1024 --rate 512 --rounds 3 \
//!             --mix run=6,subscribe=3,stats=1 --retries 6
//!
//! Flags: `--addr HOST:PORT` | `--spawn`, `--sessions N`, `--rate R`
//! (sessions/sec; 0 = all at once), `--rounds N`, `--mix SPEC`,
//! `--world-seed S`, `--framing text|binary`, `--retries N`,
//! `--json PATH` (write the summary as a machine-readable JSON
//! object — same numbers as the printed report — for CI trending).
//!
//! `--rate 0` with more sessions than the listener's accept backlog
//! (128 on Linux) deliberately provokes a thundering herd: the
//! overflow connects sit in kernel SYN retransmit for seconds to
//! minutes before the retry layer even sees them. That is a valid
//! stress mode but a misleading latency measurement — use a finite
//! rate when the percentiles are the point.

use shortcuts_service::{
    Client, CreditConfig, Framing, RetryPolicy, Server, ServiceConfig, StreamEvent,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORLD_SEED_DEFAULT: u64 = 7;
const SHARED_SUBSCRIBE_SEED: u64 = 4242;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Workload {
    Run,
    Subscribe,
    Stats,
}

#[derive(Clone)]
struct Args {
    addr: Option<String>,
    sessions: usize,
    rate: f64,
    rounds: u32,
    mix: Vec<(Workload, u32)>,
    world_seed: u64,
    framing: Framing,
    retries: u32,
    json: Option<std::path::PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            sessions: 64,
            rate: 128.0,
            rounds: 3,
            mix: vec![
                (Workload::Run, 6),
                (Workload::Subscribe, 3),
                (Workload::Stats, 1),
            ],
            world_seed: WORLD_SEED_DEFAULT,
            framing: Framing::Text,
            retries: 6,
            json: None,
        }
    }
}

fn parse_mix(spec: &str) -> Result<Vec<(Workload, u32)>, String> {
    let mut mix = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (name, weight) = part
            .split_once('=')
            .ok_or_else(|| format!("mix entry {part:?} is not name=weight"))?;
        let weight: u32 = weight
            .parse()
            .map_err(|_| format!("mix weight {weight:?} is not a number"))?;
        let workload = match name {
            "run" => Workload::Run,
            "subscribe" => Workload::Subscribe,
            "stats" => Workload::Stats,
            other => return Err(format!("unknown workload {other:?} (run|subscribe|stats)")),
        };
        mix.push((workload, weight));
    }
    if mix.iter().all(|(_, w)| *w == 0) {
        return Err("mix has no positive weight".into());
    }
    Ok(mix)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--spawn" => args.addr = None,
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--mix" => args.mix = parse_mix(&value("--mix")?)?,
            "--world-seed" => {
                args.world_seed = value("--world-seed")?
                    .parse()
                    .map_err(|e| format!("--world-seed: {e}"))?
            }
            "--framing" => {
                let v = value("--framing")?;
                args.framing = Framing::parse(&v)
                    .ok_or_else(|| format!("--framing takes text|binary, got {v:?}"))?
            }
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--json" => args.json = Some(std::path::PathBuf::from(value("--json")?)),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT | --spawn] [--sessions N] [--rate R] \
                     [--rounds N] [--mix run=W,subscribe=W,stats=W] [--world-seed S] \
                     [--framing text|binary] [--retries N] [--json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Deterministic weighted pick: session i draws by walking the
/// cumulative weights at `i % total`, so any prefix of sessions sees
/// (roughly) the configured proportions without a RNG.
fn pick_workload(mix: &[(Workload, u32)], i: usize) -> Workload {
    let total: u32 = mix.iter().map(|(_, w)| w).sum();
    let mut slot = (i as u32) % total;
    for (workload, weight) in mix {
        if slot < *weight {
            return *workload;
        }
        slot -= weight;
    }
    mix[0].0
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    lagged: AtomicU64,
    denied: AtomicU64,
    failed: AtomicU64,
    rounds: AtomicU64,
    concurrent: AtomicU64,
    peak_concurrent: AtomicU64,
}

impl Tally {
    fn enter(&self) {
        let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_concurrent.fetch_max(now, Ordering::SeqCst);
    }
    fn leave(&self) {
        self.concurrent.fetch_sub(1, Ordering::SeqCst);
    }
}

struct SessionResult {
    round_latencies: Vec<Duration>,
    duration: Duration,
}

/// Runs one scripted session; classifies the outcome into the tally
/// and returns its timings (empty on failure).
fn run_session(addr: &str, args: &Args, i: usize, tally: &Tally) -> SessionResult {
    let start = Instant::now();
    let policy = RetryPolicy::with_attempts(args.retries);
    let workload = pick_workload(&args.mix, i);
    tally.enter();
    let mut round_latencies = Vec::new();
    let outcome = (|| -> Result<(), std::io::Error> {
        let mut client = Client::connect_with_retry(addr, policy)?;
        if args.framing != Framing::Text {
            client.negotiate(args.framing)?;
        }
        match workload {
            Workload::Stats => {
                client.stats()?;
            }
            Workload::Run | Workload::Subscribe => {
                let (verb, seed) = if workload == Workload::Run {
                    // Distinct campaign seeds keep RUNs private work.
                    ("RUN", 10_000 + i as u64)
                } else {
                    // All subscribers share one broadcast key.
                    ("SUBSCRIBE", SHARED_SUBSCRIBE_SEED)
                };
                let request = format!(
                    "{verb} seed={seed} rounds={} world-seed={}",
                    args.rounds, args.world_seed
                );
                let mut last = Instant::now();
                client.run_streaming_with_retry(&request, policy, |e| {
                    if matches!(e, StreamEvent::Round(_)) {
                        round_latencies.push(last.elapsed());
                        last = Instant::now();
                    }
                })?;
            }
        }
        client.quit();
        Ok(())
    })();
    tally.leave();
    tally
        .rounds
        .fetch_add(round_latencies.len() as u64, Ordering::Relaxed);
    match outcome {
        Ok(()) => {
            tally.ok.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            let msg = e.to_string();
            let bucket = if msg.contains("lagged") {
                &tally.lagged
            } else if msg.contains("ERR credits") || msg.contains("ERR busy") {
                &tally.denied
            } else {
                &tally.failed
            };
            bucket.fetch_add(1, Ordering::Relaxed);
            round_latencies.clear();
        }
    }
    SessionResult {
        round_latencies,
        duration: start.elapsed(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn print_percentiles(label: &str, sorted: &[Duration]) {
    println!(
        "  {label}: p50 {:8.2?}  p90 {:8.2?}  p99 {:8.2?}  max {:8.2?}  (n={})",
        percentile(sorted, 50.0),
        percentile(sorted, 90.0),
        percentile(sorted, 99.0),
        sorted.last().copied().unwrap_or(Duration::ZERO),
        sorted.len(),
    );
}

/// Renders the percentile summary of a sorted sample set as a JSON
/// object (seconds, `{:.6}` — same numbers as the printed report).
fn json_percentiles(sorted: &[Duration]) -> String {
    format!(
        r#"{{"p50_s":{:.6},"p90_s":{:.6},"p99_s":{:.6},"max_s":{:.6},"n":{}}}"#,
        percentile(sorted, 50.0).as_secs_f64(),
        percentile(sorted, 90.0).as_secs_f64(),
        percentile(sorted, 99.0).as_secs_f64(),
        sorted
            .last()
            .copied()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64(),
        sorted.len(),
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // A spawned server admits the whole fleet and never denies on
    // credits: loadgen measures serving capacity, not admission
    // policy. Point --addr at a configured server to test the latter.
    let spawned = if args.addr.is_none() {
        let mut cfg = ServiceConfig::small();
        cfg.max_sessions = args.sessions + 16;
        cfg.default_world_seed = args.world_seed;
        cfg.credits = CreditConfig::generous();
        Some(Server::start("127.0.0.1:0", cfg).expect("spawn server"))
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| spawned.as_ref().unwrap().local_addr().to_string());

    println!(
        "loadgen: {} sessions at {}/s against {addr} ({} server), rounds={}, mix={:?}, \
         framing={}, retries={}",
        args.sessions,
        args.rate,
        if spawned.is_some() {
            "spawned"
        } else {
            "remote"
        },
        args.rounds,
        args.mix,
        args.framing.label(),
        args.retries,
    );

    let tally = Arc::new(Tally::default());
    let begin = Instant::now();
    let results: Vec<SessionResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|i| {
                let addr = addr.as_str();
                let args = &args;
                let tally = Arc::clone(&tally);
                scope.spawn(move || {
                    // Open-loop arrival: session i starts on schedule
                    // regardless of how earlier sessions are doing.
                    if args.rate > 0.0 {
                        let due = Duration::from_secs_f64(i as f64 / args.rate);
                        let elapsed = begin.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                    }
                    run_session(addr, args, i, &tally)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = begin.elapsed().as_secs_f64();

    let ok = tally.ok.load(Ordering::Relaxed);
    let lagged = tally.lagged.load(Ordering::Relaxed);
    let denied = tally.denied.load(Ordering::Relaxed);
    let failed = tally.failed.load(Ordering::Relaxed);
    let rounds = tally.rounds.load(Ordering::Relaxed);
    println!(
        "outcomes: {ok} ok, {lagged} lagged, {denied} denied, {failed} failed \
         ({} sessions in {wall:.2}s)",
        args.sessions
    );
    println!(
        "throughput: {:.1} sessions/s, {:.1} rounds/s, peak {} concurrent sessions",
        args.sessions as f64 / wall,
        rounds as f64 / wall,
        tally.peak_concurrent.load(Ordering::Relaxed),
    );
    let mut round_latencies: Vec<Duration> = results
        .iter()
        .flat_map(|r| r.round_latencies.iter().copied())
        .collect();
    round_latencies.sort();
    let mut session_durations: Vec<Duration> = results.iter().map(|r| r.duration).collect();
    session_durations.sort();
    print_percentiles("round latency   ", &round_latencies);
    print_percentiles("session duration", &session_durations);

    if let Some(path) = &args.json {
        // Machine-readable mirror of the printed report, for CI
        // trending. Hand-rolled: every value is a number, so no
        // escaping is needed and no JSON dependency is worth it.
        let json = format!(
            concat!(
                "{{\"sessions\":{},\"ok\":{},\"lagged\":{},\"denied\":{},\"failed\":{},",
                "\"rounds\":{},\"wall_s\":{:.3},\"sessions_per_s\":{:.3},",
                "\"rounds_per_s\":{:.3},\"peak_concurrent\":{},",
                "\"round_latency\":{},\"session_duration\":{}}}\n"
            ),
            args.sessions,
            ok,
            lagged,
            denied,
            failed,
            rounds,
            wall,
            args.sessions as f64 / wall,
            rounds as f64 / wall,
            tally.peak_concurrent.load(Ordering::Relaxed),
            json_percentiles(&round_latencies),
            json_percentiles(&session_durations),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    }

    if let Some(server) = spawned {
        server.shutdown();
    }
    if ok == 0 {
        eprintln!("loadgen: every session failed");
        std::process::exit(1);
    }
}
