//! Ablation — the §2.4 speed-of-light feasibility pre-filter.
//!
//! Two questions: (a) how much measurement does the filter save, and
//! (b) is it safe — could an excluded relay ever have beaten the direct
//! path? Safety holds by construction when the RTT model never goes
//! below the propagation floor; this binary verifies it empirically on
//! top of quantifying the savings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use shortcuts_bench::{build_world, print_header, seed_from_env};
use shortcuts_core::colo::{run_pipeline, ColoPipelineConfig};
use shortcuts_core::eyeball::{select_eyeballs, EndpointPool};
use shortcuts_core::feasibility::{is_feasible, min_relay_rtt};
use shortcuts_core::measure::{measure_pair, WindowConfig};
use shortcuts_core::relays::RelayPools;
use shortcuts_netsim::clock::SimTime;

fn main() {
    let world = build_world();
    print_header("Ablation: feasibility pre-filter (§2.4)", &world, 1);

    let engine = world.shared().engine(Default::default());
    let mut rng = StdRng::seed_from_u64(seed_from_env());
    let vantage = world.looking_glasses.lgs()[0].host;
    let colo = run_pipeline(
        &world,
        &*engine,
        vantage,
        SimTime(0.0),
        &ColoPipelineConfig::default(),
        &mut rng,
    );
    let verified = select_eyeballs(&world, 10.0).verified;
    let endpoint_pool = EndpointPool::build(&world, &verified);
    let relay_pools = RelayPools::build(&world, &colo, &verified);

    let raes = endpoint_pool.sample_round(&mut rng);
    let relays = relay_pools.sample_round(&world, 0, &mut rng);
    let window = WindowConfig::default();

    // Direct medians for one round.
    let mut feasible_links = 0u64;
    let mut total_links = 0u64;
    let mut violations = 0u64;
    let mut checked = 0u64;
    let mut pairs = 0u64;
    for i in 0..raes.len() {
        for j in (i + 1)..raes.len() {
            let Some(direct) = measure_pair(
                &*engine,
                raes[i].host,
                raes[j].host,
                SimTime(0.0),
                &window,
                &mut rng,
            ) else {
                continue;
            };
            pairs += 1;
            let si = world.hosts.get(raes[i].host).location;
            let sj = world.hosts.get(raes[j].host).location;
            for r in &relays.relays {
                total_links += 2;
                if is_feasible(&si, &sj, &r.location, direct) {
                    feasible_links += 2;
                } else if checked < 20_000 {
                    // Safety check: the stitched *base* RTT of an
                    // infeasible relay must never beat the measured
                    // direct RTT (up to the noise floor of `direct`).
                    checked += 1;
                    if let (Some(l1), Some(l2)) = (
                        engine.base_rtt(raes[i].host, r.host),
                        engine.base_rtt(raes[j].host, r.host),
                    ) {
                        // Infeasibility certificate from geometry alone.
                        debug_assert!(min_relay_rtt(&si, &sj, &r.location) > direct);
                        if l1 + l2 < direct {
                            violations += 1;
                        }
                    }
                }
            }
        }
    }

    println!("pairs measured: {pairs}");
    println!(
        "overlay links needed: {feasible_links} of {total_links} ({:.1}% saved by the filter)",
        100.0 * (1.0 - feasible_links as f64 / total_links.max(1) as f64)
    );
    println!(
        "infeasible relays that would have beaten the direct path: {violations} of {checked} checked"
    );
    println!("\nExpected: a large saving and (near-)zero violations — the filter");
    println!("discards only relays that cannot win even in a speed-of-light Internet.");
}
