//! Ablation — median-of-6 windows vs. a single ping per pair.
//!
//! §2.5 (footnote 4) argues medians are needed because RTT samples
//! contain heavy outliers. This ablation reruns the campaign with
//! 1-ping windows and compares: the stability (CV) of pair RTTs and how
//! far the headline improvement fractions drift when spikes leak into
//! the estimates.

use shortcuts_bench::{build_world, print_header, rounds_from_env, seed_from_env};
use shortcuts_core::analysis::improvement::ImprovementAnalysis;
use shortcuts_core::analysis::stability::StabilityAnalysis;
use shortcuts_core::measure::WindowConfig;
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::RelayType;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env().clamp(3, 6);
    print_header("Ablation: median-of-6 vs single ping", &world, rounds);

    let run = |window: WindowConfig| {
        let mut cfg = CampaignConfig::paper();
        cfg.rounds = rounds;
        cfg.seed = seed_from_env();
        cfg.window = window;
        Campaign::new(&world, cfg).run()
    };

    let median6 = run(WindowConfig::default());
    let single = run(WindowConfig {
        pings: 1,
        interval_secs: 0.0,
        min_valid: 1,
    });

    let a6 = ImprovementAnalysis::compute(&median6);
    let a1 = ImprovementAnalysis::compute(&single);
    println!("{:<10} {:>14} {:>14}", "type", "median-of-6", "single-ping");
    for t in RelayType::ALL {
        println!(
            "{:<10} {:>13.1}% {:>13.1}%",
            t.label(),
            100.0 * a6.for_type(t).improved_fraction,
            100.0 * a1.for_type(t).improved_fraction,
        );
    }

    let s6 = StabilityAnalysis::compute(&median6, 3);
    let s1 = StabilityAnalysis::compute(&single, 3);
    println!();
    println!(
        "pairs with CV < 10%:  median-of-6 {:.0}%  single-ping {:.0}%",
        100.0 * s6.fraction_below(0.10),
        100.0 * s1.fraction_below(0.10)
    );
    println!(
        "max CV:               median-of-6 {:.0}%  single-ping {:.0}%",
        100.0 * s6.max_cv(),
        100.0 * s1.max_cv()
    );
    println!(
        "pings sent:           median-of-6 {:.2}M  single-ping {:.2}M",
        median6.pings_sent as f64 / 1e6,
        single.pings_sent as f64 / 1e6
    );
    println!("\nExpected: single-ping estimates are visibly less stable (higher CVs)");
    println!("because spikes leak straight into the per-round RTT estimates.");
}
