//! §3 in-text scalar results: country-change effect, intercontinental
//! share, the 320 ms VoIP threshold, temporal stability (CV), per-round
//! consistency, and ping-direction symmetry.
//!
//! Paper references:
//! - COR relays in a different country than both endpoints improve 75 %
//!   of cases; sharing a country with an endpoint drops this to 50 %.
//! - 74 % of RAE pairs are intercontinental.
//! - 19 % of direct paths exceed 320 ms; with COR relays, 11 %.
//! - CV of pair RTTs < 10 % for 90 % of pairs; CV range 0–40 %.
//! - COR wins > 75 % in every round; ~80 % of bidirectional pairs agree
//!   within 5 %.

use shortcuts_bench::{build_world, print_header, rounds_from_env, run_campaign};
use shortcuts_core::analysis::country::{intercontinental_fraction, CountryAnalysis};
use shortcuts_core::analysis::stability::{per_round_improved_fraction, StabilityAnalysis};
use shortcuts_core::analysis::symmetry::SymmetryAnalysis;
use shortcuts_core::analysis::voip::VoipAnalysis;
use shortcuts_core::RelayType;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env();
    print_header("§3 scalar results", &world, rounds);
    let results = run_campaign(&world);

    println!("-- Changing countries and paths --");
    println!(
        "{:<10} {:>18} {:>18}",
        "type", "diff-country", "same-country"
    );
    for t in RelayType::ALL {
        let a = CountryAnalysis::compute(&results, t);
        println!(
            "{:<10} {:>16.0}% ({:>5}) {:>14.0}% ({:>5})",
            t.label(),
            100.0 * a.different_country_rate(),
            a.different_country_cases,
            100.0 * a.same_country_rate(),
            a.same_country_cases,
        );
    }
    println!("(paper, COR: 75% vs 50%)");
    println!(
        "intercontinental RAE pairs: {:.0}% (paper: 74%)\n",
        100.0 * intercontinental_fraction(&results)
    );

    println!("-- VoIP 320 ms threshold --");
    let v = VoipAnalysis::compute(&results);
    println!(
        "direct paths over {} ms: {:.1}% (paper: 19%); with COR relays: {:.1}% (paper: 11%)\n",
        v.threshold_ms,
        100.0 * v.direct_over,
        100.0 * v.with_cor_over
    );

    println!("-- Stability over time --");
    let s = StabilityAnalysis::compute(&results, 3.min(rounds as usize));
    println!(
        "pairs with CV < 10%: {:.0}% (paper: 90%); max CV: {:.0}% (paper: <=40%)",
        100.0 * s.fraction_below(0.10),
        100.0 * s.max_cv()
    );
    for t in RelayType::ALL {
        let fracs = per_round_improved_fraction(&results, t);
        let min = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fracs.iter().cloned().fold(0.0_f64, f64::max);
        println!(
            "  {:<10} per-round improved fraction: min {:.2} max {:.2}",
            t.label(),
            min,
            max
        );
    }
    println!("(paper: COR >0.75 in every round, RAR_other >0.5, others <0.5)\n");

    println!("-- Ping-direction symmetry --");
    let sy = SymmetryAnalysis::compute(&results);
    println!(
        "{} bidirectional pairs; {:.0}% within 5% (paper: ~80%); mean signed diff {:+.2}% (paper: ~0%)",
        sy.samples,
        100.0 * sy.within_5pct,
        100.0 * sy.mean_signed_diff
    );
}
