//! Ablation — COR relays at flagship hub-metro facilities vs. small
//! regional facilities.
//!
//! Table 1 suggests the paper's heavy hitters are all in large hub
//! colos. This ablation splits the COR relay pool by facility location
//! (hub metro or not) and recomputes the improvement coverage of each
//! half, isolating "being in a colo" from "being in a *large, hub*
//! colo".

use shortcuts_bench::{build_world, print_header, rounds_from_env, run_campaign};
use shortcuts_core::{CampaignResults, RelayType};
use shortcuts_netsim::HostId;
use std::collections::HashSet;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env();
    print_header(
        "Ablation: hub-colo vs regional-colo COR relays",
        &world,
        rounds,
    );
    let results = run_campaign(&world);

    // Split COR relays by whether their facility city is a hub metro.
    let mut hub_relays: HashSet<HostId> = HashSet::new();
    let mut regional_relays: HashSet<HostId> = HashSet::new();
    for (&host, meta) in &results.relay_meta {
        if meta.rtype != RelayType::Cor {
            continue;
        }
        if world.topo.cities.get(meta.city).is_hub {
            hub_relays.insert(host);
        } else {
            regional_relays.insert(host);
        }
    }

    let coverage = |allowed: &HashSet<HostId>| -> f64 {
        let improved = results
            .cases
            .iter()
            .filter(|c| {
                c.outcome(RelayType::Cor)
                    .improving
                    .iter()
                    .any(|(h, _)| allowed.contains(h))
            })
            .count();
        improved as f64 / results.total_cases().max(1) as f64
    };

    let all: HashSet<HostId> = hub_relays.union(&regional_relays).copied().collect();
    println!(
        "COR relays at hub facilities:      {:>4}  improve {:>5.1}% of total cases",
        hub_relays.len(),
        100.0 * coverage(&hub_relays)
    );
    println!(
        "COR relays at regional facilities: {:>4}  improve {:>5.1}% of total cases",
        regional_relays.len(),
        100.0 * coverage(&regional_relays)
    );
    println!(
        "all COR relays:                    {:>4}  improve {:>5.1}% of total cases",
        all.len(),
        100.0 * coverage(&all)
    );

    // Per-relay efficiency.
    let efficiency = |set: &HashSet<HostId>| {
        if set.is_empty() {
            return 0.0;
        }
        let total: usize = results
            .cases
            .iter()
            .map(|c| {
                c.outcome(RelayType::Cor)
                    .improving
                    .iter()
                    .filter(|(h, _)| set.contains(h))
                    .count()
            })
            .sum();
        total as f64 / set.len() as f64
    };
    println!();
    println!(
        "improvements contributed per relay: hub {:.0}, regional {:.0}",
        efficiency(&hub_relays),
        efficiency(&regional_relays)
    );
    println!("\nExpected: hub-colo relays carry most of the coverage with far fewer");
    println!("relays — the paper's 'few large Colos suffice' effect (Fig. 3, Table 1).");

    let _ = mk(&results);
}

// Keeps the binary honest if CampaignResults changes shape.
fn mk(r: &CampaignResults) -> usize {
    r.total_cases()
}
