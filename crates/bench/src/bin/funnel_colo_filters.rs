//! §2.2 funnel — the five-filter COR selection pipeline.
//!
//! Paper reference: 2675 → 1008 → 764 → 725 → 725 → 356 IP addresses,
//! ending at 58 facilities in 36 cities.

use rand::rngs::StdRng;
use rand::SeedableRng;
use shortcuts_bench::{build_world, print_header, seed_from_env};
use shortcuts_core::colo::{run_pipeline, ColoPipelineConfig};
use shortcuts_netsim::clock::SimTime;

fn main() {
    let world = build_world();
    print_header("§2.2 funnel: COR selection filters", &world, 0);

    let engine = world.shared().engine(Default::default());
    let vantage = world.looking_glasses.lgs()[0].host;
    let mut rng = StdRng::seed_from_u64(seed_from_env());
    let pool = run_pipeline(
        &world,
        &*engine,
        vantage,
        SimTime(0.0),
        &ColoPipelineConfig::default(),
        &mut rng,
    );

    let f = pool.funnel;
    let paper = [2675.0, 1008.0, 764.0, 725.0, 725.0, 356.0];
    let stages = [
        ("raw dataset", f.initial),
        ("1. single-facility & active PeeringDB", f.single_facility),
        ("2. pingability", f.pingable),
        ("3. same IP-ownership (no MOAS)", f.ownership),
        ("4. active facility presence", f.presence),
        ("5. RTT-based geolocation", f.geolocated),
    ];
    println!(
        "{:<42} {:>9} {:>10} {:>10}",
        "stage", "kept", "rate", "paper-rate"
    );
    let mut prev = f.initial as f64;
    let mut paper_prev = paper[0];
    for (i, (name, kept)) in stages.iter().enumerate() {
        let rate = if i == 0 { 1.0 } else { *kept as f64 / prev };
        let paper_rate = if i == 0 { 1.0 } else { paper[i] / paper_prev };
        println!(
            "{:<42} {:>9} {:>9.0}% {:>9.0}%",
            name,
            kept,
            100.0 * rate,
            100.0 * paper_rate
        );
        prev = *kept as f64;
        paper_prev = paper[i];
    }
    println!();
    println!(
        "surviving pool: {} IPs at {} facilities in {} cities (paper: 356 IPs, 58 facilities, 36 cities)",
        pool.relays.len(),
        pool.facility_count(),
        pool.city_count()
    );
}
