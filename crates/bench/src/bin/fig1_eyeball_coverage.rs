//! Fig. 1 — number of covered ASes and countries vs. cutoff Internet
//! user coverage.
//!
//! Paper reference points: at a 10 % cutoff, 494 ASes qualify and
//! 223/225 countries are covered; above ~30 % the AS and country curves
//! converge (one AS per country).

use shortcuts_bench::{build_world, print_header};
use shortcuts_core::eyeball::select_eyeballs;

fn main() {
    let world = build_world();
    print_header("Fig. 1: eyeball coverage vs cutoff", &world, 0);

    println!("{:>10} {:>10} {:>12}", "cutoff(%)", "#ASes", "#countries");
    let cutoffs: Vec<f64> = (0..=20).map(|i| f64::from(i) * 5.0).collect();
    for p in world.apnic.coverage_curve(&cutoffs) {
        println!(
            "{:>10.0} {:>10} {:>12}",
            p.cutoff_pct, p.n_ases, p.n_countries
        );
    }

    let at10_ases = world.apnic.ases_above(10.0).len();
    let at10_countries = world.apnic.countries_above(10.0).len();
    let total_countries = world.topo.cities.countries().len();
    println!();
    println!(
        "at 10% cutoff: {at10_ases} ASes across {at10_countries}/{total_countries} countries \
         (paper: 494 ASes, 223/225 countries)"
    );

    // The verification step of §2.1 (paper: all 494 verified manually).
    let sel = select_eyeballs(&world, 10.0);
    println!(
        "verified as eyeballs: {}/{} candidate tuples",
        sel.verified.len(),
        sel.candidates.len()
    );

    // Convergence observation: above ~30% mostly one AS per country.
    for cutoff in [30.0, 40.0, 50.0] {
        let per_country = world.apnic.ases_per_country(cutoff);
        let multi = per_country.values().filter(|&&n| n > 1).count();
        println!(
            "at {cutoff:>2.0}%: {} covered countries, {} with more than one AS",
            per_country.len(),
            multi
        );
    }
}
