//! Table 1 — facilities of the top-20 COR relays, with PeeringDB
//! enrichment.
//!
//! Paper reference: the top-20 relays concentrate in only 10
//! facilities; 4 of the 10 are in PeeringDB's global top-10 by
//! colocated networks; every one hosts ≥2 IXPs and ≥22 networks; all
//! offer (or colocate) cloud services; they cluster in Western-European
//! and North-American hub metros.

use shortcuts_bench::{build_world, print_header, rounds_from_env, run_campaign};
use shortcuts_core::analysis::facilities::FacilityTable;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env();
    print_header(
        "Table 1: facilities of the top-20 COR relays",
        &world,
        rounds,
    );

    let results = run_campaign(&world);
    let table = FacilityTable::compute(&world, &results, 20);

    println!(
        "{:<4} {:<26} {:>10} {:<16} {:>6} {:>6} {:>6} {:>9}",
        "#", "facility", "improved%", "city (cc)", "#nets", "#IXPs", "cloud", "PDB-top10"
    );
    for (i, row) in table.rows.iter().enumerate().take(10) {
        println!(
            "{:<4} {:<26} {:>9.0}% {:<16} {:>6} {:>6} {:>6} {:>9}",
            i + 1,
            row.name,
            row.improved_pct,
            format!("{} ({})", row.city, row.country),
            row.net_count,
            row.ixp_count,
            if row.offers_cloud { "yes" } else { "no" },
            if row.pdb_top10 { "yes" } else { "no" },
        );
    }

    println!();
    println!(
        "top-20 COR relays concentrate in {} facilities (paper: 10)",
        table.facility_count()
    );
    let top10_rows: Vec<_> = table.rows.iter().take(10).collect();
    let in_pdb_top10 = top10_rows.iter().filter(|r| r.pdb_top10).count();
    let cloud = top10_rows.iter().filter(|r| r.offers_cloud).count();
    let min_nets = top10_rows.iter().map(|r| r.net_count).min().unwrap_or(0);
    println!("of the first 10 rows: {in_pdb_top10} in PeeringDB's global top-10 (paper: 4), {cloud}/10 with cloud services (paper: 10/10), min #nets {min_nets} (paper: 22)");

    let hub_rows = top10_rows
        .iter()
        .filter(|r| world.topo.cities.by_name(&r.city).is_some_and(|c| c.is_hub))
        .count();
    println!("{hub_rows}/10 rows are in major hub metros (paper: all, mainly Western Europe / North America)");
}
