//! Fig. 2 — CDF of latency improvements vs. direct paths, per relay
//! type (best relay per type per case).
//!
//! Paper reference: COR improves 76 % of total cases, RAR_other 58 %,
//! PLR 43 %, RAR_eye 35 %; median improvements 12–14 ms; COR/RAR_other
//! exceed 100 ms in ~6 % of improved cases; median of 8 COR relays
//! improve each improved pair.

use shortcuts_bench::{bar, build_world, print_header, rounds_from_env, run_campaign};
use shortcuts_core::analysis::improvement::ImprovementAnalysis;
use shortcuts_core::RelayType;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env();
    print_header("Fig. 2: improvement CDF per relay type", &world, rounds);

    let results = run_campaign(&world);
    println!(
        "campaign: {} cases, {:.2} M pings, avg {:.0} endpoints/round, avg relays/round COR={:.0} PLR={:.0} RAR_other={:.0} RAR_eye={:.0}",
        results.total_cases(),
        results.pings_sent as f64 / 1e6,
        results.avg_endpoints,
        results.avg_relays[0],
        results.avg_relays[1],
        results.avg_relays[2],
        results.avg_relays[3],
    );
    println!("(paper: ~90K direct pairs, 8.7 M pings, 82 endpoints, 129 COR / 59 PLR / 102 RAR_other / 82 RAR_eye)\n");

    let analysis = ImprovementAnalysis::compute(&results);
    let paper_improved = [76.0, 43.0, 58.0, 35.0];
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>10} {:>14}",
        "type", "improved%", "paper%", "median(ms)", ">100ms%", "med#improving"
    );
    for t in RelayType::ALL {
        let ti = analysis.for_type(t);
        println!(
            "{:<10} {:>9.1}% {:>7.0}% {:>12.1} {:>9.1}% {:>14.0}",
            t.label(),
            100.0 * ti.improved_fraction,
            paper_improved[t.index()],
            ti.median_improvement_ms,
            100.0 * ti.over_100ms_fraction,
            ti.median_improving_relays,
        );
    }

    println!("\nCDF of improvements (fraction of improved cases with improvement <= x):");
    let xs: Vec<f64> = vec![
        1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0,
    ];
    print!("{:>8}", "x(ms)");
    for t in RelayType::ALL {
        print!(" {:>10}", t.label());
    }
    println!();
    let cdfs: Vec<Vec<(f64, f64)>> = RelayType::ALL
        .iter()
        .map(|&t| analysis.cdf(t, &xs))
        .collect();
    for (i, &x) in xs.iter().enumerate() {
        print!("{:>8.0}", x);
        for c in &cdfs {
            print!(" {:>10.3}", c[i].1);
        }
        println!();
    }

    println!("\nimproved share of total cases:");
    for t in RelayType::ALL {
        let f = analysis.for_type(t).improved_fraction;
        println!("  {:<10} {} {:>5.1}%", t.label(), bar(f, 40), 100.0 * f);
    }
    println!(
        "\nany type improves: {:.1}% of total cases (paper: 83%)",
        100.0 * analysis.any_improved_fraction
    );
}
