//! Extension — are two relays better than one?
//!
//! The paper restricts itself to one-relay paths, citing Han et al. and
//! Le et al. that N ≥ 2 relays add little over N = 1. With a simulator
//! we can check that claim directly: for one measurement round, compare
//! each pair's best 1-relay COR path against its best 2-relay COR path
//! (relay pair drawn from the top relays to keep the measurement budget
//! sane — exactly how a real follow-up study would do it).

use rand::rngs::StdRng;
use rand::SeedableRng;
use shortcuts_bench::{build_world, print_header, seed_from_env};
use shortcuts_core::colo::{run_pipeline, ColoPipelineConfig};
use shortcuts_core::eyeball::{select_eyeballs, EndpointPool};
use shortcuts_core::feasibility::is_feasible;
use shortcuts_core::measure::{measure_pair, WindowConfig};
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::HostId;
use std::collections::HashMap;

fn main() {
    let world = build_world();
    print_header("Extension: one relay vs two relays (COR)", &world, 1);

    let engine = world.shared().engine(Default::default());
    let mut rng = StdRng::seed_from_u64(seed_from_env());
    let vantage = world.looking_glasses.lgs()[0].host;
    let colo = run_pipeline(
        &world,
        &*engine,
        vantage,
        SimTime(0.0),
        &ColoPipelineConfig::default(),
        &mut rng,
    );
    let verified = select_eyeballs(&world, 10.0).verified;
    let pool = EndpointPool::build(&world, &verified);
    let raes = pool.sample_round(&mut rng);
    let window = WindowConfig::default();

    // Candidate relays: one per facility (the heavy-hitter facilities
    // dominate anyway), capped for the O(k^2) relay-relay legs.
    let mut seen_fac = std::collections::HashSet::new();
    let relays: Vec<_> = colo
        .relays
        .iter()
        .filter(|r| seen_fac.insert(r.facility))
        .take(30)
        .collect();
    println!(
        "endpoints: {}, candidate relays: {}\n",
        raes.len(),
        relays.len()
    );

    // Measure relay-relay legs once.
    let mut rr: HashMap<(HostId, HostId), f64> = HashMap::new();
    for (i, a) in relays.iter().enumerate() {
        for b in relays.iter().skip(i + 1) {
            if let Some(m) = measure_pair(&*engine, a.host, b.host, SimTime(0.0), &window, &mut rng)
            {
                rr.insert((a.host, b.host), m);
                rr.insert((b.host, a.host), m);
            }
        }
    }

    let mut one_wins = 0usize;
    let mut two_wins_small = 0usize; // 2-relay better by <= 2 ms
    let mut two_wins_big = 0usize; // 2-relay better by > 2 ms
    let mut neither = 0usize;
    let mut total = 0usize;
    let mut extra_gain = Vec::new();

    // Sample endpoint pairs (full cross product is unnecessary here).
    for i in (0..raes.len()).step_by(3) {
        for j in ((i + 1)..raes.len()).step_by(3) {
            let (e1, e2) = (raes[i].host, raes[j].host);
            let Some(direct) = measure_pair(&*engine, e1, e2, SimTime(0.0), &window, &mut rng)
            else {
                continue;
            };
            let (l1, l2) = (world.hosts.get(e1).location, world.hosts.get(e2).location);
            // Endpoint->relay legs for feasible relays.
            let mut legs: HashMap<HostId, (Option<f64>, Option<f64>)> = HashMap::new();
            for r in &relays {
                if !is_feasible(&l1, &l2, &world.hosts.get(r.host).location, direct) {
                    continue;
                }
                let a = measure_pair(&*engine, e1, r.host, SimTime(0.0), &window, &mut rng);
                let b = measure_pair(&*engine, e2, r.host, SimTime(0.0), &window, &mut rng);
                legs.insert(r.host, (a, b));
            }
            let best1 = legs
                .values()
                .filter_map(|(a, b)| Some(a.as_ref()? + b.as_ref()?))
                .fold(f64::INFINITY, f64::min);
            // Best 2-relay path: e1 -> r1 -> r2 -> e2.
            let mut best2 = f64::INFINITY;
            for (&r1, (a1, _)) in &legs {
                let Some(a1) = a1 else { continue };
                for (&r2, (_, b2)) in &legs {
                    if r1 == r2 {
                        continue;
                    }
                    let (Some(mid), Some(b2)) = (rr.get(&(r1, r2)), b2) else {
                        continue;
                    };
                    best2 = best2.min(a1 + mid + b2);
                }
            }
            total += 1;
            if !best1.is_finite() && !best2.is_finite() {
                neither += 1;
            } else if best2 < best1 - 2.0 {
                two_wins_big += 1;
                extra_gain.push(best1 - best2);
            } else if best2 < best1 {
                two_wins_small += 1;
            } else {
                one_wins += 1;
            }
        }
    }

    println!("pairs compared: {total}");
    println!(
        "one relay at least as good:    {:>5.1}%",
        100.0 * one_wins as f64 / total as f64
    );
    println!(
        "two relays better by <= 2 ms:  {:>5.1}%",
        100.0 * two_wins_small as f64 / total as f64
    );
    println!(
        "two relays better by  > 2 ms:  {:>5.1}%",
        100.0 * two_wins_big as f64 / total as f64
    );
    println!(
        "no relayed path at all:        {:>5.1}%",
        100.0 * neither as f64 / total as f64
    );
    if !extra_gain.is_empty() {
        extra_gain.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "median extra gain when 2 relays win big: {:.1} ms",
            extra_gain[extra_gain.len() / 2]
        );
    }
    println!("\nExpected (and what Han et al. argue): the second relay almost never");
    println!("pays for its extra hop — one-relay paths capture nearly all TIV gains.");
}
