//! Fig. 4 — % of total cases improved vs. improvement threshold, for
//! the top-10 relays and all relays of each type.
//!
//! Paper reference: top-10 COR beats the top-10 of every other type and
//! tracks RAR_other-ALL closely; the top-10-vs-all gap is minimal for
//! PLR (~5 %); with only the top-10 COR, ~20 % of all pairs still gain
//! more than 20 ms.

use shortcuts_bench::{build_world, print_header, rounds_from_env, run_campaign};
use shortcuts_core::analysis::threshold::ThresholdCurve;
use shortcuts_core::RelayType;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env();
    print_header(
        "Fig. 4: % improved vs threshold (top-10 / all)",
        &world,
        rounds,
    );

    let results = run_campaign(&world);
    let xs: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();

    let mut curves = Vec::new();
    for t in RelayType::ALL {
        curves.push(ThresholdCurve::compute(&results, t, Some(10), &xs));
        curves.push(ThresholdCurve::compute(&results, t, None, &xs));
    }

    print!("{:>8}", "x(ms)");
    for t in RelayType::ALL {
        print!(" {:>9}-10 {:>9}-A", t.label(), t.label());
    }
    println!();
    for (i, &x) in xs.iter().enumerate() {
        print!("{:>8.0}", x);
        for c in &curves {
            print!(" {:>11.3}", c.points[i].1);
        }
        println!();
    }

    println!();
    let cor10 = &curves[0];
    println!(
        "top-10 COR: {:.1}% of all pairs gain more than 20 ms (paper: ~20%)",
        100.0 * cor10.fraction_at(20.0)
    );
    for t in RelayType::ALL {
        let top = &curves[t.index() * 2];
        let all = &curves[t.index() * 2 + 1];
        println!(
            "  {:<10} top-10 vs all gap at 0 ms: {:.1} percentage points",
            t.label(),
            100.0 * (all.fraction_at(0.0) - top.fraction_at(0.0))
        );
    }
}
