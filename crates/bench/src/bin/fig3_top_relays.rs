//! Fig. 3 — % of total cases improved vs. number of top relays
//! (ranked by improvement frequency).
//!
//! Paper reference: the curve rises steeply for COR (heavy hitters);
//! 10 COR relays in 6 facilities reach ~58 % of total cases (~75 % of
//! the improved cases), matching RAR_other's *final* coverage, which
//! needs well over 100 relays.

use shortcuts_bench::{build_world, print_header, rounds_from_env, run_campaign};
use shortcuts_core::analysis::top_relays::TopRelayAnalysis;
use shortcuts_core::RelayType;
use std::collections::HashSet;

fn main() {
    let world = build_world();
    let rounds = rounds_from_env();
    print_header(
        "Fig. 3: % of total cases improved vs #top relays",
        &world,
        rounds,
    );

    let results = run_campaign(&world);
    let analyses: Vec<TopRelayAnalysis> = RelayType::ALL
        .iter()
        .map(|&t| TopRelayAnalysis::compute(&results, t, 1000))
        .collect();

    print!("{:>8}", "#relays");
    for t in RelayType::ALL {
        print!(" {:>10}", t.label());
    }
    println!("   (fraction of total cases improved)");
    for k in [1usize, 2, 3, 5, 10, 20, 30, 40, 50, 75, 100] {
        print!("{:>8}", k);
        for a in &analyses {
            print!(" {:>10.3}", a.coverage_at(k));
        }
        println!();
    }
    print!("{:>8}", "all");
    for a in &analyses {
        print!(" {:>10.3}", a.coverage.last().copied().unwrap_or(0.0));
    }
    println!();

    // The paper's headline: top-10 COR, how many facilities, what share
    // of improved cases?
    let cor = &analyses[RelayType::Cor.index()];
    let top10 = cor.top_hosts(10);
    let facilities: HashSet<_> = top10
        .iter()
        .filter_map(|h| results.relay_meta.get(h).and_then(|m| m.facility))
        .collect();
    let total_cor = cor.coverage.last().copied().unwrap_or(0.0);
    let at10 = cor.coverage_at(10);
    println!();
    println!(
        "top-10 COR relays live in {} facilities and improve {:.1}% of total cases \
         ({:.0}% of COR's final coverage) — paper: 6 facilities, 58% of total, ~75% of improved",
        facilities.len(),
        100.0 * at10,
        100.0 * at10 / total_cor.max(1e-9),
    );
    for (frac, label) in [(0.75, "75%"), (0.9, "90%")] {
        for (a, t) in analyses.iter().zip(RelayType::ALL) {
            if let Some(k) = a.relays_for_fraction(frac) {
                println!(
                    "  {:<10} needs {:>4} relays for {label} of its final coverage",
                    t.label(),
                    k
                );
            }
        }
    }
}
