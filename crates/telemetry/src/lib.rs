//! # `shortcuts_telemetry` — observability for the shortcuts engine
//!
//! A dependency-light telemetry subsystem shared by every layer of the
//! workspace (netsim, topology, core, service, CLI). Three pieces:
//!
//! 1. **Metric primitives and registry** ([`metrics`], [`registry`]):
//!    atomic [`Counter`]s, [`Gauge`]s, and fixed-bucket log₂
//!    [`Histogram`]s with a lock-free record path and
//!    snapshot-on-read. The [`Registry`] names them (with labels) and
//!    renders Prometheus-style exposition text in deterministic order.
//!
//! 2. **Pipeline span tracing** ([`span`]): the process-wide
//!    [`Telemetry`] singleton carries per-stage latency histograms
//!    (plan / resolve_pairs / sample / stitch / repair), scheduler
//!    gauges (queue depth, rounds in flight), and an optional
//!    chrome://tracing-compatible span dump. Everything is
//!    off-by-default-cheap: one relaxed flag load per scope, no clock
//!    read and no allocation while disabled.
//!
//! 3. **Unified stats fields** ([`fields`]): subsystem stats structs
//!    export a flat `fields()` list that formats both the legacy
//!    `STATS` key=value line ([`kv_summary`]) and the `METRICS`
//!    exposition ([`prom_fields`]) — one source, two renderings, so
//!    the surfaces cannot drift.
//!
//! ## Determinism contract
//!
//! Telemetry never touches RNG streams and never feeds wall-clock time
//! into deterministic outputs: spans observe *durations* at the edges
//! of already-scheduled work, and CI re-runs the byte-identity suites
//! with `COLO_TELEMETRY=1` to prove CSV outputs are unchanged.

pub mod fields;
pub mod metrics;
pub mod registry;
pub mod span;

pub use fields::{kv_summary, prom_fields, prom_histogram, prom_line, Field, FieldValue};
pub use metrics::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use registry::Registry;
pub use span::{global, Span, Stage, Telemetry, NO_LABEL, STAGE_COUNT};
