//! A named metric registry with deterministic exposition order.
//!
//! Registration is get-or-create: asking twice for the same
//! `(name, labels)` returns the same underlying atomic, so call sites
//! can register at setup time, stash the `Arc`, and record with zero
//! lookups on the hot path.

use crate::fields::{format_labels, prom_histogram, prom_line, FieldValue};
use crate::metrics::{Counter, Gauge, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

type Key = (&'static str, Vec<(String, String)>);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metrics, rendered in sorted `(name, labels)` order so the
/// exposition text is deterministic run to run.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<Key, Metric>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register a counter. Panics if the name is already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = (name, owned_labels(labels));
        if let Some(Metric::Counter(c)) = self.inner.read().get(&key) {
            return Arc::clone(c);
        }
        let mut map = self.inner.write();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = (name, owned_labels(labels));
        if let Some(Metric::Gauge(g)) = self.inner.read().get(&key) {
            return Arc::clone(g);
        }
        let mut map = self.inner.write();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = (name, owned_labels(labels));
        if let Some(Metric::Histogram(h)) = self.inner.read().get(&key) {
            return Arc::clone(h);
        }
        let mut map = self.inner.write();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Render every registered metric as Prometheus exposition text.
    pub fn render_into(&self, out: &mut String) {
        let map = self.inner.read();
        for ((name, labels), metric) in map.iter() {
            let borrowed: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match metric {
                Metric::Counter(c) => {
                    prom_line(out, name, &borrowed, FieldValue::Int(c.get()));
                }
                Metric::Gauge(g) => {
                    let labels = format_labels(&borrowed);
                    let _ = writeln!(out, "{name}{labels} {}", g.get());
                }
                Metric::Histogram(h) => {
                    prom_histogram(out, name, &borrowed, &h.snapshot());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("hits", &[("shard", "0")]);
        let b = r.counter("hits", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same (name, labels) shares one atomic");
        let other = r.counter("hits", &[("shard", "1")]);
        assert_eq!(other.get(), 0, "different labels are distinct");
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("z_depth", &[]).set(-3);
        r.counter("a_hits", &[]).add(7);
        r.histogram("m_lat", &[]).record(2);
        let mut out = String::new();
        r.render_into(&mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "a_hits 7");
        assert!(lines[1].starts_with("m_lat_bucket{le=\"0\"} 0"));
        assert_eq!(*lines.last().unwrap(), "z_depth -3");
    }
}
