//! One stats source, two renderings.
//!
//! Subsystem stats structs (`EngineStats`, `PoolStats`, `ServiceStats`)
//! describe themselves as a flat list of [`Field`]s. The legacy `STATS`
//! line is formatted from that list by [`kv_summary`], and the
//! Prometheus-style `METRICS` surface is formatted from the *same* list
//! by [`prom_fields`] — so the two surfaces cannot drift: adding a
//! field to `fields()` adds it to both.

use crate::metrics::{bucket_bound, HistogramSnapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// A single named statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FieldValue {
    /// An exact integer (counter or gauge reading).
    Int(u64),
    /// A derived ratio, rendered with four decimal places in both the
    /// `STATS` summary and the `METRICS` exposition.
    Rate(f64),
}

/// A named statistic, as exported by a subsystem's `fields()` method.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    pub name: &'static str,
    pub value: FieldValue,
}

impl Field {
    pub fn int(name: &'static str, value: u64) -> Self {
        Self {
            name,
            value: FieldValue::Int(value),
        }
    }

    pub fn rate(name: &'static str, value: f64) -> Self {
        Self {
            name,
            value: FieldValue::Rate(value),
        }
    }
}

/// Render fields as the classic `name=value name=value` STATS line.
pub fn kv_summary(fields: &[Field]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match f.value {
            FieldValue::Int(v) => {
                let _ = write!(out, "{}={v}", f.name);
            }
            FieldValue::Rate(v) => {
                let _ = write!(out, "{}={v:.4}", f.name);
            }
        }
    }
    out
}

/// Escape a label value per the Prometheus text format (backslash,
/// double quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a `{k="v",...}` label block ("" when there are no labels).
pub fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Append one `name{labels} value` exposition line.
pub fn prom_line(out: &mut String, name: &str, labels: &[(&str, &str)], value: FieldValue) {
    let labels = format_labels(labels);
    match value {
        FieldValue::Int(v) => {
            let _ = writeln!(out, "{name}{labels} {v}");
        }
        FieldValue::Rate(v) => {
            let _ = writeln!(out, "{name}{labels} {v:.4}");
        }
    }
}

/// Append one exposition line per field, named `{prefix}_{field}`.
pub fn prom_fields(out: &mut String, prefix: &str, labels: &[(&str, &str)], fields: &[Field]) {
    for f in fields {
        prom_line(out, &format!("{prefix}_{}", f.name), labels, f.value);
    }
}

/// Append a histogram in Prometheus convention: cumulative
/// `name_bucket{le="..."}` lines (up to the highest occupied bucket,
/// then `+Inf`), plus `name_sum` and `name_count`.
pub fn prom_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    let highest = snap
        .counts
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| (i + 1).min(HISTOGRAM_BUCKETS - 1))
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &c) in snap.counts.iter().enumerate().take(highest + 1) {
        cumulative += c;
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        let bound = bucket_bound(i).to_string();
        with_le.push(("le", &bound));
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", format_labels(&with_le));
    }
    let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
    with_inf.push(("le", "+Inf"));
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        format_labels(&with_inf),
        snap.count()
    );
    let plain = format_labels(labels);
    let _ = writeln!(out, "{name}_sum{plain} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", snap.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn kv_summary_formats_ints_and_rates() {
        let fields = [
            Field::int("hits", 3),
            Field::rate("hit_rate", 0.75),
            Field::int("misses", 1),
        ];
        assert_eq!(kv_summary(&fields), "hits=3 hit_rate=0.7500 misses=1");
    }

    #[test]
    fn prom_fields_share_the_same_source() {
        let fields = [Field::int("hits", 3), Field::rate("hit_rate", 0.75)];
        let mut out = String::new();
        prom_fields(&mut out, "colo_cache", &[("shard", "0")], &fields);
        assert_eq!(
            out,
            "colo_cache_hits{shard=\"0\"} 3\ncolo_cache_hit_rate{shard=\"0\"} 0.7500\n"
        );
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(
            format_labels(&[("path", "a\"b\\c\nd")]),
            "{path=\"a\\\"b\\\\c\\nd\"}"
        );
        assert_eq!(format_labels(&[]), "");
    }

    #[test]
    fn histogram_exposition_is_cumulative_with_inf() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut out = String::new();
        prom_histogram(&mut out, "lat", &[("stage", "plan")], &h.snapshot());
        let expected = "lat_bucket{stage=\"plan\",le=\"0\"} 0\n\
                        lat_bucket{stage=\"plan\",le=\"1\"} 1\n\
                        lat_bucket{stage=\"plan\",le=\"3\"} 3\n\
                        lat_bucket{stage=\"plan\",le=\"7\"} 3\n\
                        lat_bucket{stage=\"plan\",le=\"+Inf\"} 3\n\
                        lat_sum{stage=\"plan\"} 7\n\
                        lat_count{stage=\"plan\"} 3\n";
        assert_eq!(out, expected);
    }
}
