//! Pipeline span tracing: scoped stage timers, scheduler gauges, and
//! an optional chrome://tracing-compatible span dump.
//!
//! The process-wide [`Telemetry`] singleton ([`global`]) is
//! off-by-default-cheap: every instrumentation site checks one relaxed
//! atomic flag per *scope* (not per record), and a disabled
//! [`Span`] holds no timestamp — constructing and dropping it does no
//! clock read, no atomic write, and no allocation. Enabling telemetry
//! only ever observes durations; nothing here touches RNG streams or
//! deterministic outputs.

use crate::metrics::{Gauge, Histogram, HistogramSnapshot};
use crate::registry::Registry;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pipeline stages with dedicated latency histograms. Fixed enum →
/// fixed array index: recording never hashes a name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Round planning (pair selection, overlay planning).
    Plan,
    /// Batched pair resolution against the routing tables.
    ResolvePairs,
    /// Ping-window sampling (the measurement kernel proper).
    Sample,
    /// Absorbing measured rounds into reports/builders.
    Stitch,
    /// Incremental routing-table repair after topology churn.
    Repair,
}

pub const STAGE_COUNT: usize = 5;

impl Stage {
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Plan,
        Stage::ResolvePairs,
        Stage::Sample,
        Stage::Stitch,
        Stage::Repair,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::ResolvePairs => "resolve_pairs",
            Stage::Sample => "sample",
            Stage::Stitch => "stitch",
            Stage::Repair => "repair",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Sentinel for "this span has no scenario/round label".
pub const NO_LABEL: u32 = u32::MAX;

/// One completed span, buffered for the chrome://tracing dump.
struct TraceEvent {
    stage: Stage,
    scenario: u32,
    round: u32,
    tid: u32,
    start_ns: u64,
    dur_ns: u64,
}

/// Small monotonically assigned per-thread id for the trace dump
/// (chrome://tracing lanes). Stable within a process run.
fn thread_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Process-wide telemetry state: the enable flag, per-stage latency
/// histograms, scheduler gauges, the named-metric [`Registry`], and
/// the trace buffer.
pub struct Telemetry {
    enabled: AtomicBool,
    tracing: AtomicBool,
    stage_ns: [Arc<Histogram>; STAGE_COUNT],
    queue_depth: Arc<Gauge>,
    jobs_in_flight: Arc<Gauge>,
    registry: Registry,
    trace: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

/// The process-wide telemetry instance. Initially enabled only when
/// the `COLO_TELEMETRY` environment variable is set non-empty and not
/// `"0"`; `serve` and the `--metrics-out` / `--trace-out` CLI flags
/// enable it at runtime.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::from_env)
}

impl Telemetry {
    fn from_env() -> Self {
        let enabled = std::env::var("COLO_TELEMETRY")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let registry = Registry::new();
        let stage_ns = Stage::ALL
            .map(|stage| registry.histogram("colo_stage_duration_ns", &[("stage", stage.label())]));
        let queue_depth = registry.gauge("colo_shard_queue_depth", &[]);
        let jobs_in_flight = registry.gauge("colo_shard_jobs_in_flight", &[]);
        Self {
            enabled: AtomicBool::new(enabled),
            tracing: AtomicBool::new(false),
            stage_ns,
            queue_depth,
            jobs_in_flight,
            registry,
            trace: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// One relaxed load — the per-scope cost when telemetry is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Clear the trace buffer and start collecting span events.
    /// Implies `set_enabled(true)`.
    pub fn start_trace(&self) {
        self.trace.lock().clear();
        self.enabled.store(true, Ordering::Relaxed);
        self.tracing.store(true, Ordering::Relaxed);
    }

    /// Stop collecting and render the buffered spans as a
    /// chrome://tracing-compatible JSON document (`traceEvents`
    /// array of complete `ph:"X"` events; `ts`/`dur` in microseconds).
    pub fn finish_trace_json(&self) -> String {
        self.tracing.store(false, Ordering::Relaxed);
        let events = std::mem::take(&mut *self.trace.lock());
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03}",
                e.stage.label(),
                e.tid,
                e.start_ns / 1_000,
                e.start_ns % 1_000,
                e.dur_ns / 1_000,
                e.dur_ns % 1_000,
            );
            if e.scenario != NO_LABEL || e.round != NO_LABEL {
                out.push_str(",\"args\":{");
                let mut first = true;
                if e.scenario != NO_LABEL {
                    let _ = write!(out, "\"scenario\":{}", e.scenario);
                    first = false;
                }
                if e.round != NO_LABEL {
                    if !first {
                        out.push(',');
                    }
                    let _ = write!(out, "\"round\":{}", e.round);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Open an unlabeled span. Returns an inert guard (no clock read)
    /// when telemetry is disabled.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        self.span_for(stage, NO_LABEL, NO_LABEL)
    }

    /// Open a span labeled with a (scenario, round) pair.
    #[inline]
    pub fn span_for(&self, stage: Stage, scenario: u32, round: u32) -> Span<'_> {
        if !self.enabled() {
            return Span { inner: None };
        }
        Span {
            inner: Some(SpanInner {
                telemetry: self,
                stage,
                scenario,
                round,
                start: Instant::now(),
            }),
        }
    }

    /// Record a stage duration from an explicit start timestamp — for
    /// call sites (like the shard scheduler's per-job stage
    /// transitions) where the scope is not lexical.
    pub fn record_stage(&self, stage: Stage, scenario: u32, round: u32, start: Instant) {
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage_ns[stage.index()].record(dur_ns);
        if self.tracing.load(Ordering::Relaxed) {
            let start_ns = u64::try_from(
                start
                    .checked_duration_since(self.epoch)
                    .unwrap_or_default()
                    .as_nanos(),
            )
            .unwrap_or(u64::MAX);
            self.trace.lock().push(TraceEvent {
                stage,
                scenario,
                round,
                tid: thread_tid(),
                start_ns,
                dur_ns,
            });
        }
    }

    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stage_ns[stage.index()].snapshot()
    }

    /// Scheduler queue-depth gauge (pending items in the shard queue).
    pub fn queue_depth(&self) -> &Gauge {
        &self.queue_depth
    }

    /// Scheduler in-flight gauge (admitted, unfinished rounds).
    pub fn jobs_in_flight(&self) -> &Gauge {
        &self.jobs_in_flight
    }

    /// The process-wide named-metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Render every process-wide metric (stage histograms, scheduler
    /// gauges, and anything else registered) as exposition text.
    pub fn render_into(&self, out: &mut String) {
        self.registry.render_into(out);
    }
}

struct SpanInner<'t> {
    telemetry: &'t Telemetry,
    stage: Stage,
    scenario: u32,
    round: u32,
    start: Instant,
}

/// A scoped stage timer. Records its duration (and, when tracing, a
/// trace event) on drop; inert when telemetry is disabled.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span<'t> {
    inner: Option<SpanInner<'t>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner
                .telemetry
                .record_stage(inner.stage, inner.scenario, inner.round, inner.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global singleton's enable flag is shared across tests in
    // this binary, so every test restores the flag it found.

    #[test]
    fn disabled_span_records_nothing() {
        let t = global();
        let was = t.enabled();
        t.set_enabled(false);
        let before = t.stage_snapshot(Stage::Repair).count();
        drop(t.span(Stage::Repair));
        assert_eq!(t.stage_snapshot(Stage::Repair).count(), before);
        t.set_enabled(was);
    }

    #[test]
    fn enabled_span_records_into_its_stage_histogram() {
        let t = global();
        let was = t.enabled();
        t.set_enabled(true);
        let before = t.stage_snapshot(Stage::Stitch).count();
        drop(t.span_for(Stage::Stitch, 3, 7));
        assert_eq!(t.stage_snapshot(Stage::Stitch).count(), before + 1);
        t.set_enabled(was);
    }

    #[test]
    fn trace_dump_is_chrome_compatible_json() {
        let t = global();
        let was = t.enabled();
        t.start_trace();
        drop(t.span_for(Stage::Plan, 0, 2));
        drop(t.span(Stage::Repair));
        let json = t.finish_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"plan\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"scenario\":0,\"round\":2}"));
        // The unlabeled repair span has no args object.
        let repair = json.split("\"name\":\"repair\"").nth(1).unwrap();
        let repair_event = &repair[..repair.find('}').unwrap() + 1];
        assert!(!repair_event.contains("args"));
        // The buffer drains: a second dump is empty.
        assert_eq!(t.finish_trace_json(), "{\"traceEvents\":[]}\n");
        t.set_enabled(was);
    }

    #[test]
    fn stage_histograms_appear_in_the_registry_render() {
        let t = global();
        let mut out = String::new();
        t.render_into(&mut out);
        assert!(out.contains("colo_stage_duration_ns_count{stage=\"plan\"}"));
        assert!(out.contains("colo_shard_queue_depth"));
        assert!(out.contains("colo_shard_jobs_in_flight"));
    }
}
