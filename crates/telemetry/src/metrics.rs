//! Lock-free metric primitives: counters, gauges, and log₂ histograms.
//!
//! Everything on the record path is a single relaxed atomic RMW — no
//! locks, no allocation, no branching beyond the bucket index. Reads
//! take a [`HistogramSnapshot`] (a plain copy of the bucket counts) so
//! observation never stalls recording.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per bit length
/// of a `u64` (1..=64). Bucket `i` (for `i >= 1`) holds values whose
/// bit length is `i`, i.e. the range `[2^(i-1), 2^i - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions (queue depths,
/// jobs in flight, resident bytes).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for a value: 0 for 0, otherwise the bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (`2^i - 1`; bucket 0 holds only
/// zero, bucket 64 tops out at `u64::MAX`).
pub fn bucket_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A fixed-bucket log₂ histogram with a lock-free record path.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Two relaxed RMWs; no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copy out the current bucket counts. Concurrent records may land
    /// between bucket reads; each individual count is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram, mergeable across sources.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; HISTOGRAM_BUCKETS],
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulate another snapshot into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`p` in `[0, 1]`). Returns 0 for an empty histogram. The
    /// estimate errs high by at most one bucket width (2x).
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..64 {
            let v = 1u64 << i;
            assert_eq!(bucket_index(v), i + 1, "2^{i}");
            if v > 1 {
                assert_eq!(bucket_index(v - 1), i, "2^{i} - 1");
            }
        }
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value falls inside its own bucket's bound and above
        // the previous bucket's bound.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i));
            if i > 0 {
                assert!(v > bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 1005);
        assert_eq!(snap.counts[0], 1); // 0
        assert_eq!(snap.counts[1], 2); // 1, 1
        assert_eq!(snap.counts[2], 1); // 3
        assert_eq!(snap.counts[10], 1); // 1000
    }

    #[test]
    fn snapshot_merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(5);
        b.record(7);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum, 117);
        assert_eq!(merged.counts[3], 3); // 5, 5, 7
        assert_eq!(merged.counts[7], 1); // 100
    }

    #[test]
    fn percentiles_return_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, bound 15
        }
        h.record(1 << 20); // bucket 21, bound 2^21 - 1
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.5), 15);
        assert_eq!(snap.percentile(0.99), 15);
        assert_eq!(snap.percentile(1.0), (1 << 21) - 1);
        assert_eq!(HistogramSnapshot::empty().percentile(0.5), 0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }
}
