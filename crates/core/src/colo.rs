//! §2.2 — relay selection at colocation facilities: the five-filter
//! funnel over the stale 2015 facility dataset.
//!
//! In order:
//!
//! 1. **Single-facility & active PeeringDB presence** — keep records
//!    whose candidate set has exactly one facility that is still listed
//!    in PeeringDB (the facility-search algorithm may fail to converge;
//!    facilities close).
//! 2. **Pingability** — keep records whose IP still answers pings
//!    (checked with a short ping burst from a vantage host).
//! 3. **Same IP-ownership** — keep records whose IP still maps to the
//!    recorded ASN in the prefix→AS table, and is not MOAS.
//! 4. **Active facility presence** — keep records whose ASN is still a
//!    member of the candidate facility per PeeringDB.
//! 5. **RTT-based geolocation** — keep records whose minimum RTT from
//!    same-city Looking Glasses (via Periscope) is below the threshold,
//!    confirming the interface really is in the facility's city.
//!
//! Paper funnel: 2675 → 1008 → 764 → 725 → 725 → 356 IPs at 58
//! facilities in 36 cities.

use crate::world::World;
use rand::Rng;
use shortcuts_atlas::looking_glass::Periscope;
use shortcuts_geo::CityId;
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{HostId, Pinger};
use shortcuts_topology::{Asn, FacilityId};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Per-stage record counts of the funnel (cf. §2.2's in-text numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterFunnel {
    /// Records in the raw dataset.
    pub initial: usize,
    /// After filter 1 (single facility & active PeeringDB presence).
    pub single_facility: usize,
    /// After filter 2 (pingability).
    pub pingable: usize,
    /// After filter 3 (same IP-ownership, incl. MOAS check).
    pub ownership: usize,
    /// After filter 4 (active facility presence of the ASN).
    pub presence: usize,
    /// After filter 5 (RTT-based geolocation).
    pub geolocated: usize,
}

impl FilterFunnel {
    /// Pass rates per stage, for comparing the funnel's *shape* with the
    /// paper's.
    pub fn pass_rates(&self) -> [f64; 5] {
        let r = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        [
            r(self.single_facility, self.initial),
            r(self.pingable, self.single_facility),
            r(self.ownership, self.pingable),
            r(self.presence, self.ownership),
            r(self.geolocated, self.presence),
        ]
    }
}

/// A verified colo relay: a pingable interface confirmed at a facility.
#[derive(Debug, Clone)]
pub struct ColoRelay {
    /// The relay's address.
    pub ip: Ipv4Addr,
    /// The live host behind the address.
    pub host: HostId,
    /// Owning AS (verified).
    pub asn: Asn,
    /// The (single) verified facility.
    pub facility: FacilityId,
    /// The facility's city.
    pub city: CityId,
}

/// The verified COR pool plus funnel accounting.
#[derive(Debug)]
pub struct ColoPool {
    /// Verified relays.
    pub relays: Vec<ColoRelay>,
    /// Stage counts.
    pub funnel: FilterFunnel,
}

impl ColoPool {
    /// Distinct facilities represented in the pool.
    pub fn facility_count(&self) -> usize {
        self.relays
            .iter()
            .map(|r| r.facility)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Distinct cities represented in the pool.
    pub fn city_count(&self) -> usize {
        self.relays
            .iter()
            .map(|r| r.city)
            .collect::<HashSet<_>>()
            .len()
    }
}

/// Configuration of the pipeline's measurement steps.
#[derive(Debug, Clone)]
pub struct ColoPipelineConfig {
    /// Ping attempts for the pingability check.
    pub ping_attempts: usize,
    /// Geolocation threshold in ms (paper: 1 ms; the default matches it
    /// because the simulator's same-city RTTs are sub-millisecond).
    pub geo_threshold_ms: f64,
}

impl Default for ColoPipelineConfig {
    fn default() -> Self {
        ColoPipelineConfig {
            ping_attempts: 3,
            geo_threshold_ms: 1.0,
        }
    }
}

/// Runs the five-filter pipeline. `vantage` is the host pingability is
/// checked from (the paper pinged from their own machines; any
/// well-connected host works). Measurements happen at `t`.
///
/// Generic over [`Pinger`]: a campaign runs this through its own
/// [`shortcuts_netsim::PingHandle`] so the funnel's pings count toward
/// that campaign (and see its fault plan), even when many campaigns of
/// a sweep share one engine.
pub fn run_pipeline<P: Pinger, R: Rng + ?Sized>(
    world: &World,
    engine: &P,
    vantage: HostId,
    t: SimTime,
    cfg: &ColoPipelineConfig,
    rng: &mut R,
) -> ColoPool {
    let records = world.facility_dataset.records();
    let initial = records.len();

    // Filter 1: single facility, still in PeeringDB.
    let stage1: Vec<_> = records
        .iter()
        .filter(|r| {
            r.single_candidate()
                .is_some_and(|f| world.peeringdb.has_facility(f))
        })
        .collect();

    // Filter 2: pingability (a short burst; any reply counts).
    let stage2: Vec<_> = stage1
        .iter()
        .copied()
        .filter(|r| match world.hosts.by_ip(r.ip) {
            None => false, // address doesn't resolve: dead interface
            Some(h) => (0..cfg.ping_attempts).any(|k| {
                engine
                    .ping(vantage, h.id, t.plus_secs(k as f64), rng)
                    .is_some()
            }),
        })
        .collect();

    // Filter 3: same IP-ownership, not MOAS.
    let stage3: Vec<_> = stage2
        .iter()
        .copied()
        .filter(|r| world.prefix2as.owned_solely_by(r.ip, r.recorded_asn))
        .collect();

    // Filter 4: ASN still present at the facility.
    let stage4: Vec<_> = stage3
        .iter()
        .copied()
        .filter(|r| {
            let f = r.single_candidate().expect("stage1 guarantees single");
            world.peeringdb.is_member(&world.topo, f, r.recorded_asn)
        })
        .collect();

    // Filter 5: RTT-based geolocation via Periscope.
    let periscope = Periscope::new(&world.looking_glasses);
    let mut relays = Vec::new();
    for r in &stage4 {
        let f = r.single_candidate().expect("single");
        let city = world.topo.facility(f).city;
        let host = world
            .hosts
            .by_ip(r.ip)
            .expect("stage2 guarantees a live host")
            .id;
        let Some(min_rtt) = periscope.min_rtt_from_city(engine, city, host, t, rng) else {
            continue; // no Periscope coverage for this city
        };
        if min_rtt <= cfg.geo_threshold_ms {
            relays.push(ColoRelay {
                ip: r.ip,
                host,
                asn: r.recorded_asn,
                facility: f,
                city,
            });
        }
    }

    let funnel = FilterFunnel {
        initial,
        single_facility: stage1.len(),
        pingable: stage2.len(),
        ownership: stage3.len(),
        presence: stage4.len(),
        geolocated: relays.len(),
    };
    ColoPool { relays, funnel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shortcuts_datasets::GroundTruth;

    fn run(world: &World) -> ColoPool {
        let engine = world.shared().engine(Default::default());
        let vantage = world.looking_glasses.lgs()[0].host;
        let mut rng = StdRng::seed_from_u64(77);
        run_pipeline(
            world,
            &*engine,
            vantage,
            SimTime(0.0),
            &ColoPipelineConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn funnel_is_monotone_and_nonempty() {
        let world = World::build(&WorldConfig::small(), 12);
        let pool = run(&world);
        let f = pool.funnel;
        assert!(f.initial >= f.single_facility);
        assert!(f.single_facility >= f.pingable);
        assert!(f.pingable >= f.ownership);
        assert!(f.ownership >= f.presence);
        assert!(f.presence >= f.geolocated);
        assert!(f.geolocated > 0, "pipeline should keep something: {f:?}");
        assert_eq!(pool.relays.len(), f.geolocated);
    }

    #[test]
    fn funnel_shape_resembles_paper() {
        let world = World::build(&WorldConfig::small(), 12);
        let pool = run(&world);
        let rates = pool.funnel.pass_rates();
        // Paper: [0.38, 0.76, 0.95, 1.0, 0.49]. Allow generous bands —
        // this is a small world.
        assert!((0.2..0.65).contains(&rates[0]), "stage1 rate {}", rates[0]);
        assert!((0.55..0.95).contains(&rates[1]), "stage2 rate {}", rates[1]);
        assert!((0.65..1.0).contains(&rates[2]), "stage3 rate {}", rates[2]);
        assert!(rates[3] > 0.95, "stage4 rate {}", rates[3]);
        assert!((0.25..0.85).contains(&rates[4]), "stage5 rate {}", rates[4]);
    }

    #[test]
    fn survivors_are_really_at_their_facility() {
        let world = World::build(&WorldConfig::small(), 12);
        let pool = run(&world);
        for relay in &pool.relays {
            let h = world.hosts.get(relay.host);
            assert_eq!(
                h.city, relay.city,
                "geolocation filter let through a mislocated relay"
            );
            // Ownership verified.
            assert!(world.prefix2as.owned_solely_by(relay.ip, relay.asn));
        }
    }

    #[test]
    fn moved_interfaces_are_filtered_out() {
        let world = World::build(&WorldConfig::small(), 12);
        let pool = run(&world);
        let kept_ips: HashSet<_> = pool.relays.iter().map(|r| r.ip).collect();
        for rec in world.facility_dataset.records() {
            if matches!(rec.truth, GroundTruth::AliveElsewhere { .. }) {
                assert!(
                    !kept_ips.contains(&rec.ip),
                    "moved interface {} survived geolocation",
                    rec.ip
                );
            }
            if rec.truth == GroundTruth::Dead {
                assert!(!kept_ips.contains(&rec.ip), "dead IP survived");
            }
        }
    }

    #[test]
    fn pool_spans_facilities_and_cities() {
        let world = World::build(&WorldConfig::small(), 12);
        let pool = run(&world);
        assert!(pool.facility_count() >= 2);
        assert!(pool.city_count() >= 2);
        assert!(pool.facility_count() >= pool.city_count() / 2);
    }
}
