//! Stitching/accumulation layer of the measurement engine (§2.5 step 4
//! plus bookkeeping).
//!
//! [`ResultsBuilder`] folds one round's raw window results — direct,
//! reverse and overlay-link medians, all position-aligned with their
//! plans — into the campaign-level [`CampaignResults`]: case records
//! with per-type outcomes (`RTT(e1, relay, e2) = median(e1, relay) +
//! median(e2, relay)`), per-pair RTT histories, symmetry samples and
//! relay metadata. Everything here is deterministic arithmetic over
//! already-measured data; it neither pings nor draws randomness, so it
//! is independent of how (or in what order) the execution layer ran
//! the tasks.

use crate::measure::stitch;
use crate::plan::{OverlayPlan, RoundPlan};
use crate::workflow::{CampaignResults, CaseRecord, RelayMeta, TypeOutcome};
use shortcuts_netsim::HostId;
use std::collections::HashMap;

/// Accumulates per-round results into [`CampaignResults`].
#[derive(Debug, Default)]
pub struct ResultsBuilder {
    cases: Vec<CaseRecord>,
    direct_history: HashMap<(HostId, HostId), Vec<f64>>,
    link_history: HashMap<(HostId, HostId), Vec<f64>>,
    symmetry_samples: Vec<(f64, f64)>,
    relay_meta: HashMap<HostId, RelayMeta>,
    unresponsive_pairs: u64,
    endpoints_total: usize,
    relays_total: [usize; 4],
    rounds_absorbed: u32,
}

impl ResultsBuilder {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed round in.
    ///
    /// `direct` aligns with `plan.pairs`, `reverse` with the
    /// `reverse`-flagged pairs whose forward window succeeded (the
    /// subsequence [`RoundPlan::reverse_tasks`] schedules), and
    /// `links` with `overlay.needed`.
    pub fn absorb_round(
        &mut self,
        plan: &RoundPlan,
        overlay: &OverlayPlan,
        direct: &[Option<f64>],
        reverse: &[Option<f64>],
        links: &[Option<f64>],
    ) {
        assert_eq!(direct.len(), plan.pairs.len());
        assert_eq!(links.len(), overlay.needed.len());
        self.rounds_absorbed += 1;
        self.endpoints_total += plan.endpoints.len();

        // Relay census and metadata.
        for r in &plan.relays {
            self.relays_total[r.rtype.index()] += 1;
            self.relay_meta.entry(r.host).or_insert_with(|| RelayMeta {
                rtype: r.rtype,
                asn: r.asn,
                city: r.city,
                country: r.country,
                facility: r.facility,
            });
        }

        // Direct medians: histories, symmetry pairs, unresponsiveness.
        let mut reverse_iter = reverse.iter();
        for (pair, d) in plan.pairs.iter().zip(direct) {
            let Some(m) = *d else {
                self.unresponsive_pairs += 1;
                continue;
            };
            let (a, b) = (plan.endpoints[pair.src].host, plan.endpoints[pair.dst].host);
            let key = if a <= b { (a, b) } else { (b, a) };
            self.direct_history.entry(key).or_default().push(m);
            if pair.reverse {
                let rev = *reverse_iter
                    .next()
                    .expect("one result per responsive reverse flag");
                if let Some(rev) = rev {
                    self.symmetry_samples.push((m, rev));
                }
            }
        }

        // Overlay-link medians, addressable by (endpoint, relay) index.
        let mut link: HashMap<(usize, u32), f64> = HashMap::new();
        for (&(ei, ri), l) in overlay.needed.iter().zip(links) {
            let Some(v) = *l else { continue };
            link.insert((ei, ri), v);
            let e_host = plan.endpoints[ei].host;
            let r_host = plan.relays[ri as usize].host;
            let key = if e_host <= r_host {
                (e_host, r_host)
            } else {
                (r_host, e_host)
            };
            self.link_history.entry(key).or_default().push(v);
        }

        // Stitch one-relay paths and emit the round's cases.
        for (pair_idx, (pair, d)) in plan.pairs.iter().zip(direct).enumerate() {
            let Some(d) = *d else { continue };
            let mut outcomes: [TypeOutcome; 4] = Default::default();
            for &ri in &overlay.feasible[pair_idx] {
                let relay = &plan.relays[ri as usize];
                let Some(stitched) = stitch_legs(
                    link.get(&(pair.src, ri)).copied(),
                    link.get(&(pair.dst, ri)).copied(),
                ) else {
                    continue;
                };
                let out = &mut outcomes[relay.rtype.index()];
                out.feasible += 1;
                if out.best.is_none_or(|(_, best)| stitched < best) {
                    out.best = Some((relay.host, stitched));
                }
                if stitched < d {
                    out.improving.push((relay.host, (d - stitched) as f32));
                }
            }
            let (src, dst) = (&plan.endpoints[pair.src], &plan.endpoints[pair.dst]);
            self.cases.push(CaseRecord {
                round: plan.round,
                src: src.host,
                dst: dst.host,
                src_country: src.country,
                dst_country: dst.country,
                intercontinental: src.continent != dst.continent,
                direct_ms: d,
                outcomes,
            });
        }
    }

    /// Rounds folded in so far.
    pub fn rounds_absorbed(&self) -> u32 {
        self.rounds_absorbed
    }

    /// Finalizes into [`CampaignResults`].
    pub fn finish(self, colo_pool: crate::colo::ColoPool, pings_sent: u64) -> CampaignResults {
        let rounds = f64::from(self.rounds_absorbed.max(1));
        CampaignResults {
            cases: self.cases,
            direct_history: self.direct_history,
            link_history: self.link_history,
            symmetry_samples: self.symmetry_samples,
            relay_meta: self.relay_meta,
            colo_pool,
            pings_sent,
            unresponsive_pairs: self.unresponsive_pairs,
            avg_endpoints: self.endpoints_total as f64 / rounds,
            avg_relays: [
                self.relays_total[0] as f64 / rounds,
                self.relays_total[1] as f64 / rounds,
                self.relays_total[2] as f64 / rounds,
                self.relays_total[3] as f64 / rounds,
            ],
        }
    }
}

/// Stand-alone stitching of one (pair, relay) combination from its leg
/// medians — the invariant the proptest suite pins down: a stitched
/// RTT exists iff both legs have medians, and equals their sum.
pub fn stitch_legs(leg1: Option<f64>, leg2: Option<f64>) -> Option<f64> {
    match (leg1, leg2) {
        (Some(a), Some(b)) => Some(stitch(a, b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlannedEndpoint, PlannedPair};
    use crate::relays::{Relay, RelayType};
    use shortcuts_geo::{CityId, Continent, CountryCode, GeoPoint};
    use shortcuts_netsim::clock::SimTime;
    use shortcuts_topology::Asn;

    fn endpoint(id: u32, cc: &str, continent: Continent) -> PlannedEndpoint {
        PlannedEndpoint {
            host: HostId(id),
            country: CountryCode::new(cc).unwrap(),
            city: CityId(0),
            continent,
            location: GeoPoint::new(0.0, f64::from(id)).unwrap(),
        }
    }

    fn relay(id: u32, rtype: RelayType) -> Relay {
        Relay {
            host: HostId(id),
            asn: Asn(id),
            city: CityId(0),
            location: GeoPoint::new(1.0, f64::from(id)).unwrap(),
            country: CountryCode::new("DE").unwrap(),
            rtype,
            facility: None,
        }
    }

    /// Two endpoints, two relays (one COR, one PLR), everything
    /// feasible: stitched outcomes must be exact leg sums.
    fn tiny_round() -> (RoundPlan, OverlayPlan) {
        let plan = RoundPlan {
            round: 0,
            t0: SimTime(0.0),
            endpoints: vec![
                endpoint(1, "US", Continent::NorthAmerica),
                endpoint(2, "DE", Continent::Europe),
            ],
            pairs: vec![PlannedPair {
                src: 0,
                dst: 1,
                reverse: true,
            }],
            relays: vec![relay(10, RelayType::Cor), relay(11, RelayType::Plr)],
        };
        let overlay = OverlayPlan {
            feasible: vec![vec![0, 1]],
            needed: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
        };
        (plan, overlay)
    }

    #[test]
    fn stitched_outcomes_are_leg_sums() {
        let (plan, overlay) = tiny_round();
        let mut b = ResultsBuilder::new();
        // Links: e0–r0=30, e0–r1=50, e1–r0=40, e1–r1=missing.
        b.absorb_round(
            &plan,
            &overlay,
            &[Some(100.0)],
            &[Some(101.0)],
            &[Some(30.0), Some(50.0), Some(40.0), None],
        );
        let r = b.finish(empty_pool(), 0);
        assert_eq!(r.cases.len(), 1);
        let c = &r.cases[0];
        assert!(c.intercontinental);
        // COR relay r0: 30 + 40 = 70, improves on 100 by 30.
        let cor = c.outcome(RelayType::Cor);
        assert_eq!(cor.best, Some((HostId(10), 70.0)));
        assert_eq!(cor.feasible, 1);
        assert_eq!(cor.improving, vec![(HostId(10), 30.0f32)]);
        // PLR relay r1 lost a leg: no stitched path.
        let plr = c.outcome(RelayType::Plr);
        assert!(plr.best.is_none());
        assert_eq!(plr.feasible, 0);
        // Symmetry pair recorded.
        assert_eq!(r.symmetry_samples, vec![(100.0, 101.0)]);
        // Histories keyed in order.
        assert_eq!(r.direct_history[&(HostId(1), HostId(2))], vec![100.0]);
        assert_eq!(r.link_history[&(HostId(1), HostId(10))], vec![30.0]);
    }

    #[test]
    fn unresponsive_direct_pair_drops_the_case() {
        let (plan, overlay) = tiny_round();
        let mut b = ResultsBuilder::new();
        let no_links: Vec<Option<f64>> = vec![None; overlay.needed.len()];
        // No reverse results: an unresponsive forward pair schedules
        // no reverse window.
        b.absorb_round(&plan, &overlay, &[None], &[], &no_links);
        let r = b.finish(empty_pool(), 0);
        assert!(r.cases.is_empty());
        assert_eq!(r.unresponsive_pairs, 1);
        assert!(r.symmetry_samples.is_empty());
    }

    #[test]
    fn averages_span_rounds() {
        let (plan, overlay) = tiny_round();
        let mut b = ResultsBuilder::new();
        let no_links: Vec<Option<f64>> = vec![None; overlay.needed.len()];
        for _ in 0..4 {
            b.absorb_round(&plan, &overlay, &[Some(50.0)], &[None], &no_links);
        }
        assert_eq!(b.rounds_absorbed(), 4);
        let r = b.finish(empty_pool(), 123);
        assert_eq!(r.pings_sent, 123);
        assert!((r.avg_endpoints - 2.0).abs() < 1e-12);
        assert!((r.avg_relays[RelayType::Cor.index()] - 1.0).abs() < 1e-12);
        assert!((r.avg_relays[RelayType::Plr.index()] - 1.0).abs() < 1e-12);
        // Direct history accumulated across rounds.
        assert_eq!(r.direct_history[&(HostId(1), HostId(2))].len(), 4);
    }

    #[test]
    fn stitch_legs_requires_both() {
        assert_eq!(stitch_legs(Some(2.0), Some(3.5)), Some(5.5));
        assert_eq!(stitch_legs(None, Some(3.5)), None);
        assert_eq!(stitch_legs(Some(2.0), None), None);
        assert_eq!(stitch_legs(None, None), None);
    }

    fn empty_pool() -> crate::colo::ColoPool {
        crate::colo::ColoPool {
            relays: Vec::new(),
            funnel: crate::colo::FilterFunnel {
                initial: 0,
                single_facility: 0,
                pingable: 0,
                ownership: 0,
                presence: 0,
                geolocated: 0,
            },
        }
    }
}
