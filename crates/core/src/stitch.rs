//! Stitching/accumulation layer of the measurement engine (§2.5 step 4
//! plus bookkeeping).
//!
//! [`ResultsBuilder`] folds one round's raw window results — direct,
//! reverse and overlay-link medians, all position-aligned with their
//! plans — into the campaign-level [`CampaignResults`]: case records
//! with per-type outcomes (`RTT(e1, relay, e2) = median(e1, relay) +
//! median(e2, relay)`), per-pair RTT histories, symmetry samples and
//! relay metadata. Everything here is deterministic arithmetic over
//! already-measured data; it neither pings nor draws randomness, so it
//! is independent of how (or in what order) the execution layer ran
//! the tasks.
//!
//! The builder is also **round-order-independent**: each
//! [`ResultsBuilder::absorb_round`] call folds its round into a
//! private per-round partial, and [`ResultsBuilder::finish`] merges
//! the partials in ascending round order. Rounds may therefore be
//! absorbed in any order — the sharded scheduler completes them
//! whenever their last window lands — and the final
//! [`CampaignResults`] is still bit-identical to a serial, in-order
//! run.

use crate::measure::stitch;
use crate::plan::{OverlayPlan, RoundPlan};
use crate::workflow::{CampaignResults, CaseRecord, RelayMeta, RoundSummary, TypeOutcome};
use shortcuts_netsim::HostId;
use std::collections::{BTreeMap, HashMap};

/// One absorbed round, not yet merged: everything the round
/// contributes to the campaign, in the round's own deterministic
/// internal order.
#[derive(Debug)]
struct RoundPartial {
    cases: Vec<CaseRecord>,
    direct_entries: Vec<((HostId, HostId), f64)>,
    link_entries: Vec<((HostId, HostId), f64)>,
    symmetry: Vec<(f64, f64)>,
    relay_meta: Vec<(HostId, RelayMeta)>,
    endpoints: usize,
    relays: [usize; 4],
    unresponsive: u64,
}

/// Accumulates per-round results into [`CampaignResults`].
///
/// Rounds may arrive in any order; the merge in
/// [`ResultsBuilder::finish`] restores ascending round order, so the
/// output never depends on completion order.
#[derive(Debug, Default)]
pub struct ResultsBuilder {
    partials: BTreeMap<u32, RoundPartial>,
}

impl ResultsBuilder {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed round in and returns its summary. Rounds
    /// may be absorbed in any order, each exactly once.
    ///
    /// `direct` aligns with `plan.pairs`, `reverse` with the
    /// `reverse`-flagged pairs whose forward window succeeded (the
    /// subsequence [`RoundPlan::reverse_tasks`] schedules), and
    /// `links` with `overlay.needed`.
    pub fn absorb_round(
        &mut self,
        plan: &RoundPlan,
        overlay: &OverlayPlan,
        direct: &[Option<f64>],
        reverse: &[Option<f64>],
        links: &[Option<f64>],
    ) -> RoundSummary {
        assert_eq!(direct.len(), plan.pairs.len());
        assert_eq!(links.len(), overlay.needed.len());
        assert!(
            !self.partials.contains_key(&plan.round),
            "round {} absorbed twice",
            plan.round
        );

        // Pre-sized from the plan: every bound below is exact or a
        // tight upper bound, so the stitch hot path never reallocates.
        let mut partial = RoundPartial {
            cases: Vec::with_capacity(plan.pairs.len()),
            direct_entries: Vec::with_capacity(plan.pairs.len()),
            link_entries: Vec::with_capacity(overlay.needed.len()),
            symmetry: Vec::with_capacity(reverse.len()),
            relay_meta: Vec::with_capacity(plan.relays.len()),
            endpoints: plan.endpoints.len(),
            relays: [0; 4],
            unresponsive: 0,
        };

        // Relay census and metadata.
        for r in &plan.relays {
            partial.relays[r.rtype.index()] += 1;
            partial.relay_meta.push((
                r.host,
                RelayMeta {
                    rtype: r.rtype,
                    asn: r.asn,
                    city: r.city,
                    country: r.country,
                    facility: r.facility,
                },
            ));
        }

        // Direct medians: histories, symmetry pairs, unresponsiveness.
        let mut reverse_iter = reverse.iter();
        for (pair, d) in plan.pairs.iter().zip(direct) {
            let Some(m) = *d else {
                partial.unresponsive += 1;
                continue;
            };
            let (a, b) = (plan.endpoints[pair.src].host, plan.endpoints[pair.dst].host);
            let key = if a <= b { (a, b) } else { (b, a) };
            partial.direct_entries.push((key, m));
            if pair.reverse {
                let rev = *reverse_iter
                    .next()
                    .expect("one result per responsive reverse flag");
                if let Some(rev) = rev {
                    partial.symmetry.push((m, rev));
                }
            }
        }

        // Overlay-link medians, addressable by (endpoint, relay) index.
        let mut link: HashMap<(usize, u32), f64> = HashMap::with_capacity(overlay.needed.len());
        for (&(ei, ri), l) in overlay.needed.iter().zip(links) {
            let Some(v) = *l else { continue };
            link.insert((ei, ri), v);
            let e_host = plan.endpoints[ei].host;
            let r_host = plan.relays[ri as usize].host;
            let key = if e_host <= r_host {
                (e_host, r_host)
            } else {
                (r_host, e_host)
            };
            partial.link_entries.push((key, v));
        }

        // Stitch one-relay paths and emit the round's cases.
        for (pair_idx, (pair, d)) in plan.pairs.iter().zip(direct).enumerate() {
            let Some(d) = *d else { continue };
            let mut outcomes: [TypeOutcome; 4] = Default::default();
            for &ri in &overlay.feasible[pair_idx] {
                let relay = &plan.relays[ri as usize];
                let Some(stitched) = stitch_legs(
                    link.get(&(pair.src, ri)).copied(),
                    link.get(&(pair.dst, ri)).copied(),
                ) else {
                    continue;
                };
                let out = &mut outcomes[relay.rtype.index()];
                out.feasible += 1;
                if out.best.is_none_or(|(_, best)| stitched < best) {
                    out.best = Some((relay.host, stitched));
                }
                if stitched < d {
                    out.improving.push((relay.host, (d - stitched) as f32));
                }
            }
            let (src, dst) = (&plan.endpoints[pair.src], &plan.endpoints[pair.dst]);
            partial.cases.push(CaseRecord {
                round: plan.round,
                src: src.host,
                dst: dst.host,
                src_country: src.country,
                dst_country: dst.country,
                intercontinental: src.continent != dst.continent,
                direct_ms: d,
                outcomes,
            });
        }

        let summary = summarize(plan, overlay, &partial);
        self.partials.insert(plan.round, partial);
        summary
    }

    /// Rounds folded in so far.
    pub fn rounds_absorbed(&self) -> u32 {
        self.partials.len() as u32
    }

    /// Finalizes into [`CampaignResults`], merging the per-round
    /// partials in ascending round order — the step that makes
    /// completion order unobservable.
    pub fn finish(self, colo_pool: crate::colo::ColoPool, pings_sent: u64) -> CampaignResults {
        let rounds = (self.partials.len().max(1)) as f64;
        let total = |f: fn(&RoundPartial) -> usize| self.partials.values().map(f).sum::<usize>();
        let mut cases = Vec::with_capacity(total(|p| p.cases.len()));
        // History maps: the entry totals over-count keys repeated
        // across rounds, but they are cheap, correct upper bounds that
        // spare the maps every rehash.
        let mut direct_history: HashMap<(HostId, HostId), Vec<f64>> =
            HashMap::with_capacity(total(|p| p.direct_entries.len()));
        let mut link_history: HashMap<(HostId, HostId), Vec<f64>> =
            HashMap::with_capacity(total(|p| p.link_entries.len()));
        let mut symmetry_samples = Vec::with_capacity(total(|p| p.symmetry.len()));
        let mut relay_meta: HashMap<HostId, RelayMeta> =
            HashMap::with_capacity(total(|p| p.relay_meta.len()));
        let mut unresponsive_pairs = 0u64;
        let mut endpoints_total = 0usize;
        let mut relays_total = [0usize; 4];

        for partial in self.partials.into_values() {
            for (host, meta) in partial.relay_meta {
                relay_meta.entry(host).or_insert(meta);
            }
            for (key, m) in partial.direct_entries {
                direct_history.entry(key).or_default().push(m);
            }
            for (key, v) in partial.link_entries {
                link_history.entry(key).or_default().push(v);
            }
            symmetry_samples.extend(partial.symmetry);
            cases.extend(partial.cases);
            unresponsive_pairs += partial.unresponsive;
            endpoints_total += partial.endpoints;
            for (t, n) in partial.relays.iter().enumerate() {
                relays_total[t] += n;
            }
        }

        CampaignResults {
            cases,
            direct_history,
            link_history,
            symmetry_samples,
            relay_meta,
            colo_pool,
            pings_sent,
            unresponsive_pairs,
            avg_endpoints: endpoints_total as f64 / rounds,
            avg_relays: [
                relays_total[0] as f64 / rounds,
                relays_total[1] as f64 / rounds,
                relays_total[2] as f64 / rounds,
                relays_total[3] as f64 / rounds,
            ],
        }
    }
}

/// The per-round digest the streaming API hands to observers.
fn summarize(plan: &RoundPlan, overlay: &OverlayPlan, partial: &RoundPartial) -> RoundSummary {
    let mut improved = [0usize; 4];
    for case in &partial.cases {
        for (t, n) in improved.iter_mut().enumerate() {
            if case.outcomes[t].improved(case.direct_ms) {
                *n += 1;
            }
        }
    }
    RoundSummary {
        round: plan.round,
        endpoints: plan.endpoints.len(),
        pairs: plan.pairs.len(),
        cases: partial.cases.len(),
        unresponsive_pairs: partial.unresponsive,
        relays: partial.relays,
        links_planned: overlay.needed.len(),
        // One history entry was pushed per measured link (`needed` is
        // deduplicated), so the count is already in the partial.
        links_measured: partial.link_entries.len(),
        symmetry_samples: partial.symmetry.len(),
        improved,
    }
}

/// Buffers out-of-order [`RoundSummary`]s and releases them in round
/// order — the reorder step between "rounds complete whenever their
/// last window lands" and the streaming APIs' in-round-order promise.
/// One instance per campaign (`Campaign::run_streaming` keeps one;
/// `Sweep::run_streaming` one per scenario).
#[derive(Debug, Default)]
pub struct RoundReorder {
    pending: BTreeMap<u32, RoundSummary>,
    next: u32,
}

impl RoundReorder {
    /// An empty buffer expecting round 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts one completed round's summary and invokes `emit` for
    /// every summary that is now ready, in round order.
    pub fn push<F: FnMut(&RoundSummary)>(&mut self, summary: RoundSummary, mut emit: F) {
        self.pending.insert(summary.round, summary);
        while let Some(ready) = self.pending.remove(&self.next) {
            emit(&ready);
            self.next += 1;
        }
    }
}

/// Stand-alone stitching of one (pair, relay) combination from its leg
/// medians — the invariant the proptest suite pins down: a stitched
/// RTT exists iff both legs have medians, and equals their sum.
pub fn stitch_legs(leg1: Option<f64>, leg2: Option<f64>) -> Option<f64> {
    match (leg1, leg2) {
        (Some(a), Some(b)) => Some(stitch(a, b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlannedEndpoint, PlannedPair};
    use crate::relays::{Relay, RelayType};
    use shortcuts_geo::{CityId, Continent, CountryCode, GeoPoint};
    use shortcuts_netsim::clock::SimTime;
    use shortcuts_topology::Asn;

    fn endpoint(id: u32, cc: &str, continent: Continent) -> PlannedEndpoint {
        PlannedEndpoint {
            host: HostId(id),
            country: CountryCode::new(cc).unwrap(),
            city: CityId(0),
            continent,
            location: GeoPoint::new(0.0, f64::from(id)).unwrap(),
        }
    }

    fn relay(id: u32, rtype: RelayType) -> Relay {
        Relay {
            host: HostId(id),
            asn: Asn(id),
            city: CityId(0),
            location: GeoPoint::new(1.0, f64::from(id)).unwrap(),
            country: CountryCode::new("DE").unwrap(),
            rtype,
            facility: None,
        }
    }

    /// Two endpoints, two relays (one COR, one PLR), everything
    /// feasible: stitched outcomes must be exact leg sums.
    fn tiny_round() -> (RoundPlan, OverlayPlan) {
        tiny_round_at(0)
    }

    fn tiny_round_at(round: u32) -> (RoundPlan, OverlayPlan) {
        let plan = RoundPlan {
            round,
            t0: SimTime(0.0),
            endpoints: vec![
                endpoint(1, "US", Continent::NorthAmerica),
                endpoint(2, "DE", Continent::Europe),
            ],
            pairs: vec![PlannedPair {
                src: 0,
                dst: 1,
                reverse: true,
            }],
            relays: vec![relay(10, RelayType::Cor), relay(11, RelayType::Plr)],
        };
        let overlay = OverlayPlan {
            feasible: vec![vec![0, 1]],
            needed: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
        };
        (plan, overlay)
    }

    #[test]
    fn stitched_outcomes_are_leg_sums() {
        let (plan, overlay) = tiny_round();
        let mut b = ResultsBuilder::new();
        // Links: e0–r0=30, e0–r1=50, e1–r0=40, e1–r1=missing.
        let summary = b.absorb_round(
            &plan,
            &overlay,
            &[Some(100.0)],
            &[Some(101.0)],
            &[Some(30.0), Some(50.0), Some(40.0), None],
        );
        assert_eq!(summary.round, 0);
        assert_eq!(summary.cases, 1);
        assert_eq!(summary.links_planned, 4);
        assert_eq!(summary.links_measured, 3);
        assert_eq!(summary.symmetry_samples, 1);
        assert_eq!(summary.improved[RelayType::Cor.index()], 1);
        assert_eq!(summary.improved[RelayType::Plr.index()], 0);
        let r = b.finish(empty_pool(), 0);
        assert_eq!(r.cases.len(), 1);
        let c = &r.cases[0];
        assert!(c.intercontinental);
        // COR relay r0: 30 + 40 = 70, improves on 100 by 30.
        let cor = c.outcome(RelayType::Cor);
        assert_eq!(cor.best, Some((HostId(10), 70.0)));
        assert_eq!(cor.feasible, 1);
        assert_eq!(cor.improving, vec![(HostId(10), 30.0f32)]);
        // PLR relay r1 lost a leg: no stitched path.
        let plr = c.outcome(RelayType::Plr);
        assert!(plr.best.is_none());
        assert_eq!(plr.feasible, 0);
        // Symmetry pair recorded.
        assert_eq!(r.symmetry_samples, vec![(100.0, 101.0)]);
        // Histories keyed in order.
        assert_eq!(r.direct_history[&(HostId(1), HostId(2))], vec![100.0]);
        assert_eq!(r.link_history[&(HostId(1), HostId(10))], vec![30.0]);
    }

    #[test]
    fn unresponsive_direct_pair_drops_the_case() {
        let (plan, overlay) = tiny_round();
        let mut b = ResultsBuilder::new();
        let no_links: Vec<Option<f64>> = vec![None; overlay.needed.len()];
        // No reverse results: an unresponsive forward pair schedules
        // no reverse window.
        let summary = b.absorb_round(&plan, &overlay, &[None], &[], &no_links);
        assert_eq!(summary.cases, 0);
        assert_eq!(summary.unresponsive_pairs, 1);
        let r = b.finish(empty_pool(), 0);
        assert!(r.cases.is_empty());
        assert_eq!(r.unresponsive_pairs, 1);
        assert!(r.symmetry_samples.is_empty());
    }

    #[test]
    fn averages_span_rounds() {
        let mut b = ResultsBuilder::new();
        for round in 0..4 {
            let (plan, overlay) = tiny_round_at(round);
            let no_links: Vec<Option<f64>> = vec![None; overlay.needed.len()];
            b.absorb_round(&plan, &overlay, &[Some(50.0)], &[None], &no_links);
        }
        assert_eq!(b.rounds_absorbed(), 4);
        let r = b.finish(empty_pool(), 123);
        assert_eq!(r.pings_sent, 123);
        assert!((r.avg_endpoints - 2.0).abs() < 1e-12);
        assert!((r.avg_relays[RelayType::Cor.index()] - 1.0).abs() < 1e-12);
        assert!((r.avg_relays[RelayType::Plr.index()] - 1.0).abs() < 1e-12);
        // Direct history accumulated across rounds.
        assert_eq!(r.direct_history[&(HostId(1), HostId(2))].len(), 4);
    }

    #[test]
    fn absorption_order_is_unobservable() {
        // Four rounds with per-round distinguishable medians, absorbed
        // in order vs. scrambled: the merged results must be
        // identical, with every history in ascending round order.
        let rounds = [0u32, 1, 2, 3];
        let run = |order: &[u32]| {
            let mut b = ResultsBuilder::new();
            for &round in order {
                let (plan, overlay) = tiny_round_at(round);
                let d = 100.0 + f64::from(round);
                b.absorb_round(
                    &plan,
                    &overlay,
                    &[Some(d)],
                    &[Some(d + 0.5)],
                    &[Some(30.0), Some(50.0), Some(40.0 + f64::from(round)), None],
                );
            }
            b.finish(empty_pool(), 7)
        };
        let in_order = run(&rounds);
        let scrambled = run(&[2, 0, 3, 1]);
        assert_eq!(in_order.cases.len(), scrambled.cases.len());
        for (a, b) in in_order.cases.iter().zip(&scrambled.cases) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.direct_ms.to_bits(), b.direct_ms.to_bits());
        }
        assert_eq!(in_order.symmetry_samples, scrambled.symmetry_samples);
        assert_eq!(
            in_order.direct_history[&(HostId(1), HostId(2))],
            scrambled.direct_history[&(HostId(1), HostId(2))]
        );
        assert_eq!(
            in_order.link_history[&(HostId(1), HostId(10))],
            scrambled.link_history[&(HostId(1), HostId(10))]
        );
        // And the merged history really is in round order.
        assert_eq!(
            scrambled.direct_history[&(HostId(1), HostId(2))],
            vec![100.0, 101.0, 102.0, 103.0]
        );
    }

    #[test]
    #[should_panic(expected = "absorbed twice")]
    fn double_absorption_is_a_bug() {
        let (plan, overlay) = tiny_round();
        let no_links: Vec<Option<f64>> = vec![None; overlay.needed.len()];
        let mut b = ResultsBuilder::new();
        b.absorb_round(&plan, &overlay, &[Some(50.0)], &[None], &no_links);
        b.absorb_round(&plan, &overlay, &[Some(50.0)], &[None], &no_links);
    }

    #[test]
    fn round_reorder_releases_in_round_order() {
        let summary = |round: u32| {
            let (plan, overlay) = tiny_round_at(round);
            let no_links: Vec<Option<f64>> = vec![None; overlay.needed.len()];
            ResultsBuilder::new().absorb_round(&plan, &overlay, &[Some(50.0)], &[None], &no_links)
        };
        let mut buf = RoundReorder::new();
        let mut seen = Vec::new();
        for round in [2u32, 0, 3, 1] {
            buf.push(summary(round), |s| seen.push(s.round));
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stitch_legs_requires_both() {
        assert_eq!(stitch_legs(Some(2.0), Some(3.5)), Some(5.5));
        assert_eq!(stitch_legs(None, Some(3.5)), None);
        assert_eq!(stitch_legs(Some(2.0), None), None);
        assert_eq!(stitch_legs(None, None), None);
    }

    fn empty_pool() -> crate::colo::ColoPool {
        crate::colo::ColoPool {
            relays: Vec::new(),
            funnel: crate::colo::FilterFunnel {
                initial: 0,
                single_facility: 0,
                pingable: 0,
                ownership: 0,
                presence: 0,
                geolocated: 0,
            },
        }
    }
}
