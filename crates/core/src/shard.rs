//! Two-level sharded scheduler: keeps `(campaign, round)` work items
//! from one *or many* campaigns in flight on one worker pool.
//!
//! The serial/parallel round loop has three full barriers per round
//! (direct → reverse/overlay → stitch): every core waits for the
//! round's slowest window before any core may start the next stage,
//! and the whole machine idles through each round's planning. Rounds,
//! however, are independent — a round's plan is a pure function of
//! `(seed, round)` ([`crate::plan::plan_round_for`]) and every window's
//! outcome is a pure function of its task identity — so the barriers
//! only need to exist *per round*, not across the campaign. And since
//! each campaign's windows derive their RNG from its own seed,
//! *campaigns* are just as independent as rounds: a scenario sweep's
//! `(campaign, round)` jobs can interleave on the same pool.
//!
//! [`run_interleaved`] exploits that: a single FIFO work queue feeds a
//! fixed worker pool with `Plan` and `Measure` items from up to
//! `jobs_in_flight` jobs at once, each job one `(campaign, round)`
//! pair. While job *j* sits at a stage boundary waiting for its last
//! window, the workers measure another job's windows — from the same
//! campaign or a different one — instead of idling. Per-job state
//! machines (direct stage → tail stage of reverse + overlay windows →
//! complete) advance whenever their last outstanding window lands; the
//! worker that completes a job hands the bundle to the coordinator
//! thread and admits the next un-planned job, keeping at most
//! `jobs_in_flight` jobs' plans and partial results alive. Jobs are
//! admitted round-major (round 0 of every campaign, then round 1, …)
//! so all campaigns of a sweep stream from their first round.
//!
//! Each campaign brings its own [`MeasurementBackend`] — in a sweep,
//! one [`crate::backend::NetsimBackend`] per campaign, all sharing one
//! engine — so a window is always measured with its campaign's seed
//! and fault plan.
//!
//! Determinism is untouched: every result is written to a slot
//! addressed by `(job, stage, index)`, tail tasks are derived from the
//! job's *complete* direct results by the same pure functions the
//! serial loop uses, and the order-independent
//! [`crate::stitch::ResultsBuilder`] merges completed rounds by round
//! index — so a sharded campaign is bit-identical to a serial one, and
//! a swept campaign bit-identical to running it alone.
//!
//! [`run_sharded`] is the single-campaign wrapper the solo
//! [`crate::workflow::Campaign`] uses.

use crate::backend::{MeasureTask, MeasurementBackend};
use crate::plan::{plan_overlay, OverlayPlan, RoundPlan};
use shortcuts_telemetry as telemetry;
use shortcuts_telemetry::Stage;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One finished round, exactly as the serial loop would have produced
/// it: the plans plus every window median, position-aligned.
#[derive(Debug)]
pub struct CompletedRound {
    /// The round's plan.
    pub plan: RoundPlan,
    /// The overlay plan derived from the direct medians.
    pub overlay: OverlayPlan,
    /// Direct medians, aligned with `plan.pairs`.
    pub direct: Vec<Option<f64>>,
    /// Reverse medians, aligned with the scheduled reverse tasks.
    pub reverse: Vec<Option<f64>>,
    /// Overlay-link medians, aligned with `overlay.needed`.
    pub links: Vec<Option<f64>>,
}

/// Which result slot a measure item writes into.
#[derive(Debug, Clone, Copy)]
enum Dest {
    Direct,
    Reverse,
    Link,
}

/// One unit of work in the shared queue. `job` indexes the
/// coordination's job table (one entry per admitted `(campaign,
/// round)` pair).
enum Item {
    /// Plan job `j` and enqueue its direct windows.
    Plan(u32),
    /// Measure one window and store it at `(job, dest, idx)`.
    Measure {
        job: u32,
        dest: Dest,
        idx: usize,
        task: MeasureTask,
    },
}

/// A job currently in flight.
struct JobState {
    plan: RoundPlan,
    overlay: Option<OverlayPlan>,
    direct: Vec<Option<f64>>,
    reverse: Vec<Option<f64>>,
    links: Vec<Option<f64>>,
    /// Outstanding windows in the current stage.
    remaining: usize,
    /// Whether the job has advanced past the direct stage into the
    /// reverse + overlay tail.
    in_tail: bool,
    /// When the current measurement stage began fanning out windows —
    /// telemetry only (`None` while telemetry is disabled). Feeds the
    /// per-(campaign, round) `sample` stage histogram and trace dump;
    /// never observable in results.
    stage_started: Option<Instant>,
}

struct Queue {
    items: VecDeque<Item>,
    /// Next index into the admission-ordered job table not yet
    /// admitted.
    next_job: u32,
    /// All jobs complete: workers exit.
    finished: bool,
    /// A thread panicked: everyone bails out.
    aborted: bool,
}

struct DoneState {
    completed: VecDeque<(u32, CompletedRound)>,
    jobs_done: u32,
    aborted: bool,
}

/// The non-generic coordination core shared by workers and the
/// coordinator.
struct Coordination {
    /// `(campaign, round)` per job, in admission order.
    jobs: Vec<(u32, u32)>,
    queue: Mutex<Queue>,
    work_cv: Condvar,
    slots: Vec<Mutex<Option<JobState>>>,
    done: Mutex<DoneState>,
    done_cv: Condvar,
}

impl Coordination {
    /// Flags the run as aborted and wakes every waiter, so a panic on
    /// one thread cannot strand the others on a condvar. Runs during
    /// unwinding, so it must shrug off mutexes the panicking thread
    /// itself poisoned — a second panic here would abort the process
    /// and eat the original panic message.
    fn abort(&self) {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .aborted = true;
        self.done
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .aborted = true;
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }
}

/// Sets the abort flags if its thread unwinds while it is armed.
struct AbortGuard<'a>(&'a Coordination);

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// Runs every `(campaign, round)` job of a batch of campaigns with up
/// to `jobs_in_flight` jobs in flight on one worker pool, calling
/// `on_round(campaign, round)` on the calling thread for each
/// completed job **in completion order** (callers needing round order
/// reorder on top; [`crate::stitch::ResultsBuilder`] does not care).
///
/// `backends[c]` measures campaign `c`'s windows; `rounds[c]` is its
/// round count. `planner(c, round)` must be a pure function of its
/// arguments — it is called from worker threads, at most once per job.
pub fn run_interleaved<B, P, F>(
    backends: &[&B],
    rounds: &[u32],
    jobs_in_flight: usize,
    planner: P,
    on_round: F,
) where
    B: MeasurementBackend + ?Sized,
    P: Fn(u32, u32) -> RoundPlan + Sync,
    F: FnMut(u32, CompletedRound),
{
    let ranges: Vec<(u32, u32)> = rounds.iter().map(|&r| (0, r)).collect();
    run_interleaved_ranges(backends, &ranges, jobs_in_flight, planner, on_round);
}

/// [`run_interleaved`] over per-campaign **round ranges**: campaign
/// `c` contributes jobs for rounds `ranges[c].0 .. ranges[c].1`. This
/// is the churn-segment primitive — a caller applying topology deltas
/// between round segments runs one ranged batch per segment (the call
/// boundary is the barrier that keeps every in-flight window on one
/// epoch), with `(0, rounds)` ranges degenerating to exactly the
/// classic whole-campaign admission order.
pub fn run_interleaved_ranges<B, P, F>(
    backends: &[&B],
    ranges: &[(u32, u32)],
    jobs_in_flight: usize,
    planner: P,
    mut on_round: F,
) where
    B: MeasurementBackend + ?Sized,
    P: Fn(u32, u32) -> RoundPlan + Sync,
    F: FnMut(u32, CompletedRound),
{
    assert_eq!(
        backends.len(),
        ranges.len(),
        "one backend per campaign in the sweep"
    );
    let total_jobs: u32 = ranges.iter().map(|&(s, e)| e.saturating_sub(s)).sum();
    if total_jobs == 0 {
        return;
    }
    // Admission order: round-major across campaigns, so every campaign
    // of a sweep makes progress (and streams) from its first round
    // instead of campaigns running back to back. Rounds are absolute —
    // a segment's jobs carry their true campaign round numbers.
    let mut jobs: Vec<(u32, u32)> = Vec::with_capacity(total_jobs as usize);
    let max_end = ranges.iter().map(|&(_, e)| e).max().unwrap_or(0);
    for round in 0..max_end {
        for (campaign, &(start, end)) in ranges.iter().enumerate() {
            if start <= round && round < end {
                jobs.push((campaign as u32, round));
            }
        }
    }
    let in_flight = jobs_in_flight.clamp(1, total_jobs as usize);
    let coord = Coordination {
        queue: Mutex::new(Queue {
            items: (0..in_flight as u32).map(Item::Plan).collect(),
            next_job: in_flight as u32,
            finished: false,
            aborted: false,
        }),
        work_cv: Condvar::new(),
        slots: (0..total_jobs).map(|_| Mutex::new(None)).collect(),
        done: Mutex::new(DoneState {
            completed: VecDeque::new(),
            jobs_done: 0,
            aborted: false,
        }),
        done_cv: Condvar::new(),
        jobs,
    };

    let threads = rayon::current_num_threads().max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(backends, &planner, &coord));
        }

        // Coordinator: drain completed jobs as they land. The guard
        // keeps a panic in `on_round` from stranding the workers.
        let guard = AbortGuard(&coord);
        let mut seen = 0u32;
        while seen < total_jobs {
            let (campaign, bundle) = {
                let mut d = coord.done.lock().expect("done lock");
                loop {
                    assert!(!d.aborted, "sharded worker panicked");
                    if let Some(b) = d.completed.pop_front() {
                        break b;
                    }
                    d = coord.done_cv.wait(d).expect("done lock");
                }
            };
            seen += 1;
            on_round(campaign, bundle);
        }
        drop(guard);
        // All jobs delivered; release any workers still parked.
        coord.queue.lock().expect("queue lock").finished = true;
        coord.work_cv.notify_all();
    });
}

/// Runs `total_rounds` rounds of a single campaign with up to
/// `rounds_in_flight` rounds in flight — the one-campaign special case
/// of [`run_interleaved`].
pub fn run_sharded<B, P, F>(
    backend: &B,
    total_rounds: u32,
    rounds_in_flight: usize,
    planner: P,
    mut on_round: F,
) where
    B: MeasurementBackend + ?Sized,
    P: Fn(u32) -> RoundPlan + Sync,
    F: FnMut(CompletedRound),
{
    run_interleaved(
        &[backend],
        &[total_rounds],
        rounds_in_flight,
        |_, round| planner(round),
        |_, done| on_round(done),
    );
}

/// Worker loop: pull an item, do the work, advance the job's state
/// machine when its stage drains.
fn worker<B, P>(backends: &[&B], planner: &P, coord: &Coordination)
where
    B: MeasurementBackend + ?Sized,
    P: Fn(u32, u32) -> RoundPlan + Sync,
{
    let _guard = AbortGuard(coord);
    loop {
        let item = {
            let mut q = coord.queue.lock().expect("queue lock");
            loop {
                if q.finished || q.aborted {
                    return;
                }
                if let Some(item) = q.items.pop_front() {
                    let tele = telemetry::global();
                    if tele.enabled() {
                        tele.queue_depth().set(q.items.len() as i64);
                    }
                    break item;
                }
                q = coord.work_cv.wait(q).expect("queue lock");
            }
        };
        match item {
            Item::Plan(job) => {
                let (campaign, round) = coord.jobs[job as usize];
                let tele = telemetry::global();
                if tele.enabled() {
                    tele.jobs_in_flight().add(1);
                }
                let plan = {
                    let _span = tele.span_for(Stage::Plan, campaign, round);
                    planner(campaign, round)
                };
                debug_assert_eq!(plan.round, round, "planner must plan the asked round");
                let direct_tasks = plan.direct_tasks();
                let n = direct_tasks.len();
                *coord.slots[job as usize].lock().expect("slot lock") = Some(JobState {
                    plan,
                    overlay: None,
                    direct: vec![None; n],
                    reverse: Vec::new(),
                    links: Vec::new(),
                    remaining: n,
                    in_tail: false,
                    stage_started: (n > 0 && tele.enabled()).then(Instant::now),
                });
                if n == 0 {
                    // Degenerate round with nothing to measure.
                    advance_job(coord, backends, job);
                } else {
                    // Let the campaign's backend batch-resolve the
                    // stage's pair set before its windows fan out as
                    // individual measure items.
                    backends[campaign as usize].prepare(&direct_tasks);
                    enqueue_measures(coord, job, Dest::Direct, direct_tasks);
                }
            }
            Item::Measure {
                job,
                dest,
                idx,
                task,
            } => {
                // Measure outside any lock — this is the expensive
                // part — on the owning campaign's backend (its seed,
                // its faults, its ping accounting).
                let campaign = coord.jobs[job as usize].0;
                let m = backends[campaign as usize].measure(&task);
                let mut slot = coord.slots[job as usize].lock().expect("slot lock");
                let st = slot.as_mut().expect("measured job is in flight");
                match dest {
                    Dest::Direct => st.direct[idx] = m,
                    Dest::Reverse => st.reverse[idx] = m,
                    Dest::Link => st.links[idx] = m,
                }
                st.remaining -= 1;
                let stage_drained = st.remaining == 0;
                drop(slot);
                if stage_drained {
                    advance_job(coord, backends, job);
                }
            }
        }
    }
}

fn enqueue_measures(coord: &Coordination, job: u32, dest: Dest, tasks: Vec<MeasureTask>) {
    {
        let mut q = coord.queue.lock().expect("queue lock");
        q.items.extend(
            tasks
                .into_iter()
                .enumerate()
                .map(|(idx, task)| Item::Measure {
                    job,
                    dest,
                    idx,
                    task,
                }),
        );
        let tele = telemetry::global();
        if tele.enabled() {
            tele.queue_depth().set(q.items.len() as i64);
        }
    }
    coord.work_cv.notify_all();
}

/// Advances a job whose current stage has no outstanding windows:
/// direct → tail (reverse + overlay links), tail → complete. Runs on
/// the worker that landed the stage's last window.
fn advance_job<B>(coord: &Coordination, backends: &[&B], job: u32)
where
    B: MeasurementBackend + ?Sized,
{
    let mut slot = coord.slots[job as usize].lock().expect("slot lock");
    let st = slot.as_mut().expect("advanced job is in flight");
    debug_assert_eq!(st.remaining, 0, "stage still has outstanding windows");

    let tele = telemetry::global();
    let (campaign_id, round) = coord.jobs[job as usize];
    if !st.in_tail {
        // Direct stage done: derive the tail from the complete direct
        // results with the same pure functions the serial loop uses.
        if let Some(start) = st.stage_started.take() {
            tele.record_stage(Stage::Sample, campaign_id, round, start);
        }
        let reverse_tasks = st.plan.reverse_tasks(&st.direct);
        let overlay = plan_overlay(&st.plan, &st.direct);
        let link_tasks = overlay.link_tasks(&st.plan);
        st.reverse = vec![None; reverse_tasks.len()];
        st.links = vec![None; link_tasks.len()];
        st.remaining = reverse_tasks.len() + link_tasks.len();
        st.overlay = Some(overlay);
        st.in_tail = true;
        if st.remaining > 0 {
            st.stage_started = tele.enabled().then(Instant::now);
            drop(slot);
            let backend = backends[coord.jobs[job as usize].0 as usize];
            backend.prepare(&reverse_tasks);
            backend.prepare(&link_tasks);
            enqueue_measures(coord, job, Dest::Reverse, reverse_tasks);
            enqueue_measures(coord, job, Dest::Link, link_tasks);
            return;
        }
        // No tail windows at all: fall through to completion.
    }

    let st = slot.take().expect("completed job is in flight");
    drop(slot);
    if let Some(start) = st.stage_started {
        tele.record_stage(Stage::Sample, campaign_id, round, start);
    }
    if tele.enabled() {
        tele.jobs_in_flight().sub(1);
    }
    let bundle = CompletedRound {
        overlay: st.overlay.expect("tail stage set the overlay plan"),
        plan: st.plan,
        direct: st.direct,
        reverse: st.reverse,
        links: st.links,
    };
    let campaign = coord.jobs[job as usize].0;

    // Admit the next job, keeping at most `jobs_in_flight` alive.
    {
        let mut q = coord.queue.lock().expect("queue lock");
        if (q.next_job as usize) < coord.jobs.len() {
            let next = q.next_job;
            q.next_job += 1;
            q.items.push_back(Item::Plan(next));
            coord.work_cv.notify_all();
        }
    }

    // Deliver to the coordinator; the last job also releases the
    // worker pool.
    let all_done = {
        let mut d = coord.done.lock().expect("done lock");
        d.completed.push_back((campaign, bundle));
        d.jobs_done += 1;
        d.jobs_done as usize == coord.jobs.len()
    };
    coord.done_cv.notify_all();
    if all_done {
        coord.queue.lock().expect("queue lock").finished = true;
        coord.work_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlannedEndpoint, PlannedPair};
    use shortcuts_geo::{CityId, Continent, CountryCode, GeoPoint};
    use shortcuts_netsim::clock::SimTime;
    use shortcuts_netsim::HostId;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Deterministic synthetic backend: RTT from the task's own seed.
    struct SyntheticBackend {
        seed: u64,
        pings: AtomicU64,
    }

    impl SyntheticBackend {
        fn new(seed: u64) -> Self {
            SyntheticBackend {
                seed,
                pings: AtomicU64::new(0),
            }
        }
    }

    impl MeasurementBackend for SyntheticBackend {
        fn measure(&self, task: &MeasureTask) -> Option<f64> {
            self.pings.fetch_add(1, Ordering::Relaxed);
            let bits = task.rng_seed(self.seed);
            // A deterministic ~12% of windows fail.
            if bits.is_multiple_of(8) {
                return None;
            }
            Some((bits % 100_000) as f64 / 1000.0 + 1.0)
        }

        fn pings_sent(&self) -> u64 {
            self.pings.load(Ordering::Relaxed)
        }
    }

    /// A synthetic pure planner: `n` endpoints on a line, all pairs,
    /// alternating reverse flags, no relays (the tail is then reverse
    /// windows only — enough to exercise both stages).
    fn planner(round: u32) -> RoundPlan {
        let n = 3 + (round as usize % 3);
        let endpoints: Vec<PlannedEndpoint> = (0..n)
            .map(|i| PlannedEndpoint {
                host: HostId(round * 100 + i as u32),
                country: CountryCode::new("US").unwrap(),
                city: CityId(0),
                continent: Continent::NorthAmerica,
                location: GeoPoint::new(0.0, f64::from(i as u32)).unwrap(),
            })
            .collect();
        let mut pairs = Vec::new();
        for src in 0..n {
            for dst in (src + 1)..n {
                pairs.push(PlannedPair {
                    src,
                    dst,
                    reverse: (src + dst) % 2 == 0,
                });
            }
        }
        RoundPlan {
            round,
            t0: SimTime(f64::from(round)),
            endpoints,
            pairs,
            relays: Vec::new(),
        }
    }

    fn run(rounds: u32, in_flight: usize) -> Vec<CompletedRound> {
        let backend = SyntheticBackend::new(11);
        let mut done = Vec::new();
        run_sharded(&backend, rounds, in_flight, planner, |r| done.push(r));
        done
    }

    #[test]
    fn completes_every_round_exactly_once() {
        for in_flight in [1, 2, 8, 100] {
            let mut done = run(7, in_flight);
            assert_eq!(done.len(), 7);
            done.sort_by_key(|r| r.plan.round);
            for (i, r) in done.iter().enumerate() {
                assert_eq!(r.plan.round, i as u32);
                assert_eq!(r.direct.len(), r.plan.pairs.len());
                assert_eq!(r.links.len(), r.overlay.needed.len());
            }
        }
    }

    #[test]
    fn sharded_results_match_a_direct_serial_evaluation() {
        let backend = SyntheticBackend::new(11);
        let mut done = run(6, 3);
        done.sort_by_key(|r| r.plan.round);
        for r in &done {
            let plan = planner(r.plan.round);
            let direct: Vec<Option<f64>> = plan
                .direct_tasks()
                .iter()
                .map(|t| backend.measure(t))
                .collect();
            assert_eq!(direct.len(), r.direct.len());
            for (a, b) in direct.iter().zip(&r.direct) {
                assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
            }
            let reverse: Vec<Option<f64>> = plan
                .reverse_tasks(&direct)
                .iter()
                .map(|t| backend.measure(t))
                .collect();
            assert_eq!(reverse.len(), r.reverse.len());
            for (a, b) in reverse.iter().zip(&r.reverse) {
                assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
            }
        }
    }

    #[test]
    fn reverse_windows_follow_the_forward_successes() {
        let done = run(5, 2);
        for r in &done {
            let expected = r
                .plan
                .pairs
                .iter()
                .zip(&r.direct)
                .filter(|(p, d)| p.reverse && d.is_some())
                .count();
            assert_eq!(r.reverse.len(), expected);
        }
    }

    #[test]
    fn zero_rounds_is_a_no_op() {
        assert!(run(0, 4).is_empty());
    }

    #[test]
    fn single_round_in_flight_still_pipelines_nothing_but_works() {
        let done = run(3, 1);
        // With one round in flight, completion order IS round order.
        let order: Vec<u32> = done.iter().map(|r| r.plan.round).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // A panicking backend must surface as a panic from
        // run_sharded — not a deadlock (workers stranded on the
        // condvar) and not a process abort (double panic in the
        // abort path on the poisoned mutex).
        struct PanicBackend;
        impl MeasurementBackend for PanicBackend {
            fn measure(&self, _: &MeasureTask) -> Option<f64> {
                panic!("backend exploded")
            }
            fn pings_sent(&self) -> u64 {
                0
            }
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded(&PanicBackend, 2, 2, planner, |_| {});
        }));
        assert!(outcome.is_err(), "the backend panic must propagate");
    }

    #[test]
    fn ping_counts_are_exact() {
        let backend = SyntheticBackend::new(3);
        let mut done = Vec::new();
        run_sharded(&backend, 4, 4, planner, |r| done.push(r));
        let windows: u64 = done
            .iter()
            .map(|r| (r.direct.len() + r.reverse.len() + r.links.len()) as u64)
            .sum();
        assert_eq!(backend.pings_sent(), windows);
    }

    // ---- Two-level (multi-campaign) scheduling ------------------------

    /// Runs `seeds.len()` synthetic campaigns interleaved, returning
    /// each campaign's completed rounds sorted by round.
    fn run_batch(seeds: &[u64], rounds: &[u32], in_flight: usize) -> Vec<Vec<CompletedRound>> {
        let backends: Vec<SyntheticBackend> =
            seeds.iter().map(|&s| SyntheticBackend::new(s)).collect();
        let refs: Vec<&SyntheticBackend> = backends.iter().collect();
        let mut done: Vec<Vec<CompletedRound>> = seeds.iter().map(|_| Vec::new()).collect();
        run_interleaved(
            &refs,
            rounds,
            in_flight,
            |_, round| planner(round),
            |c, r| done[c as usize].push(r),
        );
        for rounds in &mut done {
            rounds.sort_by_key(|r| r.plan.round);
        }
        done
    }

    #[test]
    fn interleaved_campaigns_complete_all_their_rounds() {
        for in_flight in [1, 3, 64] {
            let done = run_batch(&[11, 22, 33], &[4, 2, 5], in_flight);
            assert_eq!(done[0].len(), 4);
            assert_eq!(done[1].len(), 2);
            assert_eq!(done[2].len(), 5);
            for campaign in &done {
                for (i, r) in campaign.iter().enumerate() {
                    assert_eq!(r.plan.round, i as u32);
                }
            }
        }
    }

    #[test]
    fn each_swept_campaign_is_bit_identical_to_running_it_alone() {
        // The sweep determinism contract at the scheduler level: a
        // campaign's rounds in a 3-campaign interleave match a solo
        // single-campaign run of the same seed, window for window.
        let seeds = [11u64, 22, 11]; // duplicate seed: identical twins
        let rounds = [3u32, 4, 3];
        let batch = run_batch(&seeds, &rounds, 5);
        for (c, &seed) in seeds.iter().enumerate() {
            let backend = SyntheticBackend::new(seed);
            let mut solo = Vec::new();
            run_sharded(&backend, rounds[c], 2, planner, |r| solo.push(r));
            solo.sort_by_key(|r| r.plan.round);
            assert_eq!(batch[c].len(), solo.len());
            for (a, b) in batch[c].iter().zip(&solo) {
                assert_eq!(a.plan.round, b.plan.round);
                for (x, y) in a.direct.iter().zip(&b.direct) {
                    assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
                }
                for (x, y) in a.reverse.iter().zip(&b.reverse) {
                    assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
                }
            }
        }
        // The twin campaigns agree with each other too.
        for (a, b) in batch[0].iter().zip(&batch[2]) {
            for (x, y) in a.direct.iter().zip(&b.direct) {
                assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
            }
        }
    }

    #[test]
    fn windows_land_on_their_own_campaigns_backend() {
        // Per-campaign ping accounting: each backend's count must equal
        // its own campaign's windows, not a share of the pool's.
        let backends = [SyntheticBackend::new(1), SyntheticBackend::new(2)];
        let refs: Vec<&SyntheticBackend> = backends.iter().collect();
        let mut per_campaign = [0u64, 0];
        run_interleaved(
            &refs,
            &[3, 6],
            4,
            |_, round| planner(round),
            |c, r| {
                per_campaign[c as usize] +=
                    (r.direct.len() + r.reverse.len() + r.links.len()) as u64;
            },
        );
        assert_eq!(backends[0].pings_sent(), per_campaign[0]);
        assert_eq!(backends[1].pings_sent(), per_campaign[1]);
    }

    #[test]
    fn mismatched_backend_and_round_counts_panic() {
        let backend = SyntheticBackend::new(1);
        let refs: Vec<&SyntheticBackend> = vec![&backend];
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_interleaved(&refs, &[1, 1], 1, |_, round| planner(round), |_, _| {});
        }));
        assert!(outcome.is_err());
    }
}
