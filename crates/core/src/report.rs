//! CSV export of campaign results and analyses.
//!
//! The paper's artifacts are tables and figure series; downstream users
//! (plotting scripts, spreadsheets) want them as plain CSV. Every
//! emitter returns a `String` so callers decide where it goes; fields
//! are RFC-4180-quoted only when needed.

use crate::analysis::improvement::ImprovementAnalysis;
use crate::analysis::threshold::ThresholdCurve;
use crate::analysis::top_relays::TopRelayAnalysis;
use crate::colo::FilterFunnel;
use crate::relays::RelayType;
use crate::workflow::CampaignResults;

/// Quotes a CSV field if it contains a delimiter, quote or newline.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One CSV row from string fields.
fn row<I: IntoIterator<Item = String>>(fields: I) -> String {
    fields
        .into_iter()
        .map(|f| field(&f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Per-case dump: one row per (round, pair) with direct RTT and the
/// best stitched RTT per relay type. This is the raw material for every
/// figure.
pub fn cases_csv(results: &CampaignResults) -> String {
    let mut out = String::from(
        "round,src_host,dst_host,src_country,dst_country,intercontinental,direct_ms,\
         best_cor_ms,best_plr_ms,best_rar_other_ms,best_rar_eye_ms\n",
    );
    for c in &results.cases {
        let best = |t: RelayType| {
            c.outcome(t)
                .best
                .map(|(_, rtt)| format!("{rtt:.3}"))
                .unwrap_or_default()
        };
        out.push_str(&row([
            c.round.to_string(),
            c.src.0.to_string(),
            c.dst.0.to_string(),
            c.src_country.to_string(),
            c.dst_country.to_string(),
            c.intercontinental.to_string(),
            format!("{:.3}", c.direct_ms),
            best(RelayType::Cor),
            best(RelayType::Plr),
            best(RelayType::RarOther),
            best(RelayType::RarEye),
        ]));
        out.push('\n');
    }
    out
}

/// Fig.-2 summary: one row per relay type.
pub fn improvement_csv(analysis: &ImprovementAnalysis) -> String {
    let mut out = String::from(
        "type,improved_fraction,median_improvement_ms,over_100ms_fraction,median_improving_relays\n",
    );
    for t in RelayType::ALL {
        let ti = analysis.for_type(t);
        out.push_str(&row([
            t.label().to_string(),
            format!("{:.4}", ti.improved_fraction),
            format!("{:.3}", ti.median_improvement_ms),
            format!("{:.4}", ti.over_100ms_fraction),
            format!("{:.1}", ti.median_improving_relays),
        ]));
        out.push('\n');
    }
    out
}

/// Fig.-3 series: coverage per top-k, one column per type.
pub fn top_relays_csv(analyses: &[TopRelayAnalysis]) -> String {
    let max_k = analyses.iter().map(|a| a.coverage.len()).max().unwrap_or(0);
    let mut out = String::from("k");
    for a in analyses {
        out.push(',');
        out.push_str(a.rtype.label());
    }
    out.push('\n');
    for k in 1..=max_k {
        out.push_str(&k.to_string());
        for a in analyses {
            out.push(',');
            out.push_str(&format!("{:.4}", a.coverage_at(k)));
        }
        out.push('\n');
    }
    out
}

/// Fig.-4 series: one column per curve.
pub fn threshold_csv(curves: &[ThresholdCurve]) -> String {
    let mut out = String::from("threshold_ms");
    for c in curves {
        let suffix = match c.top_k {
            Some(k) => format!("top{k}"),
            None => "all".to_string(),
        };
        out.push(',');
        out.push_str(&format!("{}_{}", c.rtype.label(), suffix));
    }
    out.push('\n');
    if let Some(first) = curves.first() {
        for (i, &(x, _)) in first.points.iter().enumerate() {
            out.push_str(&format!("{x:.0}"));
            for c in curves {
                out.push(',');
                out.push_str(&format!("{:.4}", c.points[i].1));
            }
            out.push('\n');
        }
    }
    out
}

/// §2.2 funnel as CSV.
pub fn funnel_csv(funnel: &FilterFunnel) -> String {
    let mut out = String::from("stage,kept\n");
    for (name, kept) in [
        ("raw", funnel.initial),
        ("single_facility", funnel.single_facility),
        ("pingable", funnel.pingable),
        ("ownership", funnel.ownership),
        ("presence", funnel.presence),
        ("geolocated", funnel.geolocated),
    ] {
        out.push_str(&format!("{name},{kept}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::improvement::tests::synthetic_results;

    #[test]
    fn csv_field_quoting() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn cases_csv_has_header_and_rows() {
        let r = synthetic_results();
        let csv = cases_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.cases.len());
        assert!(lines[0].starts_with("round,src_host"));
        // Row 1: direct 100, best COR 80.
        assert!(lines[1].contains("100.000"));
        assert!(lines[1].contains("80.000"));
    }

    #[test]
    fn improvement_csv_is_complete() {
        let r = synthetic_results();
        let a = ImprovementAnalysis::compute(&r);
        let csv = improvement_csv(&a);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("COR,0.5000"));
    }

    #[test]
    fn series_csvs_align() {
        let r = synthetic_results();
        let analyses: Vec<TopRelayAnalysis> = RelayType::ALL
            .iter()
            .map(|&t| TopRelayAnalysis::compute(&r, t, 10))
            .collect();
        let csv = top_relays_csv(&analyses);
        assert!(csv.starts_with("k,COR,PLR,RAR_other,RAR_eye"));

        let xs = [0.0, 10.0, 20.0];
        let curves: Vec<ThresholdCurve> = RelayType::ALL
            .iter()
            .map(|&t| ThresholdCurve::compute(&r, t, None, &xs))
            .collect();
        let csv = threshold_csv(&curves);
        assert_eq!(csv.lines().count(), 1 + xs.len());
    }

    #[test]
    fn funnel_csv_rows() {
        let r = synthetic_results();
        let csv = funnel_csv(&r.colo_pool.funnel);
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("stage,kept"));
    }
}
