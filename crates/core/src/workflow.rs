//! §2.5 — campaign orchestration over the plan → execute → stitch
//! engine.
//!
//! Per round the paper's 4-step workflow maps onto the three layers:
//!
//! 1. **Plan** ([`crate::plan::plan_round`]): sample the round's RIPE
//!    Atlas endpoints (one eyeball AS per country, one probe per AS,
//!    §2.1), enumerate direct pairs, pre-draw the symmetry sample, and
//!    sample the round's relays per type (§2.2, §2.3) — pure data.
//! 2. **Execute** ([`crate::backend::execute`]): measure every direct
//!    pair — 6 single-packet pings 5 minutes apart, median of ≥3 valid
//!    replies — through a [`MeasurementBackend`], serially or across
//!    all cores.
//! 3. **Plan again** ([`crate::plan::plan_overlay`]): fold the direct
//!    medians through the §2.4 feasibility filter into the needed
//!    (endpoint, relay) overlay links; **execute** those too.
//! 4. **Stitch** ([`crate::stitch::ResultsBuilder`]): fold all window
//!    medians into cases — `RTT(e1, relay, e2) = median(e1, relay) +
//!    median(e2, relay)` — histories, symmetry samples and metadata.
//!
//! Scheduling is unobservable: each window's RNG derives from `(seed,
//! round, src, dst, kind)` and each round's plan from `(seed, round)`,
//! so serial, parallel and round-sharded runs of the same seed produce
//! bit-identical [`CampaignResults`] (asserted by the
//! `determinism_equivalence` integration suite).
//!
//! Three execution modes share that contract
//! ([`crate::backend::ExecMode`]):
//!
//! - **Serial** — one window after another, one round after another.
//! - **Parallel** — each round's stage fans across all cores, with a
//!   barrier at every stage boundary.
//! - **Sharded** — the [`crate::shard`] scheduler keeps
//!   `rounds_in_flight` rounds in flight at once, interleaving
//!   direct/reverse/overlay windows from different rounds on one
//!   worker pool so no core idles at another round's barrier.
//!
//! Before the round loop starts, the campaign hands
//! [`crate::plan::warmup_destinations`] — every AS its plan can route
//! toward, known up front because the endpoint and relay pools are
//! round-invariant — to `Router::precompute`, which builds all
//! destination tables data-parallel on the worker pool. The first
//! round's windows then pay only pair-expansion cost instead of
//! serializing behind cold routing-table construction.
//!
//! The campaign **streams**: [`Campaign::run_streaming`] invokes an
//! observer with a [`RoundSummary`] per round, in round order, as
//! rounds complete — a consumer (CLI progress, a future service API)
//! sees round *k* as soon as rounds `0..=k` are done instead of
//! waiting out the whole ~27-simulated-day campaign. [`Campaign::run`]
//! is the no-observer convenience wrapper.
//!
//! The output is a flat list of **cases** (one per measured RAE pair
//! per round) carrying the direct median and, per relay type, the best
//! relayed RTT and the full list of improving relays — enough to
//! regenerate every figure and table in §3.

use crate::backend::{execute, ExecMode, MeasurementBackend, NetsimBackend};
use crate::colo::{run_pipeline, ColoPipelineConfig, ColoPool};
use crate::eyeball::{select_eyeballs, EndpointPool};
use crate::measure::WindowConfig;
use crate::plan::{plan_overlay, plan_round_for, warmup_destinations};
use crate::relays::{RelayPools, RelayType};
use crate::shard::run_interleaved_ranges;
use crate::stitch::{ResultsBuilder, RoundReorder};
use crate::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shortcuts_geo::{CityId, CountryCode};
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{FaultPlan, HostId, PingHandle, Pinger};
use shortcuts_topology::routing::RoutingPolicy;
use shortcuts_topology::{Asn, ChurnSchedule, FacilityId, MemoryBudget};
use std::collections::HashMap;
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of measurement rounds (paper: 45).
    pub rounds: u32,
    /// Hours between round starts (paper: 12).
    pub round_interval_hours: f64,
    /// Ping window parameters (paper: 6 pings / 5 min / ≥3 valid).
    pub window: WindowConfig,
    /// APNIC coverage cutoff for eyeball selection (paper: 10 %).
    pub eyeball_cutoff_pct: f64,
    /// §2.2 pipeline parameters.
    pub colo: ColoPipelineConfig,
    /// Fraction of direct pairs also measured in reverse (symmetry
    /// check).
    pub symmetry_sample_prob: f64,
    /// Routing policy (valley-free; ablations use shortest-path).
    pub routing: RoutingPolicy,
    /// Faults injected for this campaign (outages, lossy ASes). Routed
    /// through the campaign's private [`PingHandle`], never the shared
    /// engine — campaigns of a sweep each see only their own plan.
    pub faults: FaultPlan,
    /// Topology churn: delta batches applied at round boundaries. The
    /// round loop splits into contiguous epochs at the batch rounds;
    /// each batch is applied to the backend's world *before* its
    /// segment's first round measures. Unlike faults this **mutates
    /// the engine** (the router's view advances permanently), so
    /// churning campaigns must run on a private engine, never a pooled
    /// one. An empty schedule is byte-identical to no schedule.
    pub churn: ChurnSchedule,
    /// Master seed for all per-round randomness.
    pub seed: u64,
    /// Task scheduling. Every mode yields bit-identical results for
    /// the same seed; `Parallel` uses every core within a round,
    /// `Sharded` additionally pipelines across rounds.
    pub exec: ExecMode,
    /// Byte budget for the engine stack this campaign builds when it
    /// runs solo ([`Campaign::run_streaming`]). Budgets bound cache
    /// residency via eviction and never change results — a budgeted
    /// run is byte-identical to an unbudgeted one. Ignored when the
    /// caller provides the engine ([`Campaign::run_streaming_on`]):
    /// whoever built the engine chose its budget.
    pub memory: MemoryBudget,
}

impl CampaignConfig {
    /// The paper's full campaign: 45 rounds over ~27 days.
    pub fn paper() -> Self {
        CampaignConfig {
            rounds: 45,
            round_interval_hours: 12.0,
            window: WindowConfig::default(),
            eyeball_cutoff_pct: 10.0,
            colo: ColoPipelineConfig::default(),
            symmetry_sample_prob: 0.1,
            routing: RoutingPolicy::ValleyFree,
            faults: FaultPlan::none(),
            churn: ChurnSchedule::none(),
            seed: 2017,
            exec: ExecMode::Parallel,
            memory: MemoryBudget::unbounded(),
        }
    }

    /// A fast configuration for tests: few rounds, small windows.
    pub fn small() -> Self {
        CampaignConfig {
            rounds: 3,
            ..Self::paper()
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-type outcome of one case.
#[derive(Debug, Clone, Default)]
pub struct TypeOutcome {
    /// Best (lowest-RTT) relayed path of this type, if any relay was
    /// feasible and measurable: (relay host, stitched RTT ms).
    pub best: Option<(HostId, f64)>,
    /// Every relay of this type that beat the direct path, with its
    /// improvement in ms.
    pub improving: Vec<(HostId, f32)>,
    /// Number of feasible relays of this type for this case.
    pub feasible: u32,
}

impl TypeOutcome {
    /// Improvement of the best relay vs. the direct path (ms, positive
    /// = relay faster), if a best relay exists.
    pub fn best_improvement(&self, direct_ms: f64) -> Option<f64> {
        self.best.map(|(_, rtt)| direct_ms - rtt)
    }

    /// Whether this type improved the case.
    pub fn improved(&self, direct_ms: f64) -> bool {
        self.best.is_some_and(|(_, rtt)| rtt < direct_ms)
    }
}

/// One measured RAE pair in one round.
#[derive(Debug, Clone)]
pub struct CaseRecord {
    /// Round index.
    pub round: u32,
    /// Source endpoint host.
    pub src: HostId,
    /// Destination endpoint host.
    pub dst: HostId,
    /// Source country.
    pub src_country: CountryCode,
    /// Destination country.
    pub dst_country: CountryCode,
    /// Whether the endpoints are on different continents.
    pub intercontinental: bool,
    /// Direct-path median RTT, ms.
    pub direct_ms: f64,
    /// Outcomes indexed by [`RelayType::index`].
    pub outcomes: [TypeOutcome; 4],
}

impl CaseRecord {
    /// Outcome for a relay type.
    pub fn outcome(&self, t: RelayType) -> &TypeOutcome {
        &self.outcomes[t.index()]
    }
}

/// Identity and location facts about a relay host, for analyses.
#[derive(Debug, Clone)]
pub struct RelayMeta {
    /// Relay type.
    pub rtype: RelayType,
    /// Owning AS.
    pub asn: Asn,
    /// City.
    pub city: CityId,
    /// Country.
    pub country: CountryCode,
    /// Facility (COR only).
    pub facility: Option<FacilityId>,
}

/// Everything a campaign produces.
#[derive(Debug)]
pub struct CampaignResults {
    /// All measured cases (one per valid RAE pair per round).
    pub cases: Vec<CaseRecord>,
    /// Per-pair history of direct medians across rounds (for the CV
    /// stability analysis). Keyed by ordered host pair.
    pub direct_history: HashMap<(HostId, HostId), Vec<f64>>,
    /// Per-link history of endpoint↔relay medians across rounds.
    pub link_history: HashMap<(HostId, HostId), Vec<f64>>,
    /// Forward/reverse direct medians for the symmetry analysis.
    pub symmetry_samples: Vec<(f64, f64)>,
    /// Metadata of every relay that appeared in any round.
    pub relay_meta: HashMap<HostId, RelayMeta>,
    /// §2.2 funnel of the COR pipeline run.
    pub colo_pool: ColoPool,
    /// Total pings sent.
    pub pings_sent: u64,
    /// Pairs whose direct window produced no valid median.
    pub unresponsive_pairs: u64,
    /// Average endpoints per round.
    pub avg_endpoints: f64,
    /// Average sampled relays per round, indexed by [`RelayType::index`].
    pub avg_relays: [f64; 4],
}

impl CampaignResults {
    /// Total number of cases.
    pub fn total_cases(&self) -> usize {
        self.cases.len()
    }
}

/// What the streaming API reports per completed round: the round's
/// shape (who was sampled, what was measured) and its headline §3
/// numbers, available long before the campaign finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSummary {
    /// Round index.
    pub round: u32,
    /// Endpoints sampled this round.
    pub endpoints: usize,
    /// Direct pairs planned.
    pub pairs: usize,
    /// Cases emitted (pairs whose direct window produced a median).
    pub cases: usize,
    /// Pairs whose direct window produced no valid median.
    pub unresponsive_pairs: u64,
    /// Relays sampled, indexed by [`RelayType::index`].
    pub relays: [usize; 4],
    /// Overlay links the feasibility filter asked for.
    pub links_planned: usize,
    /// Overlay links that produced a median.
    pub links_measured: usize,
    /// Forward/reverse symmetry samples recorded.
    pub symmetry_samples: usize,
    /// Cases improved by at least one relay, indexed by
    /// [`RelayType::index`].
    pub improved: [usize; 4],
}

/// The backend-agnostic one-time selection state of a campaign: the
/// §2.2 COR funnel, the §2.1 endpoint pool and the §2.3 relay pools —
/// everything `run_rounds` needs besides a backend.
///
/// Factored out so a solo campaign and every campaign of a
/// [`crate::sweep::Sweep`] run the **byte-identical** setup path: same
/// RNG stream, same pools, same funnel — which is what makes a sweep's
/// per-scenario results bit-identical to solo runs.
pub struct CampaignSetup<'w> {
    /// §2.2 funnel outcome (also the COR candidate pool).
    pub colo: ColoPool,
    /// §2.1 endpoint pool.
    pub endpoints: EndpointPool<'w>,
    /// §2.3 relay pools.
    pub relays: RelayPools,
}

impl<'w> CampaignSetup<'w> {
    /// Runs the campaign's one-time selection (§2.1, §2.2) against a
    /// pinger — a campaign's own [`PingHandle`], so the funnel's pings
    /// count toward that campaign and see its fault plan.
    pub fn prepare<P: Pinger>(world: &'w World, pinger: &P, cfg: &CampaignConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vantage = world
            .looking_glasses
            .lgs()
            .first()
            .expect("world has looking glasses")
            .host;
        let colo = run_pipeline(world, pinger, vantage, SimTime(0.0), &cfg.colo, &mut rng);
        let selection = select_eyeballs(world, cfg.eyeball_cutoff_pct);
        let endpoints = EndpointPool::build(world, &selection.verified);
        let relays = RelayPools::build(world, &colo, &selection.verified);
        CampaignSetup {
            colo,
            endpoints,
            relays,
        }
    }

    /// Every destination AS this campaign's plans can route toward
    /// (the router warmup set; a sweep warms the union across
    /// campaigns).
    pub fn warmup(&self) -> Vec<Asn> {
        warmup_destinations(&self.endpoints, &self.relays)
    }
}

/// The campaign runner.
pub struct Campaign<'w> {
    world: &'w World,
    cfg: CampaignConfig,
}

impl<'w> Campaign<'w> {
    /// Creates a campaign over a world.
    pub fn new(world: &'w World, cfg: CampaignConfig) -> Self {
        Campaign { world, cfg }
    }

    /// Runs the whole campaign on the netsim backend.
    pub fn run(&self) -> CampaignResults {
        self.run_streaming(|_| {})
    }

    /// Runs the whole campaign on the netsim backend, streaming a
    /// [`RoundSummary`] to `on_round` per completed round, **in round
    /// order**, as rounds finish. In sharded mode round `k`'s summary
    /// is emitted as soon as rounds `0..=k` are complete — consumers
    /// see results while later rounds are still measuring.
    pub fn run_streaming<F: FnMut(&RoundSummary)>(&self, on_round: F) -> CampaignResults {
        // The engine stack co-owns the world's shared pieces (Arc), so
        // the same construction serves one campaign here and many in
        // core::sweep.
        let engine = self
            .world
            .shared()
            .engine_budgeted(self.cfg.routing, self.cfg.memory);
        self.run_streaming_on(&engine, on_round)
    }

    /// [`Campaign::run_streaming`] against a **caller-provided shared
    /// engine** instead of a private one. This is how a long-lived
    /// session server reuses one warmed engine stack — pair cache and
    /// router tables — across many campaigns touching the same world:
    /// results are bit-identical either way, because everything the
    /// engine caches is a deterministic world fact, while faults and
    /// ping accounting stay on this campaign's private [`PingHandle`].
    ///
    /// # Panics
    ///
    /// If the engine's router policy differs from the campaign's
    /// configured routing policy (the cached tables would answer for
    /// the wrong policy), or the engine was built from a different
    /// world (its host registry could not resolve this campaign's
    /// planned hosts).
    pub fn run_streaming_on<F: FnMut(&RoundSummary)>(
        &self,
        engine: &Arc<shortcuts_netsim::PingEngine>,
        on_round: F,
    ) -> CampaignResults {
        let world = self.world;
        let cfg = &self.cfg;
        assert_eq!(
            engine.router().policy(),
            cfg.routing,
            "shared engine routes under a different policy than the campaign"
        );
        assert!(
            std::ptr::eq(engine.topology(), &*world.topo),
            "shared engine was built from a different world than the campaign"
        );
        let handle = PingHandle::with_faults(Arc::clone(engine), cfg.faults.clone());

        // --- One-time selection (§2.1, §2.2) -----------------------------
        let setup = CampaignSetup::prepare(world, &handle, cfg);

        // Warm every destination table the campaign can touch,
        // data-parallel, before round 0 — the first round's windows
        // then only pay pair-expansion cost, not serialized table
        // construction. Purely a scheduling change: tables are
        // identical however they are built, so results stay
        // bit-identical.
        engine.router().precompute(&setup.warmup());

        let backend = NetsimBackend::new(handle, cfg.window, cfg.seed);
        self.run_rounds(
            &backend,
            &setup.endpoints,
            &setup.relays,
            setup.colo,
            on_round,
        )
    }

    /// Runs the round loop against any backend, streaming summaries in
    /// round order. Selection pools and the COR funnel are passed in
    /// because they are backend-agnostic world facts, not measurements
    /// of this campaign.
    pub fn run_rounds<B: MeasurementBackend, F: FnMut(&RoundSummary)>(
        &self,
        backend: &B,
        endpoint_pool: &EndpointPool<'_>,
        relay_pools: &RelayPools,
        colo_pool: ColoPool,
        mut on_round: F,
    ) -> CampaignResults {
        let world = self.world;
        let cfg = &self.cfg;
        let mut builder = ResultsBuilder::new();

        // The round loop runs in contiguous segments between churn
        // batches; each batch mutates the backend's world before its
        // segment's first round measures. A churn-free schedule yields
        // one `(0, rounds, [])` segment — byte-identical to the plain
        // loop. Round plans and per-task RNG streams depend only on
        // (seed, round), never on churn, so a delta changes *measured
        // RTTs*, not which windows exist.
        match cfg.exec {
            ExecMode::Sharded { rounds_in_flight } => {
                // Round plans are pure functions of (seed, round), so
                // worker threads can plan rounds on demand.
                let planner = |round| plan_round_for(world, endpoint_pool, relay_pools, cfg, round);
                // Rounds complete out of order; the builder does not
                // care, but observers are promised round order, so
                // buffer summaries until their turn. The reorder
                // buffer spans segments (segments run in order).
                let mut reorder = RoundReorder::new();
                for (start, end, batch) in cfg.churn.segments(cfg.rounds) {
                    if !batch.is_empty() {
                        backend.apply_delta(batch);
                    }
                    run_interleaved_ranges(
                        &[backend],
                        &[(start, end)],
                        rounds_in_flight,
                        |_, round| planner(round),
                        |_, done| {
                            let round = done.plan.round;
                            let summary = {
                                let _span = shortcuts_telemetry::global().span_for(
                                    shortcuts_telemetry::Stage::Stitch,
                                    shortcuts_telemetry::NO_LABEL,
                                    round,
                                );
                                builder.absorb_round(
                                    &done.plan,
                                    &done.overlay,
                                    &done.direct,
                                    &done.reverse,
                                    &done.links,
                                )
                            };
                            reorder.push(summary, &mut on_round);
                        },
                    );
                }
            }
            mode => {
                for (start, end, batch) in cfg.churn.segments(cfg.rounds) {
                    if !batch.is_empty() {
                        backend.apply_delta(batch);
                    }
                    for round in start..end {
                        let tele = shortcuts_telemetry::global();
                        // Plan: endpoints, pairs, relays — pure data.
                        let plan = {
                            let _span = tele.span_for(
                                shortcuts_telemetry::Stage::Plan,
                                shortcuts_telemetry::NO_LABEL,
                                round,
                            );
                            plan_round_for(world, endpoint_pool, relay_pools, cfg, round)
                        };

                        // Execute: direct and reverse windows.
                        let direct = execute(backend, &plan.direct_tasks(), mode);
                        let reverse = execute(backend, &plan.reverse_tasks(&direct), mode);

                        // Plan the overlay stage from the direct
                        // medians; execute.
                        let overlay = plan_overlay(&plan, &direct);
                        let links = execute(backend, &overlay.link_tasks(&plan), mode);

                        // Stitch.
                        let summary = {
                            let _span = tele.span_for(
                                shortcuts_telemetry::Stage::Stitch,
                                shortcuts_telemetry::NO_LABEL,
                                round,
                            );
                            builder.absorb_round(&plan, &overlay, &direct, &reverse, &links)
                        };
                        on_round(&summary);
                    }
                }
            }
        }

        builder.finish(colo_pool, backend.pings_sent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn quick_results() -> (World, CampaignResults) {
        let world = World::build(&WorldConfig::small(), 21);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        let results = Campaign::new(&world, cfg).run();
        (world, results)
    }

    #[test]
    fn campaign_produces_cases() {
        let (_, r) = quick_results();
        assert!(!r.cases.is_empty());
        assert!(r.pings_sent > 0);
        assert!(r.avg_endpoints > 10.0);
        // Every case has a positive direct RTT.
        for c in &r.cases {
            assert!(c.direct_ms > 0.0);
            assert_ne!(c.src, c.dst);
        }
    }

    #[test]
    fn endpoints_are_in_different_countries() {
        let (_, r) = quick_results();
        for c in &r.cases {
            assert_ne!(c.src_country, c.dst_country);
        }
    }

    #[test]
    fn stitched_rtts_are_sums_of_positive_legs() {
        let (_, r) = quick_results();
        for c in &r.cases {
            for t in RelayType::ALL {
                if let Some((_, rtt)) = c.outcome(t).best {
                    assert!(rtt > 0.0);
                }
                for &(_, imp) in &c.outcome(t).improving {
                    assert!(imp > 0.0, "improvement must be positive");
                    assert!(f64::from(imp) < c.direct_ms);
                }
            }
        }
    }

    #[test]
    fn improving_relays_are_recorded_with_meta() {
        let (_, r) = quick_results();
        let mut seen_any = false;
        for c in &r.cases {
            for t in RelayType::ALL {
                for &(host, _) in &c.outcome(t).improving {
                    seen_any = true;
                    let meta = r.relay_meta.get(&host).expect("meta for improving relay");
                    assert_eq!(meta.rtype, t);
                }
            }
        }
        assert!(seen_any, "campaign should find some improving relays");
    }

    #[test]
    fn cor_improves_most_cases_even_in_small_world() {
        let (_, r) = quick_results();
        let total = r.total_cases() as f64;
        let cor_improved = r
            .cases
            .iter()
            .filter(|c| c.outcome(RelayType::Cor).improved(c.direct_ms))
            .count() as f64;
        // Loose bound for the small world; the full-scale check lives in
        // the benches and EXPERIMENTS.md.
        assert!(
            cor_improved / total > 0.3,
            "COR improved only {:.0}% of cases",
            100.0 * cor_improved / total
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let world = World::build(&WorldConfig::small(), 21);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 1;
        let r1 = Campaign::new(&world, cfg.clone()).run();
        let r2 = Campaign::new(&world, cfg).run();
        assert_eq!(r1.total_cases(), r2.total_cases());
        for (a, b) in r1.cases.iter().zip(r2.cases.iter()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert!((a.direct_ms - b.direct_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_reports_rounds_in_order_and_matches_results() {
        let world = World::build(&WorldConfig::small(), 21);
        for exec in [
            ExecMode::Serial,
            ExecMode::Parallel,
            ExecMode::Sharded {
                rounds_in_flight: 3,
            },
        ] {
            let mut cfg = CampaignConfig::small();
            cfg.rounds = 3;
            cfg.exec = exec;
            let mut summaries = Vec::new();
            let results = Campaign::new(&world, cfg).run_streaming(|s| summaries.push(s.clone()));
            // One summary per round, strictly in round order.
            assert_eq!(summaries.len(), 3, "{exec:?}");
            for (i, s) in summaries.iter().enumerate() {
                assert_eq!(s.round, i as u32, "{exec:?}");
                assert_eq!(s.cases + s.unresponsive_pairs as usize, s.pairs);
            }
            // Summaries add up to the campaign totals.
            let cases: usize = summaries.iter().map(|s| s.cases).sum();
            assert_eq!(cases, results.total_cases(), "{exec:?}");
            let unresponsive: u64 = summaries.iter().map(|s| s.unresponsive_pairs).sum();
            assert_eq!(unresponsive, results.unresponsive_pairs, "{exec:?}");
            let symmetry: usize = summaries.iter().map(|s| s.symmetry_samples).sum();
            assert_eq!(symmetry, results.symmetry_samples.len(), "{exec:?}");
            for t in RelayType::ALL {
                let improved: usize = summaries.iter().map(|s| s.improved[t.index()]).sum();
                let from_cases = results
                    .cases
                    .iter()
                    .filter(|c| c.outcome(t).improved(c.direct_ms))
                    .count();
                assert_eq!(improved, from_cases, "{exec:?}");
            }
        }
    }

    #[test]
    fn sharded_mode_produces_cases() {
        let world = World::build(&WorldConfig::small(), 21);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        cfg.exec = ExecMode::Sharded {
            rounds_in_flight: 2,
        };
        let r = Campaign::new(&world, cfg).run();
        assert!(!r.cases.is_empty());
        assert!(r.pings_sent > 0);
    }

    #[test]
    fn histories_are_populated() {
        let (_, r) = quick_results();
        assert!(!r.direct_history.is_empty());
        assert!(!r.link_history.is_empty());
        assert!(!r.symmetry_samples.is_empty());
        for ((a, b), v) in r.direct_history.iter().take(20) {
            assert!(a <= b, "history keys must be ordered");
            assert!(!v.is_empty());
        }
    }
}
