//! §2.5 — the measurement framework: 45 rounds, every 12 hours, each a
//! 4-step workflow.
//!
//! Per round:
//!
//! 1. Sample the round's RIPE Atlas endpoints (RAEs): one eyeball AS per
//!    country, one probe per AS (§2.1).
//! 2. Measure the direct RTT of every RAE pair: 6 single-packet pings 5
//!    minutes apart, median of ≥3 valid replies.
//! 3. Sample the round's relays per type (§2.2, §2.3) and keep, per RAE
//!    pair, only the **feasible** ones (§2.4, using the direct medians
//!    from step 2).
//! 4. Measure RTT on every needed (endpoint, relay) overlay link the
//!    same way, and stitch one-relay paths:
//!    `RTT(e1, relay, e2) = median(e1, relay) + median(e2, relay)`.
//!
//! A fraction of direct pairs is also measured in the reverse direction
//! to reproduce the paper's ping-direction symmetry check.
//!
//! The output is a flat list of **cases** (one per measured RAE pair per
//! round) carrying the direct median and, per relay type, the best
//! relayed RTT and the full list of improving relays — enough to
//! regenerate every figure and table in §3.

use crate::colo::{run_pipeline, ColoPipelineConfig, ColoPool};
use crate::eyeball::{select_eyeballs, EndpointPool};
use crate::feasibility::is_feasible;
use crate::measure::{measure_pair, WindowConfig};
use crate::relays::{RelayPools, RelayType, RoundRelays};
use crate::world::World;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use shortcuts_geo::{CityId, Continent, CountryCode};
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{HostId, PingEngine};
use shortcuts_topology::routing::{Router, RoutingPolicy};
use shortcuts_topology::{Asn, FacilityId};
use std::collections::HashMap;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of measurement rounds (paper: 45).
    pub rounds: u32,
    /// Hours between round starts (paper: 12).
    pub round_interval_hours: f64,
    /// Ping window parameters (paper: 6 pings / 5 min / ≥3 valid).
    pub window: WindowConfig,
    /// APNIC coverage cutoff for eyeball selection (paper: 10 %).
    pub eyeball_cutoff_pct: f64,
    /// §2.2 pipeline parameters.
    pub colo: ColoPipelineConfig,
    /// Fraction of direct pairs also measured in reverse (symmetry
    /// check).
    pub symmetry_sample_prob: f64,
    /// Routing policy (valley-free; ablations use shortest-path).
    pub routing: RoutingPolicy,
    /// Master seed for all per-round randomness.
    pub seed: u64,
}

impl CampaignConfig {
    /// The paper's full campaign: 45 rounds over ~27 days.
    pub fn paper() -> Self {
        CampaignConfig {
            rounds: 45,
            round_interval_hours: 12.0,
            window: WindowConfig::default(),
            eyeball_cutoff_pct: 10.0,
            colo: ColoPipelineConfig::default(),
            symmetry_sample_prob: 0.1,
            routing: RoutingPolicy::ValleyFree,
            seed: 2017,
        }
    }

    /// A fast configuration for tests: few rounds, small windows.
    pub fn small() -> Self {
        CampaignConfig {
            rounds: 3,
            ..Self::paper()
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-type outcome of one case.
#[derive(Debug, Clone, Default)]
pub struct TypeOutcome {
    /// Best (lowest-RTT) relayed path of this type, if any relay was
    /// feasible and measurable: (relay host, stitched RTT ms).
    pub best: Option<(HostId, f64)>,
    /// Every relay of this type that beat the direct path, with its
    /// improvement in ms.
    pub improving: Vec<(HostId, f32)>,
    /// Number of feasible relays of this type for this case.
    pub feasible: u32,
}

impl TypeOutcome {
    /// Improvement of the best relay vs. the direct path (ms, positive
    /// = relay faster), if a best relay exists.
    pub fn best_improvement(&self, direct_ms: f64) -> Option<f64> {
        self.best.map(|(_, rtt)| direct_ms - rtt)
    }

    /// Whether this type improved the case.
    pub fn improved(&self, direct_ms: f64) -> bool {
        self.best.is_some_and(|(_, rtt)| rtt < direct_ms)
    }
}

/// One measured RAE pair in one round.
#[derive(Debug, Clone)]
pub struct CaseRecord {
    /// Round index.
    pub round: u32,
    /// Source endpoint host.
    pub src: HostId,
    /// Destination endpoint host.
    pub dst: HostId,
    /// Source country.
    pub src_country: CountryCode,
    /// Destination country.
    pub dst_country: CountryCode,
    /// Whether the endpoints are on different continents.
    pub intercontinental: bool,
    /// Direct-path median RTT, ms.
    pub direct_ms: f64,
    /// Outcomes indexed by [`RelayType::index`].
    pub outcomes: [TypeOutcome; 4],
}

impl CaseRecord {
    /// Outcome for a relay type.
    pub fn outcome(&self, t: RelayType) -> &TypeOutcome {
        &self.outcomes[t.index()]
    }
}

/// Identity and location facts about a relay host, for analyses.
#[derive(Debug, Clone)]
pub struct RelayMeta {
    /// Relay type.
    pub rtype: RelayType,
    /// Owning AS.
    pub asn: Asn,
    /// City.
    pub city: CityId,
    /// Country.
    pub country: CountryCode,
    /// Facility (COR only).
    pub facility: Option<FacilityId>,
}

/// Everything a campaign produces.
#[derive(Debug)]
pub struct CampaignResults {
    /// All measured cases (one per valid RAE pair per round).
    pub cases: Vec<CaseRecord>,
    /// Per-pair history of direct medians across rounds (for the CV
    /// stability analysis). Keyed by ordered host pair.
    pub direct_history: HashMap<(HostId, HostId), Vec<f64>>,
    /// Per-link history of endpoint↔relay medians across rounds.
    pub link_history: HashMap<(HostId, HostId), Vec<f64>>,
    /// Forward/reverse direct medians for the symmetry analysis.
    pub symmetry_samples: Vec<(f64, f64)>,
    /// Metadata of every relay that appeared in any round.
    pub relay_meta: HashMap<HostId, RelayMeta>,
    /// §2.2 funnel of the COR pipeline run.
    pub colo_pool: ColoPool,
    /// Total pings sent.
    pub pings_sent: u64,
    /// Pairs whose direct window produced no valid median.
    pub unresponsive_pairs: u64,
    /// Average endpoints per round.
    pub avg_endpoints: f64,
    /// Average sampled relays per round, indexed by [`RelayType::index`].
    pub avg_relays: [f64; 4],
}

impl CampaignResults {
    /// Total number of cases.
    pub fn total_cases(&self) -> usize {
        self.cases.len()
    }
}

/// The campaign runner.
pub struct Campaign<'w> {
    world: &'w World,
    cfg: CampaignConfig,
}

impl<'w> Campaign<'w> {
    /// Creates a campaign over a world.
    pub fn new(world: &'w World, cfg: CampaignConfig) -> Self {
        Campaign { world, cfg }
    }

    /// Runs the whole campaign.
    pub fn run(&self) -> CampaignResults {
        let world = self.world;
        let cfg = &self.cfg;
        let router = Router::with_policy(&world.topo, cfg.routing);
        let engine = PingEngine::new(&world.topo, &router, &world.hosts, world.latency.clone());
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // --- One-time selection (§2.1, §2.2) -----------------------------
        let vantage = world
            .looking_glasses
            .lgs()
            .first()
            .expect("world has looking glasses")
            .host;
        let colo_pool = run_pipeline(world, &engine, vantage, SimTime(0.0), &cfg.colo, &mut rng);
        let selection = select_eyeballs(world, cfg.eyeball_cutoff_pct);
        let endpoint_pool = EndpointPool::build(world, &selection.verified);
        let relay_pools = RelayPools::build(world, &colo_pool, &selection.verified);

        let mut cases = Vec::new();
        let mut direct_history: HashMap<(HostId, HostId), Vec<f64>> = HashMap::new();
        let mut link_history: HashMap<(HostId, HostId), Vec<f64>> = HashMap::new();
        let mut symmetry_samples = Vec::new();
        let mut relay_meta: HashMap<HostId, RelayMeta> = HashMap::new();
        let mut unresponsive_pairs = 0u64;
        let mut endpoints_total = 0usize;
        let mut relays_total = [0usize; 4];

        for round in 0..cfg.rounds {
            let t0 = SimTime(f64::from(round) * cfg.round_interval_hours * 3600.0);
            let mut round_rng =
                StdRng::seed_from_u64(cfg.seed.wrapping_add(0x5EED).wrapping_add(round as u64));

            // Step 1: endpoints.
            let raes = endpoint_pool.sample_round(&mut round_rng);
            endpoints_total += raes.len();

            // Step 2: direct paths.
            let mut direct: HashMap<(usize, usize), f64> = HashMap::new();
            for i in 0..raes.len() {
                for j in (i + 1)..raes.len() {
                    let (a, b) = (raes[i].host, raes[j].host);
                    match measure_pair(&engine, a, b, t0, &cfg.window, &mut round_rng) {
                        Some(m) => {
                            direct.insert((i, j), m);
                            let key = if a <= b { (a, b) } else { (b, a) };
                            direct_history.entry(key).or_default().push(m);
                            if round_rng.gen_bool(cfg.symmetry_sample_prob) {
                                if let Some(rev) =
                                    measure_pair(&engine, b, a, t0, &cfg.window, &mut round_rng)
                                {
                                    symmetry_samples.push((m, rev));
                                }
                            }
                        }
                        None => unresponsive_pairs += 1,
                    }
                }
            }

            // Step 3: relays and feasibility.
            let round_relays: RoundRelays = relay_pools.sample_round(world, round, &mut round_rng);
            for t in RelayType::ALL {
                relays_total[t.index()] += round_relays.count(t);
            }
            for r in &round_relays.relays {
                relay_meta.entry(r.host).or_insert_with(|| RelayMeta {
                    rtype: r.rtype,
                    asn: r.asn,
                    city: r.city,
                    country: r.country,
                    facility: r.facility,
                });
            }

            // Which (endpoint index, relay index) links do we need?
            let relays = &round_relays.relays;
            let mut feasible: Vec<Vec<u32>> = vec![Vec::new(); direct.len()];
            let mut needed: HashMap<(usize, u32), ()> = HashMap::new();
            let pair_keys: Vec<(usize, usize)> = {
                let mut v: Vec<_> = direct.keys().copied().collect();
                v.sort_unstable();
                v
            };
            for (pair_idx, &(i, j)) in pair_keys.iter().enumerate() {
                let d = direct[&(i, j)];
                let (si, sj) = (
                    world.hosts.get(raes[i].host).location,
                    world.hosts.get(raes[j].host).location,
                );
                for (ri, relay) in relays.iter().enumerate() {
                    if is_feasible(&si, &sj, &relay.location, d) {
                        feasible[pair_idx].push(ri as u32);
                        needed.insert((i, ri as u32), ());
                        needed.insert((j, ri as u32), ());
                    }
                }
            }

            // Step 4: overlay links, then stitching.
            let mut link: HashMap<(usize, u32), Option<f64>> = HashMap::new();
            let mut needed_keys: Vec<(usize, u32)> = needed.into_keys().collect();
            needed_keys.sort_unstable();
            for (ei, ri) in needed_keys {
                let e_host = raes[ei].host;
                let r_host = relays[ri as usize].host;
                let m = measure_pair(&engine, e_host, r_host, t0, &cfg.window, &mut round_rng);
                if let Some(v) = m {
                    let key = if e_host <= r_host {
                        (e_host, r_host)
                    } else {
                        (r_host, e_host)
                    };
                    link_history.entry(key).or_default().push(v);
                }
                link.insert((ei, ri), m);
            }

            for (pair_idx, &(i, j)) in pair_keys.iter().enumerate() {
                let d = direct[&(i, j)];
                let mut outcomes: [TypeOutcome; 4] = Default::default();
                for &ri in &feasible[pair_idx] {
                    let relay = &relays[ri as usize];
                    let (Some(Some(l1)), Some(Some(l2))) =
                        (link.get(&(i, ri)), link.get(&(j, ri)))
                    else {
                        continue;
                    };
                    let stitched = l1 + l2;
                    let out = &mut outcomes[relay.rtype.index()];
                    out.feasible += 1;
                    if out.best.is_none_or(|(_, best)| stitched < best) {
                        out.best = Some((relay.host, stitched));
                    }
                    if stitched < d {
                        out.improving.push((relay.host, (d - stitched) as f32));
                    }
                }
                let src_city = world.hosts.get(raes[i].host).city;
                let dst_city = world.hosts.get(raes[j].host).city;
                cases.push(CaseRecord {
                    round,
                    src: raes[i].host,
                    dst: raes[j].host,
                    src_country: raes[i].country,
                    dst_country: raes[j].country,
                    intercontinental: continent_of(world, src_city)
                        != continent_of(world, dst_city),
                    direct_ms: d,
                    outcomes,
                });
            }
        }

        let rounds = cfg.rounds.max(1) as f64;
        CampaignResults {
            cases,
            direct_history,
            link_history,
            symmetry_samples,
            relay_meta,
            colo_pool,
            pings_sent: engine.stats().attempts,
            unresponsive_pairs,
            avg_endpoints: endpoints_total as f64 / rounds,
            avg_relays: [
                relays_total[0] as f64 / rounds,
                relays_total[1] as f64 / rounds,
                relays_total[2] as f64 / rounds,
                relays_total[3] as f64 / rounds,
            ],
        }
    }
}

fn continent_of(world: &World, city: CityId) -> Continent {
    world.topo.cities.get(city).continent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn quick_results() -> (World, CampaignResults) {
        let world = World::build(&WorldConfig::small(), 21);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        let results = Campaign::new(&world, cfg).run();
        (world, results)
    }

    #[test]
    fn campaign_produces_cases() {
        let (_, r) = quick_results();
        assert!(!r.cases.is_empty());
        assert!(r.pings_sent > 0);
        assert!(r.avg_endpoints > 10.0);
        // Every case has a positive direct RTT.
        for c in &r.cases {
            assert!(c.direct_ms > 0.0);
            assert_ne!(c.src, c.dst);
        }
    }

    #[test]
    fn endpoints_are_in_different_countries() {
        let (_, r) = quick_results();
        for c in &r.cases {
            assert_ne!(c.src_country, c.dst_country);
        }
    }

    #[test]
    fn stitched_rtts_are_sums_of_positive_legs() {
        let (_, r) = quick_results();
        for c in &r.cases {
            for t in RelayType::ALL {
                if let Some((_, rtt)) = c.outcome(t).best {
                    assert!(rtt > 0.0);
                }
                for &(_, imp) in &c.outcome(t).improving {
                    assert!(imp > 0.0, "improvement must be positive");
                    assert!(f64::from(imp) < c.direct_ms);
                }
            }
        }
    }

    #[test]
    fn improving_relays_are_recorded_with_meta() {
        let (_, r) = quick_results();
        let mut seen_any = false;
        for c in &r.cases {
            for t in RelayType::ALL {
                for &(host, _) in &c.outcome(t).improving {
                    seen_any = true;
                    let meta = r.relay_meta.get(&host).expect("meta for improving relay");
                    assert_eq!(meta.rtype, t);
                }
            }
        }
        assert!(seen_any, "campaign should find some improving relays");
    }

    #[test]
    fn cor_improves_most_cases_even_in_small_world() {
        let (_, r) = quick_results();
        let total = r.total_cases() as f64;
        let cor_improved = r
            .cases
            .iter()
            .filter(|c| c.outcome(RelayType::Cor).improved(c.direct_ms))
            .count() as f64;
        // Loose bound for the small world; the full-scale check lives in
        // the benches and EXPERIMENTS.md.
        assert!(
            cor_improved / total > 0.3,
            "COR improved only {:.0}% of cases",
            100.0 * cor_improved / total
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let world = World::build(&WorldConfig::small(), 21);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 1;
        let r1 = Campaign::new(&world, cfg.clone()).run();
        let r2 = Campaign::new(&world, cfg).run();
        assert_eq!(r1.total_cases(), r2.total_cases());
        for (a, b) in r1.cases.iter().zip(r2.cases.iter()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert!((a.direct_ms - b.direct_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn histories_are_populated() {
        let (_, r) = quick_results();
        assert!(!r.direct_history.is_empty());
        assert!(!r.link_history.is_empty());
        assert!(!r.symmetry_samples.is_empty());
        for ((a, b), v) in r.direct_history.iter().take(20) {
            assert!(a <= b, "history keys must be ordered");
            assert!(!v.is_empty());
        }
    }
}
