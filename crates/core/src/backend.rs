//! Execution layer of the measurement engine: backends and the
//! serial/parallel task executor.
//!
//! A [`MeasureTask`] names one §2.5 ping window — `(round, src, dst,
//! start, kind)` — and nothing else. Each task derives its own RNG from
//! `(campaign seed, round, src, dst, kind)` via a SplitMix64 chain, so
//! a task's outcome depends only on its identity, never on how many
//! tasks ran before it or on which thread. That order-independence is
//! what lets [`execute`] fan tasks across cores with results
//! bit-identical to a serial run.
//!
//! [`MeasurementBackend`] abstracts *how* a window is measured. The
//! in-repo implementation is [`NetsimBackend`] (the netsim ping
//! engine); recorded-trace or analytical backends can slot in without
//! touching planning or stitching.

use crate::measure::{measure_pair, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{HostId, PingHandle};

/// What a measurement window is for (part of the task's RNG identity:
/// a direct pair and an overlay link between the same two hosts get
/// independent noise, as two real windows would).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Direct RAE-pair window (§2.5 step 2).
    Direct,
    /// Reverse direction of a direct pair (symmetry check).
    Reverse,
    /// Endpoint↔relay overlay link (§2.5 step 4).
    Overlay,
}

/// One independently measurable ping window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureTask {
    /// Campaign round the window belongs to.
    pub round: u32,
    /// Pinging host.
    pub src: HostId,
    /// Pinged host.
    pub dst: HostId,
    /// Window start time.
    pub start: SimTime,
    /// Purpose of the window.
    pub kind: TaskKind,
}

impl MeasureTask {
    /// The task's RNG seed: a SplitMix64 chain over the campaign seed
    /// and the task identity. Uniqueness of the tuple ⇒ independence
    /// of the stream; identity of the tuple ⇒ reproducibility.
    pub fn rng_seed(&self, campaign_seed: u64) -> u64 {
        let kind = match self.kind {
            TaskKind::Direct => 0u64,
            TaskKind::Reverse => 1,
            TaskKind::Overlay => 2,
        };
        let mut h = splitmix64(campaign_seed ^ 0x434F_4C4F_5348_4354); // "COLOSHCT"
        for v in [
            u64::from(self.round),
            u64::from(self.src.0),
            u64::from(self.dst.0),
            kind,
        ] {
            h = splitmix64(h ^ v);
        }
        h
    }

    /// The derived per-task RNG.
    pub fn rng(&self, campaign_seed: u64) -> StdRng {
        StdRng::seed_from_u64(self.rng_seed(campaign_seed))
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of window measurements. `Sync` because the executor shares
/// one backend across worker threads.
pub trait MeasurementBackend: Sync {
    /// Measures one window: the median RTT in ms, or `None` when the
    /// window produced too few valid replies.
    fn measure(&self, task: &MeasureTask) -> Option<f64>;

    /// Total pings this backend has sent so far (diagnostics).
    fn pings_sent(&self) -> u64;

    /// Applies one churn batch to the world the backend measures on.
    /// Called between round segments, never concurrently with
    /// `measure`. The default is a no-op so trace/analytical backends
    /// that have no mutable world remain trivially correct.
    fn apply_delta(&self, _batch: &[shortcuts_topology::TopologyDelta]) {}
}

/// The netsim-backed implementation: each task runs one ping window
/// through the campaign's [`PingHandle`] with its own derived RNG.
///
/// The backend *owns* the handle — and through it co-owns the shared
/// engine — so it is self-contained and `'static`: the sweep scheduler
/// keeps one backend per campaign, all of them measuring on one
/// engine's pair cache, each counting its own pings and applying its
/// own fault plan.
pub struct NetsimBackend {
    handle: PingHandle,
    window: WindowConfig,
    campaign_seed: u64,
}

impl NetsimBackend {
    /// Wraps a campaign's engine handle as a backend.
    pub fn new(handle: PingHandle, window: WindowConfig, campaign_seed: u64) -> Self {
        NetsimBackend {
            handle,
            window,
            campaign_seed,
        }
    }

    /// The campaign's engine handle.
    pub fn handle(&self) -> &PingHandle {
        &self.handle
    }
}

impl MeasurementBackend for NetsimBackend {
    fn measure(&self, task: &MeasureTask) -> Option<f64> {
        let mut rng = task.rng(self.campaign_seed);
        measure_pair(
            &self.handle,
            task.src,
            task.dst,
            task.start,
            &self.window,
            &mut rng,
        )
    }

    fn pings_sent(&self) -> u64 {
        self.handle.pings_sent()
    }

    fn apply_delta(&self, batch: &[shortcuts_topology::TopologyDelta]) {
        self.handle.engine().apply_delta(batch);
    }
}

/// How the campaign schedules measurement windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One task after another on the calling thread.
    Serial,
    /// Data-parallel across all available cores, with a full barrier
    /// between a round's stages.
    Parallel,
    /// Round-sharded streaming pipeline: up to `rounds_in_flight`
    /// rounds are planned, measured and completed concurrently, with
    /// windows from different rounds interleaved on one worker pool so
    /// no core waits on another round's stage barrier (see
    /// [`crate::shard`]). All three modes produce bit-identical
    /// results for the same seed.
    Sharded {
        /// Maximum rounds planned-but-not-completed at once. Bounds
        /// memory (plans and partial results alive concurrently) and
        /// streaming latency; values around the worker count saturate
        /// typical machines.
        rounds_in_flight: usize,
    },
}

/// Runs every task and returns results in task order. All modes
/// produce bit-identical output — the per-task RNG derivation makes
/// scheduling unobservable. `Sharded` governs the *round loop* (see
/// [`crate::shard`]); over a flat task list it degrades to
/// `Parallel`.
pub fn execute<B: MeasurementBackend + ?Sized>(
    backend: &B,
    tasks: &[MeasureTask],
    mode: ExecMode,
) -> Vec<Option<f64>> {
    match mode {
        ExecMode::Serial => tasks.iter().map(|t| backend.measure(t)).collect(),
        ExecMode::Parallel | ExecMode::Sharded { .. } => {
            tasks.par_iter().map(|t| backend.measure(t)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A trivial trait implementation: RTT from the task identity's
    /// own RNG, loss for one src value. Exists to prove the trait is
    /// usable without netsim and to test the executor in isolation.
    struct SyntheticBackend {
        seed: u64,
        pings: AtomicU64,
    }

    impl MeasurementBackend for SyntheticBackend {
        fn measure(&self, task: &MeasureTask) -> Option<f64> {
            self.pings.fetch_add(1, Ordering::Relaxed);
            if task.src.0 == 13 {
                return None;
            }
            Some((task.rng_seed(self.seed) % 100_000) as f64 / 1000.0)
        }

        fn pings_sent(&self) -> u64 {
            self.pings.load(Ordering::Relaxed)
        }
    }

    fn tasks(n: u32) -> Vec<MeasureTask> {
        (0..n)
            .map(|i| MeasureTask {
                round: i / 10,
                src: HostId(i),
                dst: HostId(i + 1000),
                start: SimTime(f64::from(i)),
                kind: if i % 3 == 0 {
                    TaskKind::Direct
                } else if i % 3 == 1 {
                    TaskKind::Reverse
                } else {
                    TaskKind::Overlay
                },
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let backend = SyntheticBackend {
            seed: 7,
            pings: AtomicU64::new(0),
        };
        let ts = tasks(500);
        let serial = execute(&backend, &ts, ExecMode::Serial);
        let parallel = execute(&backend, &ts, ExecMode::Parallel);
        assert_eq!(serial.len(), 500);
        for (a, b) in serial.iter().zip(&parallel) {
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (None, None) => {}
                _ => panic!("serial {a:?} != parallel {b:?}"),
            }
        }
        assert_eq!(backend.pings_sent(), 1000);
    }

    #[test]
    fn task_seeds_are_distinct_across_identity() {
        let t = tasks(1)[0];
        let mut variants = vec![t];
        variants.push(MeasureTask {
            round: t.round + 1,
            ..t
        });
        variants.push(MeasureTask {
            src: HostId(t.src.0 + 1),
            ..t
        });
        variants.push(MeasureTask {
            dst: HostId(t.dst.0 + 1),
            ..t
        });
        variants.push(MeasureTask {
            kind: TaskKind::Overlay,
            ..t
        });
        let seeds: std::collections::HashSet<u64> =
            variants.iter().map(|v| v.rng_seed(99)).collect();
        assert_eq!(seeds.len(), variants.len(), "seed collision");
        // Campaign seed matters too.
        assert_ne!(t.rng_seed(1), t.rng_seed(2));
    }

    #[test]
    fn swapped_direction_gets_its_own_stream() {
        let t = tasks(1)[0];
        let rev = MeasureTask {
            src: t.dst,
            dst: t.src,
            ..t
        };
        assert_ne!(t.rng_seed(5), rev.rng_seed(5));
    }

    #[test]
    fn empty_task_list_is_fine() {
        let backend = SyntheticBackend {
            seed: 1,
            pings: AtomicU64::new(0),
        };
        assert!(execute(&backend, &[], ExecMode::Parallel).is_empty());
    }
}
