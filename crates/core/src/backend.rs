//! Execution layer of the measurement engine: backends and the
//! serial/parallel task executor.
//!
//! A [`MeasureTask`] names one §2.5 ping window — `(round, src, dst,
//! start, kind)` — and nothing else. Each task derives its own RNG from
//! `(campaign seed, round, src, dst, kind)` via a SplitMix64 chain, so
//! a task's outcome depends only on its identity, never on how many
//! tasks ran before it or on which thread. That order-independence is
//! what lets [`execute`] fan tasks across cores with results
//! bit-identical to a serial run.
//!
//! [`MeasurementBackend`] abstracts *how* a window is measured. The
//! in-repo implementation is [`NetsimBackend`] (the netsim ping
//! engine); recorded-trace or analytical backends can slot in without
//! touching planning or stitching.

use crate::measure::{measure_pair, window_median, with_reply_scratch, WindowConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{HostId, PingHandle, SampleTally};
use shortcuts_telemetry as telemetry;
use shortcuts_telemetry::Stage;
use std::sync::OnceLock;

/// Windows per worker chunk in the batched kernel. Large enough to
/// amortize scheduling and the per-chunk stats flush down to noise,
/// small enough that a stage of a few thousand windows still splits
/// across every core.
const KERNEL_CHUNK: usize = 64;

/// What a measurement window is for (part of the task's RNG identity:
/// a direct pair and an overlay link between the same two hosts get
/// independent noise, as two real windows would).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Direct RAE-pair window (§2.5 step 2).
    Direct,
    /// Reverse direction of a direct pair (symmetry check).
    Reverse,
    /// Endpoint↔relay overlay link (§2.5 step 4).
    Overlay,
}

/// One independently measurable ping window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureTask {
    /// Campaign round the window belongs to.
    pub round: u32,
    /// Pinging host.
    pub src: HostId,
    /// Pinged host.
    pub dst: HostId,
    /// Window start time.
    pub start: SimTime,
    /// Purpose of the window.
    pub kind: TaskKind,
}

impl MeasureTask {
    /// The task's RNG seed: a SplitMix64 chain over the campaign seed
    /// and the task identity. Uniqueness of the tuple ⇒ independence
    /// of the stream; identity of the tuple ⇒ reproducibility.
    pub fn rng_seed(&self, campaign_seed: u64) -> u64 {
        let kind = match self.kind {
            TaskKind::Direct => 0u64,
            TaskKind::Reverse => 1,
            TaskKind::Overlay => 2,
        };
        let mut h = splitmix64(campaign_seed ^ 0x434F_4C4F_5348_4354); // "COLOSHCT"
        for v in [
            u64::from(self.round),
            u64::from(self.src.0),
            u64::from(self.dst.0),
            kind,
        ] {
            h = splitmix64(h ^ v);
        }
        h
    }

    /// The derived per-task RNG.
    pub fn rng(&self, campaign_seed: u64) -> StdRng {
        StdRng::seed_from_u64(self.rng_seed(campaign_seed))
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of window measurements. `Sync` because the executor shares
/// one backend across worker threads.
pub trait MeasurementBackend: Sync {
    /// Measures one window: the median RTT in ms, or `None` when the
    /// window produced too few valid replies.
    fn measure(&self, task: &MeasureTask) -> Option<f64>;

    /// Total pings this backend has sent so far (diagnostics).
    fn pings_sent(&self) -> u64;

    /// Applies one churn batch to the world the backend measures on.
    /// Called between round segments, never concurrently with
    /// `measure`. The default is a no-op so trace/analytical backends
    /// that have no mutable world remain trivially correct.
    fn apply_delta(&self, _batch: &[shortcuts_topology::TopologyDelta]) {}

    /// Hands the backend a whole stage's task list before its windows
    /// are measured one by one, so shared state can be resolved in
    /// bulk (the netsim backend batch-resolves the stage's pair set —
    /// each cache shard locked once, misses expanded data-parallel).
    /// A pure performance hook: results never depend on whether it ran,
    /// and the default is a no-op.
    fn prepare(&self, _tasks: &[MeasureTask]) {}

    /// Measures a whole task list, returning results in task order;
    /// `parallel` picks the rayon pool over the calling thread. The
    /// default prepares once and maps [`MeasurementBackend::measure`];
    /// backends with a batched kernel override this to keep the whole
    /// stage in flat passes. Any override must stay bit-identical to
    /// the default — per-task RNG derivation makes that checkable.
    fn measure_batch(&self, tasks: &[MeasureTask], parallel: bool) -> Vec<Option<f64>> {
        self.prepare(tasks);
        if parallel {
            tasks.par_iter().map(|t| self.measure(t)).collect()
        } else {
            tasks.iter().map(|t| self.measure(t)).collect()
        }
    }
}

/// True when `COLO_SCALAR_MEASURE` is set (non-empty, not `"0"`):
/// every [`NetsimBackend`] then measures through the scalar per-ping
/// path instead of the batched kernel. The equivalence suites run once
/// under this flag in CI — the batched kernel's output must be
/// byte-identical either way. Read once; the process-global env var is
/// not meant to be toggled at runtime (tests use
/// [`NetsimBackend::with_scalar_oracle`] instead).
fn scalar_measure_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("COLO_SCALAR_MEASURE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// The netsim-backed implementation: each task runs one ping window
/// through the campaign's [`PingHandle`] with its own derived RNG.
///
/// The backend *owns* the handle — and through it co-owns the shared
/// engine — so it is self-contained and `'static`: the sweep scheduler
/// keeps one backend per campaign, all of them measuring on one
/// engine's pair cache, each counting its own pings and applying its
/// own fault plan.
pub struct NetsimBackend {
    handle: PingHandle,
    window: WindowConfig,
    campaign_seed: u64,
    /// Measure through the scalar per-ping path instead of the batched
    /// kernel. The scalar path is the equivalence *oracle*: slower,
    /// but definitionally correct — the batched default must match it
    /// byte for byte.
    scalar: bool,
}

impl NetsimBackend {
    /// Wraps a campaign's engine handle as a backend. Measures through
    /// the batched kernel unless `COLO_SCALAR_MEASURE` forces the
    /// scalar oracle process-wide.
    pub fn new(handle: PingHandle, window: WindowConfig, campaign_seed: u64) -> Self {
        NetsimBackend {
            handle,
            window,
            campaign_seed,
            scalar: scalar_measure_forced(),
        }
    }

    /// Forces (or un-forces) the scalar per-ping oracle for this
    /// backend, regardless of the environment — how equivalence tests
    /// pit the two paths against each other inside one process.
    pub fn with_scalar_oracle(mut self, scalar: bool) -> Self {
        self.scalar = scalar;
        self
    }

    /// The campaign's engine handle.
    pub fn handle(&self) -> &PingHandle {
        &self.handle
    }
}

impl MeasurementBackend for NetsimBackend {
    fn measure(&self, task: &MeasureTask) -> Option<f64> {
        let mut rng = task.rng(self.campaign_seed);
        if self.scalar {
            return measure_pair(
                &self.handle,
                task.src,
                task.dst,
                task.start,
                &self.window,
                &mut rng,
            );
        }
        // Batched single-task path: one cache lookup per window (not
        // per ping) and the thread's scratch buffer for replies. The
        // sharded scheduler lands here after `prepare` has already
        // bulk-resolved the stage's pairs, so the lookup is a shard
        // read-lock hit.
        with_reply_scratch(|replies| {
            self.handle.sample_window(
                task.src,
                task.dst,
                task.start,
                self.window.pings,
                self.window.interval_secs,
                &mut rng,
                replies,
            );
            window_median(replies, self.window.min_valid)
        })
    }

    fn pings_sent(&self) -> u64 {
        self.handle.pings_sent()
    }

    fn apply_delta(&self, batch: &[shortcuts_topology::TopologyDelta]) {
        self.handle.engine().apply_delta(batch);
    }

    fn prepare(&self, tasks: &[MeasureTask]) {
        if self.scalar || tasks.len() < 2 {
            return;
        }
        let _span =
            telemetry::global().span_for(Stage::ResolvePairs, telemetry::NO_LABEL, tasks[0].round);
        let pairs: Vec<(HostId, HostId)> = tasks.iter().map(|t| (t.src, t.dst)).collect();
        let _ = self.handle.resolve_pairs(&pairs);
    }

    fn measure_batch(&self, tasks: &[MeasureTask], parallel: bool) -> Vec<Option<f64>> {
        if self.scalar || tasks.len() < 2 {
            // Oracle mode, or too small for batching to buy anything.
            return if parallel {
                tasks.par_iter().map(|t| self.measure(t)).collect()
            } else {
                tasks.iter().map(|t| self.measure(t)).collect()
            };
        }
        // The batched kernel: resolve the stage's whole pair set in
        // flat passes, then sample every window from the block's SoA
        // rows. `resolve_pairs` snapshots the current epoch, which is
        // exactly stage semantics — churn applies between stages.
        //
        // Windows go to workers in chunks, not one by one: a window is
        // sub-microsecond, so per-window scheduling and per-window
        // counter updates are a measurable fraction of the kernel. A
        // chunk claims one scheduling slot, reuses one reply buffer,
        // and flushes one stats tally.
        let round = tasks[0].round;
        let pairs: Vec<(HostId, HostId)> = tasks.iter().map(|t| (t.src, t.dst)).collect();
        let (block, slots) = {
            let _span =
                telemetry::global().span_for(Stage::ResolvePairs, telemetry::NO_LABEL, round);
            self.handle.resolve_pairs_indexed(&pairs)
        };
        let _sample_span = telemetry::global().span_for(Stage::Sample, telemetry::NO_LABEL, round);
        let run_chunk = |offset: usize, chunk: &[MeasureTask]| -> Vec<Option<f64>> {
            let mut tally = SampleTally::default();
            let out = with_reply_scratch(|replies| {
                chunk
                    .iter()
                    .zip(&slots[offset..offset + chunk.len()])
                    .map(|(task, &slot)| {
                        let mut rng = task.rng(self.campaign_seed);
                        self.handle.sample_window_block_tally(
                            &block,
                            slot,
                            task.start,
                            self.window.pings,
                            self.window.interval_secs,
                            &mut rng,
                            replies,
                            &mut tally,
                        );
                        window_median(replies, self.window.min_valid)
                    })
                    .collect::<Vec<_>>()
            });
            self.handle.flush_tally(&tally);
            out
        };
        let chunks: Vec<(usize, &[MeasureTask])> = tasks
            .chunks(KERNEL_CHUNK)
            .enumerate()
            .map(|(ci, c)| (ci * KERNEL_CHUNK, c))
            .collect();
        let nested: Vec<Vec<Option<f64>>> = if parallel {
            chunks
                .par_iter()
                .map(|&(off, c)| run_chunk(off, c))
                .collect()
        } else {
            chunks.iter().map(|&(off, c)| run_chunk(off, c)).collect()
        };
        nested.into_iter().flatten().collect()
    }
}

/// How the campaign schedules measurement windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One task after another on the calling thread. (A backend's
    /// batched pair *resolution* may still use the rayon pool — pin
    /// `RAYON_NUM_THREADS=1` for a strictly single-threaded run;
    /// results are bit-identical either way.)
    Serial,
    /// Data-parallel across all available cores, with a full barrier
    /// between a round's stages.
    Parallel,
    /// Round-sharded streaming pipeline: up to `rounds_in_flight`
    /// rounds are planned, measured and completed concurrently, with
    /// windows from different rounds interleaved on one worker pool so
    /// no core waits on another round's stage barrier (see
    /// [`crate::shard`]). All three modes produce bit-identical
    /// results for the same seed.
    Sharded {
        /// Maximum rounds planned-but-not-completed at once. Bounds
        /// memory (plans and partial results alive concurrently) and
        /// streaming latency; values around the worker count saturate
        /// typical machines.
        rounds_in_flight: usize,
    },
}

/// Runs every task and returns results in task order. All modes
/// produce bit-identical output — the per-task RNG derivation makes
/// scheduling unobservable. `Sharded` governs the *round loop* (see
/// [`crate::shard`]); over a flat task list it degrades to
/// `Parallel`. Each stage goes through the backend's
/// [`MeasurementBackend::measure_batch`], so batched kernels see the
/// whole task list at once.
pub fn execute<B: MeasurementBackend + ?Sized>(
    backend: &B,
    tasks: &[MeasureTask],
    mode: ExecMode,
) -> Vec<Option<f64>> {
    match mode {
        ExecMode::Serial => backend.measure_batch(tasks, false),
        ExecMode::Parallel | ExecMode::Sharded { .. } => backend.measure_batch(tasks, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A trivial trait implementation: RTT from the task identity's
    /// own RNG, loss for one src value. Exists to prove the trait is
    /// usable without netsim and to test the executor in isolation.
    struct SyntheticBackend {
        seed: u64,
        pings: AtomicU64,
    }

    impl MeasurementBackend for SyntheticBackend {
        fn measure(&self, task: &MeasureTask) -> Option<f64> {
            self.pings.fetch_add(1, Ordering::Relaxed);
            if task.src.0 == 13 {
                return None;
            }
            Some((task.rng_seed(self.seed) % 100_000) as f64 / 1000.0)
        }

        fn pings_sent(&self) -> u64 {
            self.pings.load(Ordering::Relaxed)
        }
    }

    fn tasks(n: u32) -> Vec<MeasureTask> {
        (0..n)
            .map(|i| MeasureTask {
                round: i / 10,
                src: HostId(i),
                dst: HostId(i + 1000),
                start: SimTime(f64::from(i)),
                kind: if i % 3 == 0 {
                    TaskKind::Direct
                } else if i % 3 == 1 {
                    TaskKind::Reverse
                } else {
                    TaskKind::Overlay
                },
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let backend = SyntheticBackend {
            seed: 7,
            pings: AtomicU64::new(0),
        };
        let ts = tasks(500);
        let serial = execute(&backend, &ts, ExecMode::Serial);
        let parallel = execute(&backend, &ts, ExecMode::Parallel);
        assert_eq!(serial.len(), 500);
        for (a, b) in serial.iter().zip(&parallel) {
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (None, None) => {}
                _ => panic!("serial {a:?} != parallel {b:?}"),
            }
        }
        assert_eq!(backend.pings_sent(), 1000);
    }

    #[test]
    fn task_seeds_are_distinct_across_identity() {
        let t = tasks(1)[0];
        let mut variants = vec![t];
        variants.push(MeasureTask {
            round: t.round + 1,
            ..t
        });
        variants.push(MeasureTask {
            src: HostId(t.src.0 + 1),
            ..t
        });
        variants.push(MeasureTask {
            dst: HostId(t.dst.0 + 1),
            ..t
        });
        variants.push(MeasureTask {
            kind: TaskKind::Overlay,
            ..t
        });
        let seeds: std::collections::HashSet<u64> =
            variants.iter().map(|v| v.rng_seed(99)).collect();
        assert_eq!(seeds.len(), variants.len(), "seed collision");
        // Campaign seed matters too.
        assert_ne!(t.rng_seed(1), t.rng_seed(2));
    }

    #[test]
    fn swapped_direction_gets_its_own_stream() {
        let t = tasks(1)[0];
        let rev = MeasureTask {
            src: t.dst,
            dst: t.src,
            ..t
        };
        assert_ne!(t.rng_seed(5), rev.rng_seed(5));
    }

    #[test]
    fn default_measure_batch_prepares_once_and_matches_execute() {
        struct PrepCounting {
            inner: SyntheticBackend,
            preps: AtomicU64,
        }
        impl MeasurementBackend for PrepCounting {
            fn measure(&self, task: &MeasureTask) -> Option<f64> {
                self.inner.measure(task)
            }
            fn pings_sent(&self) -> u64 {
                self.inner.pings_sent()
            }
            fn prepare(&self, tasks: &[MeasureTask]) {
                assert_eq!(tasks.len(), 100, "prepare must see the whole stage");
                self.preps.fetch_add(1, Ordering::Relaxed);
            }
        }
        let backend = PrepCounting {
            inner: SyntheticBackend {
                seed: 3,
                pings: AtomicU64::new(0),
            },
            preps: AtomicU64::new(0),
        };
        let ts = tasks(100);
        let serial = execute(&backend, &ts, ExecMode::Serial);
        assert_eq!(backend.preps.load(Ordering::Relaxed), 1);
        let parallel = execute(&backend, &ts, ExecMode::Parallel);
        assert_eq!(backend.preps.load(Ordering::Relaxed), 2);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let backend = SyntheticBackend {
            seed: 1,
            pings: AtomicU64::new(0),
        };
        assert!(execute(&backend, &[], ExecMode::Parallel).is_empty());
    }
}
