//! The assembled simulation world.
//!
//! A [`World`] owns everything a campaign measures against: the
//! topology, the host registry, the three measurement platforms and the
//! four datasets — all generated deterministically from one seed. It
//! deliberately does **not** own a router or ping engine (those borrow
//! the world and are created per campaign), so the world itself stays
//! freely shareable across campaigns, ablations and benchmarks.

use shortcuts_atlas::looking_glass::{LookingGlassConfig, LookingGlassNet};
use shortcuts_atlas::planetlab::{PlanetLab, PlanetLabConfig};
use shortcuts_atlas::ripe::{RipeAtlas, RipeAtlasConfig};
use shortcuts_datasets::facility_dataset::{FacilityDataset, FacilityDatasetConfig};
use shortcuts_datasets::{ApnicDataset, PeeringDb, Prefix2As};
use shortcuts_netsim::{HostRegistry, LatencyModel};
use shortcuts_topology::{Topology, TopologyConfig};

/// Configuration of the full world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Topology generator configuration.
    pub topology: TopologyConfig,
    /// RIPE Atlas population configuration.
    pub ripe: RipeAtlasConfig,
    /// PlanetLab deployment configuration.
    pub planetlab: PlanetLabConfig,
    /// Looking Glass placement configuration.
    pub looking_glass: LookingGlassConfig,
    /// Facility (Giotsas) dataset configuration.
    pub facility_dataset: FacilityDatasetConfig,
    /// Fraction of prefixes with MOAS noise in the prefix2as table.
    pub moas_fraction: f64,
    /// Latency model used by campaigns over this world.
    pub latency: LatencyModel,
}

impl WorldConfig {
    /// Paper-scale world (default).
    pub fn paper_scale() -> Self {
        WorldConfig {
            topology: TopologyConfig::paper_scale(),
            ripe: RipeAtlasConfig::default(),
            planetlab: PlanetLabConfig::default(),
            looking_glass: LookingGlassConfig::default(),
            facility_dataset: FacilityDatasetConfig::default(),
            moas_fraction: 0.01,
            latency: LatencyModel::default(),
        }
    }

    /// Small, fast world for tests.
    pub fn small() -> Self {
        WorldConfig {
            topology: TopologyConfig::small(),
            facility_dataset: FacilityDatasetConfig::small(),
            ..Self::paper_scale()
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// The fully assembled simulation world.
#[derive(Debug)]
pub struct World {
    /// The AS-level topology.
    pub topo: Topology,
    /// All registered hosts (probes, nodes, colo interfaces, LGs).
    pub hosts: HostRegistry,
    /// RIPE Atlas platform.
    pub ripe: RipeAtlas,
    /// PlanetLab deployment.
    pub planetlab: PlanetLab,
    /// Looking Glass population.
    pub looking_glasses: LookingGlassNet,
    /// APNIC user-coverage table.
    pub apnic: ApnicDataset,
    /// Current PeeringDB snapshot.
    pub peeringdb: PeeringDb,
    /// CAIDA-style prefix→AS table.
    pub prefix2as: Prefix2As,
    /// The stale 2015 facility dataset.
    pub facility_dataset: FacilityDataset,
    /// Latency model campaigns should use.
    pub latency: LatencyModel,
    /// The seed the world was built from.
    pub seed: u64,
}

impl World {
    /// Builds the world from a config and master seed. Sub-seeds are
    /// derived per component so the world is fully reproducible.
    pub fn build(cfg: &WorldConfig, seed: u64) -> Self {
        let sub = |k: u64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k);
        let topo = Topology::generate(&cfg.topology, sub(1));
        let mut hosts = HostRegistry::new();
        let ripe = RipeAtlas::generate(&topo, &mut hosts, &cfg.ripe, sub(2));
        let planetlab = PlanetLab::generate(&topo, &mut hosts, &cfg.planetlab, sub(3));
        let looking_glasses =
            LookingGlassNet::generate(&topo, &mut hosts, &cfg.looking_glass, sub(4));
        let facility_dataset =
            FacilityDataset::generate(&topo, &mut hosts, &cfg.facility_dataset, sub(5));
        let apnic = ApnicDataset::from_topology(&topo, sub(6));
        let peeringdb = PeeringDb::snapshot(&topo);
        let prefix2as = Prefix2As::from_topology(&topo, cfg.moas_fraction, sub(7));
        World {
            topo,
            hosts,
            ripe,
            planetlab,
            looking_glasses,
            apnic,
            peeringdb,
            prefix2as,
            facility_dataset,
            latency: cfg.latency.clone(),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_builds_consistently() {
        let w1 = World::build(&WorldConfig::small(), 5);
        let w2 = World::build(&WorldConfig::small(), 5);
        assert_eq!(w1.hosts.len(), w2.hosts.len());
        assert_eq!(w1.ripe.probes().len(), w2.ripe.probes().len());
        assert_eq!(w1.facility_dataset.len(), w2.facility_dataset.len());
        assert!(!w1.hosts.is_empty());
    }

    #[test]
    fn world_components_share_the_topology() {
        let w = World::build(&WorldConfig::small(), 6);
        // Every probe host resolves and belongs to a real AS.
        for p in w.ripe.probes().iter().take(50) {
            let h = w.hosts.get(p.host);
            assert!(w.topo.as_info(h.asn).is_some());
        }
        // PeeringDB facility count matches the topology.
        assert_eq!(w.peeringdb.facilities().len(), w.topo.facilities().len());
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let w1 = World::build(&WorldConfig::small(), 1);
        let w2 = World::build(&WorldConfig::small(), 2);
        assert_ne!(w1.hosts.len(), w2.hosts.len());
    }
}
