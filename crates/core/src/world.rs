//! The assembled simulation world.
//!
//! A [`World`] owns everything a campaign measures against: the
//! topology, the host registry, the three measurement platforms and the
//! four datasets — all generated deterministically from one seed. It
//! deliberately does **not** own a router or ping engine (those are
//! created per campaign or per sweep), so the world itself stays
//! freely shareable across campaigns, ablations and benchmarks.
//!
//! The pieces every measurement stack needs — topology, host registry,
//! latency model — live behind `Arc`s, surfaced as a [`SharedWorld`]
//! by [`World::shared`]. A campaign's router and ping engine co-own
//! them, so engines outlive no-one and can be handed to worker
//! threads, other campaigns of a sweep, or a future service front end
//! without borrowing the `World`.

use shortcuts_atlas::looking_glass::{LookingGlassConfig, LookingGlassNet};
use shortcuts_atlas::planetlab::{PlanetLab, PlanetLabConfig};
use shortcuts_atlas::ripe::{RipeAtlas, RipeAtlasConfig};
use shortcuts_datasets::facility_dataset::{FacilityDataset, FacilityDatasetConfig};
use shortcuts_datasets::{ApnicDataset, PeeringDb, Prefix2As};
use shortcuts_netsim::{HostRegistry, LatencyModel, PingEngine};
use shortcuts_topology::routing::{Router, RoutingPolicy};
use shortcuts_topology::{MemoryBudget, Topology, TopologyConfig};
use std::sync::Arc;

/// Configuration of the full world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Topology generator configuration.
    pub topology: TopologyConfig,
    /// RIPE Atlas population configuration.
    pub ripe: RipeAtlasConfig,
    /// PlanetLab deployment configuration.
    pub planetlab: PlanetLabConfig,
    /// Looking Glass placement configuration.
    pub looking_glass: LookingGlassConfig,
    /// Facility (Giotsas) dataset configuration.
    pub facility_dataset: FacilityDatasetConfig,
    /// Fraction of prefixes with MOAS noise in the prefix2as table.
    pub moas_fraction: f64,
    /// Latency model used by campaigns over this world.
    pub latency: LatencyModel,
}

impl WorldConfig {
    /// Paper-scale world (default).
    pub fn paper_scale() -> Self {
        WorldConfig {
            topology: TopologyConfig::paper_scale(),
            ripe: RipeAtlasConfig::default(),
            planetlab: PlanetLabConfig::default(),
            looking_glass: LookingGlassConfig::default(),
            facility_dataset: FacilityDatasetConfig::default(),
            moas_fraction: 0.01,
            latency: LatencyModel::default(),
        }
    }

    /// Paper world grown `factor`× — the topology scales per
    /// [`TopologyConfig::scaled`] (linear AS population, bounded
    /// per-AS degree) while the measurement overlays (Atlas probes,
    /// PlanetLab, looking glasses) keep their paper-scale footprints.
    /// This is the "internet-scale world under a fixed budget" knob
    /// the `memory_budget` bench turns.
    pub fn scaled(factor: f64) -> Self {
        WorldConfig {
            topology: TopologyConfig::scaled(factor),
            ..Self::paper_scale()
        }
    }

    /// Small, fast world for tests.
    pub fn small() -> Self {
        WorldConfig {
            topology: TopologyConfig::small(),
            facility_dataset: FacilityDatasetConfig::small(),
            ..Self::paper_scale()
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// The fully assembled simulation world.
#[derive(Debug)]
pub struct World {
    /// The AS-level topology, co-ownable by routers and engines.
    pub topo: Arc<Topology>,
    /// All registered hosts (probes, nodes, colo interfaces, LGs),
    /// co-ownable by engines.
    pub hosts: Arc<HostRegistry>,
    /// RIPE Atlas platform.
    pub ripe: RipeAtlas,
    /// PlanetLab deployment.
    pub planetlab: PlanetLab,
    /// Looking Glass population.
    pub looking_glasses: LookingGlassNet,
    /// APNIC user-coverage table.
    pub apnic: ApnicDataset,
    /// Current PeeringDB snapshot.
    pub peeringdb: PeeringDb,
    /// CAIDA-style prefix→AS table.
    pub prefix2as: Prefix2As,
    /// The stale 2015 facility dataset.
    pub facility_dataset: FacilityDataset,
    /// Latency model campaigns should use.
    pub latency: LatencyModel,
    /// The seed the world was built from.
    pub seed: u64,
}

impl World {
    /// Builds the world from a config and master seed. Sub-seeds are
    /// derived per component so the world is fully reproducible.
    pub fn build(cfg: &WorldConfig, seed: u64) -> Self {
        let sub = |k: u64| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k);
        let topo = Arc::new(Topology::generate(&cfg.topology, sub(1)));
        let mut hosts = HostRegistry::new();
        let ripe = RipeAtlas::generate(&topo, &mut hosts, &cfg.ripe, sub(2));
        let planetlab = PlanetLab::generate(&topo, &mut hosts, &cfg.planetlab, sub(3));
        let looking_glasses =
            LookingGlassNet::generate(&topo, &mut hosts, &cfg.looking_glass, sub(4));
        let facility_dataset =
            FacilityDataset::generate(&topo, &mut hosts, &cfg.facility_dataset, sub(5));
        let apnic = ApnicDataset::from_topology(&topo, sub(6));
        let peeringdb = PeeringDb::snapshot(&topo);
        let prefix2as = Prefix2As::from_topology(&topo, cfg.moas_fraction, sub(7));
        World {
            topo,
            hosts: Arc::new(hosts),
            ripe,
            planetlab,
            looking_glasses,
            apnic,
            peeringdb,
            prefix2as,
            facility_dataset,
            latency: cfg.latency.clone(),
            seed,
        }
    }

    /// The world's shared measurement substrate: cheap-clone handles
    /// on the pieces a router/engine stack co-owns.
    pub fn shared(&self) -> SharedWorld {
        SharedWorld {
            topo: Arc::clone(&self.topo),
            hosts: Arc::clone(&self.hosts),
            latency: self.latency.clone(),
        }
    }
}

/// The co-ownable core of a [`World`]: exactly the pieces campaigns,
/// sweep schedulers and worker threads share — the topology, the host
/// registry and the latency model. Cloning is a couple of refcount
/// bumps.
///
/// This is what breaks the old `Campaign<'w> → &'w World` ownership
/// chain for the measurement stack: a [`PingEngine`] built from a
/// `SharedWorld` owns everything it routes over, so one engine (and
/// its caches) can serve many concurrent campaigns.
#[derive(Debug, Clone)]
pub struct SharedWorld {
    /// The AS-level topology.
    pub topo: Arc<Topology>,
    /// All registered hosts.
    pub hosts: Arc<HostRegistry>,
    /// Latency model campaigns should use.
    pub latency: LatencyModel,
}

impl SharedWorld {
    /// A router over the shared topology under `policy`.
    pub fn router(&self, policy: RoutingPolicy) -> Arc<Router> {
        Arc::new(Router::with_policy(Arc::clone(&self.topo), policy))
    }

    /// A ping engine over the shared substrate, routing under
    /// `policy`. The engine co-owns its inputs; share it across as
    /// many campaigns as the sweep runs.
    pub fn engine(&self, policy: RoutingPolicy) -> Arc<PingEngine> {
        self.engine_budgeted(policy, MemoryBudget::unbounded())
    }

    /// As [`SharedWorld::engine`], but carves `budget` into the
    /// router's and pair cache's byte shares so the stack's residency
    /// stays bounded — evicted tables and pairs are recomputed
    /// bit-identically on miss, so a budgeted engine produces the
    /// exact measurements an unbounded one does.
    pub fn engine_budgeted(&self, policy: RoutingPolicy, budget: MemoryBudget) -> Arc<PingEngine> {
        let router = Arc::new(Router::with_budget(
            Arc::clone(&self.topo),
            policy,
            budget.router_bytes(),
        ));
        Arc::new(PingEngine::with_budget(
            Arc::clone(&self.topo),
            router,
            Arc::clone(&self.hosts),
            self.latency.clone(),
            budget.pair_bytes(),
        ))
    }

    /// Approximate resident bytes of the shared substrate itself (the
    /// topology and host registry a pooled world keeps warm even when
    /// its caches are empty). Coarse by design — the pool budget uses
    /// it to rank whole stacks, not to account exact allocations.
    pub fn approx_bytes(&self) -> u64 {
        (self.topo.as_count() * 400 + self.topo.link_count() * 120 + self.hosts.len() * 200) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_builds_consistently() {
        let w1 = World::build(&WorldConfig::small(), 5);
        let w2 = World::build(&WorldConfig::small(), 5);
        assert_eq!(w1.hosts.len(), w2.hosts.len());
        assert_eq!(w1.ripe.probes().len(), w2.ripe.probes().len());
        assert_eq!(w1.facility_dataset.len(), w2.facility_dataset.len());
        assert!(!w1.hosts.is_empty());
    }

    #[test]
    fn world_components_share_the_topology() {
        let w = World::build(&WorldConfig::small(), 6);
        // Every probe host resolves and belongs to a real AS.
        for p in w.ripe.probes().iter().take(50) {
            let h = w.hosts.get(p.host);
            assert!(w.topo.as_info(h.asn).is_some());
        }
        // PeeringDB facility count matches the topology.
        assert_eq!(w.peeringdb.facilities().len(), w.topo.facilities().len());
    }

    #[test]
    fn shared_world_co_owns_the_substrate() {
        let w = World::build(&WorldConfig::small(), 7);
        let shared = w.shared();
        assert!(Arc::ptr_eq(&shared.topo, &w.topo));
        assert!(Arc::ptr_eq(&shared.hosts, &w.hosts));
        // An engine built from the shared substrate is self-contained:
        // it keeps working when the handle is gone.
        let engine = shared.engine(RoutingPolicy::default());
        drop(shared);
        assert_eq!(engine.hosts().len(), w.hosts.len());
        // Same topology instance, not a copy.
        assert!(std::ptr::eq(engine.topology(), &*w.topo));
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let w1 = World::build(&WorldConfig::small(), 1);
        let w2 = World::build(&WorldConfig::small(), 2);
        assert_ne!(w1.hosts.len(), w2.hosts.len());
    }
}
