//! Cross-campaign scenario sweeps on one shared world.
//!
//! The paper's result is one point in a large parameter space — seeds,
//! round counts, fault scenarios, endpoint cutoffs, window shapes. A
//! [`Sweep`] evaluates many such `(seed, CampaignConfig)` scenarios
//! **concurrently on one world**, sharing everything that is a world
//! fact rather than a campaign fact:
//!
//! - **One engine** ([`shortcuts_netsim::PingEngine`]): the pair cache
//!   (deterministic path facts per host pair) is shared, so a pair two
//!   scenarios both visit is expanded once, not once per scenario.
//! - **One router** ([`shortcuts_topology::routing::Router`]): the
//!   destination-table cache is warmed **once** with the union of all
//!   scenarios' destinations, data-parallel, before any round runs.
//! - **One worker pool**: the [`crate::shard::run_interleaved`]
//!   scheduler keeps `(campaign, round)` jobs from every scenario in
//!   flight together, so a stage barrier in one scenario never idles a
//!   core — it measures another scenario's windows instead.
//!
//! What stays strictly per-scenario is exactly what identifies a
//! campaign: its seed (every window's RNG derives from
//! `(campaign_seed, round, src, dst, kind)`), its fault plan and its
//! ping accounting (both carried by the scenario's private
//! [`shortcuts_netsim::PingHandle`]), its §2.1/§2.2/§2.3 selection
//! (run through that handle by [`CampaignSetup::prepare`], the same
//! code path a solo run uses), and its [`crate::stitch::ResultsBuilder`].
//!
//! The consequence — enforced by the `sweep_equivalence` suite — is
//! the sweep determinism contract: **every scenario of a concurrent
//! sweep is bit-identical to running that `(seed, config)` alone** via
//! [`Campaign::run_streaming`], down to the CSV bytes, at any
//! `jobs_in_flight` and any worker count. Sharing caches is purely a
//! scheduling/performance choice; cached pair facts and routing tables
//! are deterministic world facts, identical however many campaigns
//! touch them.
//!
//! [`Sweep::run_streaming`] streams a `(scenario, RoundSummary)` per
//! completed round — per scenario in round order, as rounds complete —
//! and [`SweepReport`] carries per-scenario [`CampaignResults`] plus a
//! cross-scenario comparison table of improvement rates
//! ([`SweepReport::comparison_csv`]).
//!
//! **Ownership**: a [`Sweep`] owns its world (`Arc<World>`) and, via
//! [`Sweep::with_engine`], can measure through a caller-pooled shared
//! engine. Neither borrows anything, so a sweep constructed in one
//! scope — a session thread of the `shortcuts_service` server — runs
//! happily after that scope is gone, and many concurrent sessions
//! reuse one warmed pair cache and router table cache.

use crate::analysis::improvement::ImprovementAnalysis;
use crate::relays::RelayType;
use crate::shard::run_interleaved_ranges;
use crate::stitch::{ResultsBuilder, RoundReorder};
use crate::workflow::{Campaign, CampaignConfig, CampaignResults, CampaignSetup, RoundSummary};
use crate::world::World;
use crate::{NetsimBackend, RoundPlan};
use rayon::prelude::*;
use shortcuts_netsim::{PingEngine, PingHandle};
use shortcuts_topology::{Asn, ChurnSchedule, MemoryBudget};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One scenario of a sweep: a labelled campaign configuration.
#[derive(Debug, Clone)]
pub struct SweepScenario {
    /// Human-readable label (CSV column / CLI output / file names).
    pub label: String,
    /// The campaign to run. `exec` is ignored — the sweep always runs
    /// its own two-level sharded scheduler.
    pub config: CampaignConfig,
}

/// A batch of scenarios to run concurrently on one world.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The scenarios. All must share one routing policy (the sweep
    /// shares a single router; mixed-policy batches must be split).
    pub scenarios: Vec<SweepScenario>,
    /// Maximum `(campaign, round)` jobs in flight at once across the
    /// whole sweep. Bounds memory (live plans and partial results) and
    /// streaming latency; values a bit above the worker count saturate
    /// typical machines.
    pub jobs_in_flight: usize,
    /// Byte budget for the engine stack the sweep builds when the
    /// caller does not provide one ([`Sweep::new`]). Bounds cache
    /// residency via eviction without changing a single output byte.
    /// Ignored under [`Sweep::with_engine`] — the engine's builder
    /// chose its budget.
    pub memory: MemoryBudget,
    /// Topology churn applied to the **shared** world at round
    /// boundaries, seen by every scenario at once (the sweep shares
    /// one engine, so the world cannot churn per scenario — scenarios
    /// carrying their own [`CampaignConfig::churn`] are rejected).
    /// Deltas permanently advance the engine's epoch, so a churning
    /// sweep must run on a private engine, never a pooled one.
    pub churn: ChurnSchedule,
}

impl SweepConfig {
    /// The most common sweep: one base configuration evaluated under
    /// many seeds. Labels are `seed-<n>`.
    ///
    /// # Panics
    ///
    /// On duplicate seeds: labels (and therefore `cases_<label>.csv`
    /// output files) derive from the seed, so a duplicate would
    /// silently overwrite another scenario's results.
    pub fn from_seeds(base: &CampaignConfig, seeds: impl IntoIterator<Item = u64>) -> Self {
        let mut seen = BTreeSet::new();
        let scenarios = seeds
            .into_iter()
            .map(|seed| {
                assert!(
                    seen.insert(seed),
                    "duplicate sweep seed {seed}: scenario labels derive from the seed, \
                     so its results would overwrite each other"
                );
                let mut config = base.clone();
                config.seed = seed;
                // Churn lives at sweep level (the world is shared);
                // the base config's schedule is lifted there below.
                config.churn = ChurnSchedule::none();
                SweepScenario {
                    label: format!("seed-{seed}"),
                    config,
                }
            })
            .collect();
        SweepConfig {
            scenarios,
            jobs_in_flight: 8,
            memory: base.memory,
            churn: base.churn.clone(),
        }
    }
}

/// One scenario's outcome.
#[derive(Debug)]
pub struct ScenarioResults {
    /// The scenario's label.
    pub label: String,
    /// The scenario's campaign seed.
    pub seed: u64,
    /// Full campaign results — bit-identical to a solo run of the
    /// scenario's `(seed, config)`.
    pub results: CampaignResults,
}

/// Everything a sweep produces: per-scenario results plus the
/// cross-scenario comparison.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-scenario outcomes, in [`SweepConfig::scenarios`] order.
    pub scenarios: Vec<ScenarioResults>,
}

impl SweepReport {
    /// Cross-scenario comparison table: one row per scenario with its
    /// headline §3 numbers — cases, and per relay type the improved
    /// fraction and median improvement — so a parameter sweep reads as
    /// one CSV instead of N separate reports.
    pub fn comparison_csv(&self) -> String {
        let mut out = String::from("scenario,seed,cases");
        for t in RelayType::ALL {
            out.push_str(&format!(
                ",{t}_improved_fraction,{t}_median_improvement_ms",
                t = t.label()
            ));
        }
        out.push('\n');
        for sc in &self.scenarios {
            let imp = ImprovementAnalysis::compute(&sc.results);
            out.push_str(&format!(
                "{},{},{}",
                sc.label,
                sc.seed,
                sc.results.total_cases()
            ));
            for t in RelayType::ALL {
                let ti = imp.for_type(t);
                out.push_str(&format!(
                    ",{:.4},{:.3}",
                    ti.improved_fraction, ti.median_improvement_ms
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// The sweep runner: many campaigns, one world, one engine, one worker
/// pool.
///
/// A sweep **owns** its world (`Arc<World>`) and optionally the shared
/// engine it measures through — no borrowed lifetimes — so a sweep
/// built in one scope (an RPC handler, a session thread) can be handed
/// to another and run long after its creator returned. This is the
/// ownership shape the `shortcuts_service` session server builds on:
/// its [`WorldPool`](../../shortcuts_service/struct.WorldPool.html)
/// hands every session an `Arc<World>` plus a pooled warmed engine,
/// and sessions come and go while both live on.
pub struct Sweep {
    world: Arc<World>,
    /// Shared engine to measure through, if the caller pools one;
    /// otherwise the sweep builds its own private stack.
    engine: Option<Arc<PingEngine>>,
    cfg: SweepConfig,
}

impl Sweep {
    /// Creates a sweep over a world, with a private engine stack.
    ///
    /// # Panics
    ///
    /// If the batch is empty, the scenarios disagree on routing policy
    /// (the sweep shares one router; split mixed-policy batches into
    /// one sweep per policy), or two scenarios share a label (their
    /// outputs — `cases_<label>.csv` — would overwrite each other).
    pub fn new(world: Arc<World>, cfg: SweepConfig) -> Self {
        Self::validate(&cfg);
        Sweep {
            world,
            engine: None,
            cfg,
        }
    }

    /// Creates a sweep that measures through a caller-provided shared
    /// engine — the warmed stack a session server pools per
    /// `(world seed, policy)` — instead of building its own. Results
    /// are bit-identical either way: the engine only caches
    /// deterministic world facts, while faults and ping accounting
    /// stay on per-scenario [`PingHandle`]s.
    ///
    /// # Panics
    ///
    /// As [`Sweep::new`], and additionally if the engine's router
    /// policy differs from the scenarios' routing policy or the
    /// engine was built from a different world (scenario selection
    /// would then plan against hosts the engine cannot resolve).
    pub fn with_engine(world: Arc<World>, engine: Arc<PingEngine>, cfg: SweepConfig) -> Self {
        Self::validate(&cfg);
        assert_eq!(
            engine.router().policy(),
            cfg.scenarios[0].config.routing,
            "shared engine routes under a different policy than the sweep"
        );
        assert!(
            std::ptr::eq(engine.topology(), &*world.topo),
            "shared engine was built from a different world than the sweep"
        );
        Sweep {
            world,
            engine: Some(engine),
            cfg,
        }
    }

    fn validate(cfg: &SweepConfig) {
        assert!(
            !cfg.scenarios.is_empty(),
            "sweep needs at least one scenario"
        );
        let policy = cfg.scenarios[0].config.routing;
        assert!(
            cfg.scenarios.iter().all(|s| s.config.routing == policy),
            "all sweep scenarios must share one routing policy"
        );
        let mut labels = BTreeSet::new();
        for sc in &cfg.scenarios {
            assert!(
                labels.insert(sc.label.as_str()),
                "duplicate scenario label {:?}: its results (cases_<label>.csv) \
                 would overwrite each other",
                sc.label
            );
            assert!(
                sc.config.churn.is_empty(),
                "scenario {:?} carries per-scenario churn, but the sweep shares one \
                 world; set sweep-level churn (SweepConfig::churn) instead",
                sc.label
            );
        }
    }

    /// Runs every scenario to completion.
    pub fn run(&self) -> SweepReport {
        self.run_streaming(|_, _| {})
    }

    /// Runs every scenario, streaming `(scenario index, RoundSummary)`
    /// per completed round — for each scenario in round order, as its
    /// rounds complete. Rounds of different scenarios interleave on
    /// one worker pool, so early rounds of *every* scenario arrive
    /// while later rounds are still measuring.
    pub fn run_streaming<F: FnMut(usize, &RoundSummary)>(&self, mut on_round: F) -> SweepReport {
        let world: &World = &self.world;
        let scenarios = &self.cfg.scenarios;
        let policy = scenarios[0].config.routing;

        // One engine for the whole sweep: shared topology, host
        // registry, latency model, router table cache and pair cache —
        // the caller's pooled (already warmed) stack if it provided
        // one, a private stack otherwise.
        let engine = match &self.engine {
            Some(e) => Arc::clone(e),
            None => world.shared().engine_budgeted(policy, self.cfg.memory),
        };

        // Per-scenario selection through per-scenario handles — the
        // identical code path (and RNG streams) a solo run uses, so
        // funnels, pools and ping counts match solo runs exactly.
        // Setups are independent (each draws only on its own seeded
        // RNG and deterministic shared caches), so they run
        // data-parallel rather than idling the pool through N
        // sequential funnels.
        let prepared: Vec<(CampaignSetup<'_>, NetsimBackend)> = scenarios
            .par_iter()
            .map(|sc| {
                let handle = PingHandle::with_faults(Arc::clone(&engine), sc.config.faults.clone());
                let setup = CampaignSetup::prepare(world, &handle, &sc.config);
                let backend = NetsimBackend::new(handle, sc.config.window, sc.config.seed);
                (setup, backend)
            })
            .collect();
        let (setups, backends): (Vec<CampaignSetup<'_>>, Vec<NetsimBackend>) =
            prepared.into_iter().unzip();

        // One warmup over the UNION of every scenario's destinations:
        // each table is built exactly once, data-parallel, however
        // many scenarios route toward it. First-seen order preserves
        // each scenario's hottest-first priority, which is what a
        // byte-budgeted router warms before its budget fills.
        let mut seen = BTreeSet::new();
        let union: Vec<Asn> = setups
            .iter()
            .flat_map(|s| s.warmup())
            .filter(|&a| seen.insert(a))
            .collect();
        engine.router().precompute(&union);

        // Two-level schedule: all (scenario, round) jobs on one pool.
        let rounds: Vec<u32> = scenarios.iter().map(|s| s.config.rounds).collect();
        let backend_refs: Vec<&NetsimBackend> = backends.iter().collect();
        let mut builders: Vec<ResultsBuilder> =
            scenarios.iter().map(|_| ResultsBuilder::new()).collect();
        // Observers are promised round order per scenario; jobs
        // complete in any order, so buffer summaries until their turn.
        let mut reorder: Vec<RoundReorder> =
            scenarios.iter().map(|_| RoundReorder::new()).collect();

        let planner = |campaign: u32, round: u32| -> RoundPlan {
            let setup = &setups[campaign as usize];
            crate::plan::plan_round_for(
                world,
                &setup.endpoints,
                &setup.relays,
                &scenarios[campaign as usize].config,
                round,
            )
        };
        // The round loop runs in contiguous segments between the
        // sweep's churn batches; every scenario sees each delta at the
        // same absolute round (clipped to its own round count). Each
        // `run_interleaved_ranges` call is a barrier, so no window of
        // epoch `e` is ever in flight when batch `e+1` mutates the
        // engine. A churn-free schedule yields one full-range segment
        // — the byte-identical classic schedule.
        let max_rounds = rounds.iter().copied().max().unwrap_or(0);
        for (start, end, batch) in self.cfg.churn.segments(max_rounds) {
            if !batch.is_empty() {
                engine.apply_delta(batch);
            }
            let ranges: Vec<(u32, u32)> =
                rounds.iter().map(|&r| (start.min(r), end.min(r))).collect();
            run_interleaved_ranges(
                &backend_refs,
                &ranges,
                self.cfg.jobs_in_flight,
                planner,
                |campaign, done| {
                    let c = campaign as usize;
                    let _span = shortcuts_telemetry::global().span_for(
                        shortcuts_telemetry::Stage::Stitch,
                        campaign,
                        done.plan.round,
                    );
                    let summary = builders[c].absorb_round(
                        &done.plan,
                        &done.overlay,
                        &done.direct,
                        &done.reverse,
                        &done.links,
                    );
                    reorder[c].push(summary, |s| on_round(c, s));
                },
            );
        }

        // Stitch each scenario independently, with its own funnel and
        // its own ping count.
        let mut out = Vec::with_capacity(scenarios.len());
        for ((sc, builder), (setup, backend)) in scenarios
            .iter()
            .zip(builders)
            .zip(setups.into_iter().zip(backends))
        {
            use crate::backend::MeasurementBackend;
            out.push(ScenarioResults {
                label: sc.label.clone(),
                seed: sc.config.seed,
                results: builder.finish(setup.colo, backend.pings_sent()),
            });
        }
        SweepReport { scenarios: out }
    }
}

/// Convenience: runs `cfg`'s scenarios as **sequential solo campaigns**
/// (each with its own engine and caches) and returns the same report
/// shape. This is the baseline the `campaign_sweep` benchmark times
/// the shared-world sweep against; results are bit-identical.
pub fn run_sequential(world: &World, cfg: &SweepConfig) -> SweepReport {
    let scenarios = cfg
        .scenarios
        .iter()
        .map(|sc| ScenarioResults {
            label: sc.label.clone(),
            seed: sc.config.seed,
            results: Campaign::new(world, sc.config.clone()).run(),
        })
        .collect();
    SweepReport { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;
    use crate::world::WorldConfig;
    use shortcuts_netsim::clock::SimTime;
    use shortcuts_netsim::FaultPlan;

    fn small_cfg(rounds: u32) -> CampaignConfig {
        let mut cfg = CampaignConfig::small();
        cfg.rounds = rounds;
        cfg
    }

    #[test]
    fn sweep_produces_one_result_per_scenario() {
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let cfg = SweepConfig::from_seeds(&small_cfg(2), [2017, 2018, 2019]);
        let report = Sweep::new(Arc::clone(&world), cfg).run();
        assert_eq!(report.scenarios.len(), 3);
        for sc in &report.scenarios {
            assert!(!sc.results.cases.is_empty(), "{}", sc.label);
            assert!(sc.results.pings_sent > 0, "{}", sc.label);
        }
        // Different seeds genuinely differ.
        assert_ne!(
            report.scenarios[0].results.pings_sent,
            report.scenarios[1].results.pings_sent
        );
    }

    #[test]
    fn swept_scenarios_match_solo_runs_bitwise() {
        // The tentpole acceptance check at unit scale: concurrent
        // sweep scenarios produce byte-identical CSVs to solo runs.
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let mut cfg = SweepConfig::from_seeds(&small_cfg(2), [2017, 4242]);
        // Heterogeneous round counts too.
        cfg.scenarios[1].config.rounds = 3;
        let sweep = Sweep::new(Arc::clone(&world), cfg.clone()).run();
        for (sc, swept) in cfg.scenarios.iter().zip(&sweep.scenarios) {
            let solo = Campaign::new(&world, sc.config.clone()).run();
            assert_eq!(
                report::cases_csv(&swept.results),
                report::cases_csv(&solo),
                "scenario {} diverged from its solo run",
                sc.label
            );
            assert_eq!(swept.results.pings_sent, solo.pings_sent);
            assert_eq!(swept.results.unresponsive_pairs, solo.unresponsive_pairs);
        }
    }

    #[test]
    fn per_scenario_faults_stay_per_scenario() {
        // Two scenarios, same seed; one has a long outage of a transit
        // AS. The faulty one must lose windows, the clean one must be
        // bit-identical to a solo clean run — no cross-talk through
        // the shared engine.
        let world = Arc::new(World::build(&WorldConfig::small(), 51));
        let clean = small_cfg(1);
        let mut faulty = clean.clone();
        // Black out a tier-1 for the whole campaign.
        let tier1 = world.topo.asns_of_type(shortcuts_topology::AsType::Tier1)[0];
        faulty.faults = FaultPlan::none().with_outage(tier1, SimTime(0.0), SimTime(1e12));
        let cfg = SweepConfig {
            scenarios: vec![
                SweepScenario {
                    label: "clean".into(),
                    config: clean.clone(),
                },
                SweepScenario {
                    label: "tier1-outage".into(),
                    config: faulty,
                },
            ],
            jobs_in_flight: 4,
            memory: MemoryBudget::unbounded(),
            churn: ChurnSchedule::none(),
        };
        let report = Sweep::new(Arc::clone(&world), cfg).run();
        let solo_clean = Campaign::new(&world, clean).run();
        assert_eq!(
            report::cases_csv(&report.scenarios[0].results),
            report::cases_csv(&solo_clean)
        );
        assert!(
            report.scenarios[1].results.unresponsive_pairs
                > report.scenarios[0].results.unresponsive_pairs,
            "the outage scenario should lose pairs"
        );
    }

    #[test]
    fn streaming_emits_rounds_in_order_per_scenario() {
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let cfg = SweepConfig::from_seeds(&small_cfg(3), [1, 2]);
        let mut seen: Vec<Vec<u32>> = vec![Vec::new(); 2];
        let report =
            Sweep::new(Arc::clone(&world), cfg).run_streaming(|c, s| seen[c].push(s.round));
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[1], vec![0, 1, 2]);
        assert_eq!(report.scenarios.len(), 2);
    }

    #[test]
    fn comparison_csv_has_one_row_per_scenario() {
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let cfg = SweepConfig::from_seeds(&small_cfg(1), [7, 8, 9]);
        let report = Sweep::new(Arc::clone(&world), cfg).run();
        let csv = report.comparison_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scenario,seed,cases,COR_improved_fraction"));
        assert!(lines[1].starts_with("seed-7,7,"));
    }

    #[test]
    fn sequential_baseline_matches_the_sweep() {
        let world = Arc::new(World::build(&WorldConfig::small(), 52));
        let cfg = SweepConfig::from_seeds(&small_cfg(1), [5, 6]);
        let swept = Sweep::new(Arc::clone(&world), cfg.clone()).run();
        let sequential = run_sequential(&world, &cfg);
        for (a, b) in swept.scenarios.iter().zip(&sequential.scenarios) {
            assert_eq!(report::cases_csv(&a.results), report::cases_csv(&b.results));
        }
    }

    #[test]
    #[should_panic(expected = "routing policy")]
    fn mixed_policies_are_rejected() {
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let mut cfg = SweepConfig::from_seeds(&small_cfg(1), [1, 2]);
        cfg.scenarios[1].config.routing = shortcuts_topology::routing::RoutingPolicy::ShortestPath;
        let _ = Sweep::new(Arc::clone(&world), cfg);
    }

    #[test]
    #[should_panic(expected = "duplicate sweep seed")]
    fn duplicate_seeds_are_rejected() {
        let _ = SweepConfig::from_seeds(&small_cfg(1), [7, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "duplicate scenario label")]
    fn duplicate_labels_are_rejected() {
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let mut cfg = SweepConfig::from_seeds(&small_cfg(1), [1, 2]);
        cfg.scenarios[1].label = cfg.scenarios[0].label.clone();
        let _ = Sweep::new(world, cfg);
    }

    #[test]
    fn sweep_outlives_the_scope_that_created_it() {
        // The service ownership contract: a session thread builds a
        // sweep from pool handles and runs it after the building scope
        // (and its Arc bindings) are gone.
        let sweep = {
            let world = Arc::new(World::build(&WorldConfig::small(), 50));
            let engine = world.shared().engine(Default::default());
            Sweep::with_engine(world, engine, SweepConfig::from_seeds(&small_cfg(1), [3]))
        };
        let report = sweep.run();
        assert_eq!(report.scenarios.len(), 1);
        assert!(!report.scenarios[0].results.cases.is_empty());
    }

    #[test]
    fn pooled_engine_reproduces_private_engine_results() {
        // with_engine is a pure scheduling/caching choice: running two
        // sweeps back to back on ONE engine (second run fully warmed)
        // matches the private-engine run byte for byte.
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let cfg = SweepConfig::from_seeds(&small_cfg(2), [2017, 2018]);
        let private = Sweep::new(Arc::clone(&world), cfg.clone()).run();
        let engine = world.shared().engine(Default::default());
        for _ in 0..2 {
            let pooled =
                Sweep::with_engine(Arc::clone(&world), Arc::clone(&engine), cfg.clone()).run();
            for (a, b) in pooled.scenarios.iter().zip(&private.scenarios) {
                assert_eq!(report::cases_csv(&a.results), report::cases_csv(&b.results));
                assert_eq!(a.results.pings_sent, b.results.pings_sent);
            }
        }
        // The pooled engine's health counters saw both runs.
        let stats = engine.engine_stats();
        assert!(stats.pings_sent > 0);
        assert!(stats.router_tables_resident > 0);
        assert!(stats.pair_cache_hits > stats.pair_cache_misses);
    }

    #[test]
    #[should_panic(expected = "different policy")]
    fn engine_policy_mismatch_is_rejected() {
        let world = Arc::new(World::build(&WorldConfig::small(), 50));
        let engine = world
            .shared()
            .engine(shortcuts_topology::routing::RoutingPolicy::ShortestPath);
        let _ = Sweep::with_engine(world, engine, SweepConfig::from_seeds(&small_cfg(1), [1]));
    }
}
