//! §2.3 — relay populations and per-round sampling.
//!
//! Four relay types are compared:
//!
//! - [`RelayType::Cor`] — colo interfaces surviving the §2.2 funnel;
//!   1–3 sampled per facility per round (~129 on average in the paper).
//! - [`RelayType::Plr`] — PlanetLab nodes; 1–2 consistently-accessible
//!   nodes per site (~59 on average — PlanetLab is flaky).
//! - [`RelayType::RarEye`] — RIPE Atlas probes at *verified eyeball*
//!   (AS, country) tuples; one per country (~82).
//! - [`RelayType::RarOther`] — RIPE Atlas probes at all remaining ASes
//!   (possibly core networks); one per country (~102).

use crate::colo::ColoPool;
use crate::eyeball::VerifiedEyeball;
use crate::world::World;
use rand::prelude::*;
use shortcuts_atlas::ripe::ProbeFilter;
use shortcuts_geo::{CityId, CountryCode, GeoPoint};
use shortcuts_netsim::HostId;
use shortcuts_topology::{Asn, FacilityId};
use std::collections::BTreeMap;

/// The four relay types of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelayType {
    /// Colo-hosted relay (COR).
    Cor,
    /// PlanetLab relay (PLR).
    Plr,
    /// RIPE Atlas relay at a non-eyeball network (RAR_other).
    RarOther,
    /// RIPE Atlas relay at an eyeball network (RAR_eye).
    RarEye,
}

impl RelayType {
    /// All types, in the order used across results arrays.
    pub const ALL: [RelayType; 4] = [
        RelayType::Cor,
        RelayType::Plr,
        RelayType::RarOther,
        RelayType::RarEye,
    ];

    /// Index into per-type arrays (must match the order of
    /// [`RelayType::ALL`]; `type_index_round_trips` pins that down).
    pub fn index(&self) -> usize {
        match self {
            RelayType::Cor => 0,
            RelayType::Plr => 1,
            RelayType::RarOther => 2,
            RelayType::RarEye => 3,
        }
    }

    /// Display label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            RelayType::Cor => "COR",
            RelayType::Plr => "PLR",
            RelayType::RarOther => "RAR_other",
            RelayType::RarEye => "RAR_eye",
        }
    }
}

impl std::fmt::Display for RelayType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One relay candidate.
#[derive(Debug, Clone)]
pub struct Relay {
    /// The relay's host (stable identity across rounds).
    pub host: HostId,
    /// Owning AS.
    pub asn: Asn,
    /// Relay city.
    pub city: CityId,
    /// Relay location.
    pub location: GeoPoint,
    /// Country of the relay.
    pub country: CountryCode,
    /// Type of the relay.
    pub rtype: RelayType,
    /// Facility, for COR relays.
    pub facility: Option<FacilityId>,
}

/// The full candidate pools per type (before per-round sampling).
#[derive(Debug)]
pub struct RelayPools {
    /// COR candidates grouped by facility.
    pub cor_by_facility: BTreeMap<FacilityId, Vec<Relay>>,
    /// PLR candidates grouped by site id.
    pub plr_by_site: BTreeMap<u32, Vec<Relay>>,
    /// RAR_eye candidates grouped by country.
    pub rar_eye_by_country: BTreeMap<CountryCode, Vec<Relay>>,
    /// RAR_other candidates grouped by country.
    pub rar_other_by_country: BTreeMap<CountryCode, Vec<Relay>>,
}

/// The relays actually used in one round, flat per type.
#[derive(Debug, Clone, Default)]
pub struct RoundRelays {
    /// Sampled relays, all types mixed; filter by `rtype`.
    pub relays: Vec<Relay>,
}

impl RoundRelays {
    /// Relays of one type.
    pub fn of_type(&self, t: RelayType) -> impl Iterator<Item = &Relay> {
        self.relays.iter().filter(move |r| r.rtype == t)
    }

    /// Count per type.
    pub fn count(&self, t: RelayType) -> usize {
        self.of_type(t).count()
    }
}

impl RelayPools {
    /// Builds all four candidate pools.
    ///
    /// `colo` is the verified §2.2 pool; `verified` the §2.1 eyeball
    /// tuples (used both to accept RAR_eye probes and to *exclude* them
    /// from RAR_other).
    pub fn build(world: &World, colo: &ColoPool, verified: &[VerifiedEyeball]) -> Self {
        let mk_relay = |host: HostId, rtype: RelayType, facility: Option<FacilityId>| {
            let h = world.hosts.get(host);
            Relay {
                host,
                asn: h.asn,
                city: h.city,
                location: h.location,
                country: world.topo.cities.get(h.city).country,
                rtype,
                facility,
            }
        };

        // COR: group the verified pool by facility.
        let mut cor_by_facility: BTreeMap<FacilityId, Vec<Relay>> = BTreeMap::new();
        for cr in &colo.relays {
            cor_by_facility
                .entry(cr.facility)
                .or_default()
                .push(mk_relay(cr.host, RelayType::Cor, Some(cr.facility)));
        }

        // PLR: group nodes by site (availability is applied per round).
        let mut plr_by_site: BTreeMap<u32, Vec<Relay>> = BTreeMap::new();
        for node in world.planetlab.nodes() {
            plr_by_site.entry(node.site).or_default().push(mk_relay(
                node.host,
                RelayType::Plr,
                None,
            ));
        }

        // RAR: split the probe population by verified-eyeball membership.
        let filter = ProbeFilter::paper();
        let mut rar_eye_by_country: BTreeMap<CountryCode, Vec<Relay>> = BTreeMap::new();
        let mut rar_other_by_country: BTreeMap<CountryCode, Vec<Relay>> = BTreeMap::new();
        for p in world.ripe.probes() {
            if !filter.accepts(p) {
                continue;
            }
            let is_eye = verified
                .iter()
                .any(|v| v.asn == p.asn && v.country == p.country);
            let bucket = if is_eye {
                &mut rar_eye_by_country
            } else {
                &mut rar_other_by_country
            };
            let rtype = if is_eye {
                RelayType::RarEye
            } else {
                RelayType::RarOther
            };
            bucket
                .entry(p.country)
                .or_default()
                .push(mk_relay(p.host, rtype, None));
        }

        RelayPools {
            cor_by_facility,
            plr_by_site,
            rar_eye_by_country,
            rar_other_by_country,
        }
    }

    /// Distinct ASes hosting any relay candidate, ascending. Every
    /// overlay link routes toward (or back from) one of these, so this
    /// is the relay half of the router's warmup destination set.
    pub fn asns(&self) -> Vec<Asn> {
        let set: std::collections::BTreeSet<Asn> = self
            .cor_by_facility
            .values()
            .chain(self.plr_by_site.values())
            .chain(self.rar_eye_by_country.values())
            .chain(self.rar_other_by_country.values())
            .flatten()
            .map(|r| r.asn)
            .collect();
        set.into_iter().collect()
    }

    /// Samples the relays for one round per the paper's strategy.
    ///
    /// `round` drives PlanetLab availability; the RNG drives all random
    /// choices.
    pub fn sample_round<R: Rng + ?Sized>(
        &self,
        world: &World,
        round: u32,
        rng: &mut R,
    ) -> RoundRelays {
        let mut relays = Vec::new();

        // COR: 1-3 IPs per facility.
        for members in self.cor_by_facility.values() {
            let k = rng.gen_range(1..=3).min(members.len());
            relays.extend(members.choose_multiple(rng, k).cloned().collect::<Vec<_>>());
        }

        // PLR: 1-2 consistently-up nodes per site.
        let up: std::collections::HashSet<HostId> = world
            .planetlab
            .consistently_up(round)
            .iter()
            .map(|n| n.host)
            .collect();
        for members in self.plr_by_site.values() {
            let avail: Vec<&Relay> = members.iter().filter(|r| up.contains(&r.host)).collect();
            if avail.is_empty() {
                continue;
            }
            let k = rng.gen_range(1..=2).min(avail.len());
            relays.extend(avail.choose_multiple(rng, k).map(|r| (*r).clone()));
        }

        // RAR_eye / RAR_other: one per country each.
        for members in self.rar_eye_by_country.values() {
            relays.push(members.choose(rng).expect("non-empty").clone());
        }
        for members in self.rar_other_by_country.values() {
            relays.push(members.choose(rng).expect("non-empty").clone());
        }

        RoundRelays { relays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colo::{run_pipeline, ColoPipelineConfig};
    use crate::eyeball::select_eyeballs;
    use crate::world::WorldConfig;
    use rand::rngs::StdRng;
    use shortcuts_netsim::clock::SimTime;

    fn setup() -> (World, ColoPool, Vec<VerifiedEyeball>) {
        let world = World::build(&WorldConfig::small(), 14);
        let engine = world.shared().engine(Default::default());
        let vantage = world.looking_glasses.lgs()[0].host;
        let mut rng = StdRng::seed_from_u64(1);
        let colo = run_pipeline(
            &world,
            &*engine,
            vantage,
            SimTime(0.0),
            &ColoPipelineConfig::default(),
            &mut rng,
        );
        let verified = select_eyeballs(&world, 10.0).verified;
        (world, colo, verified)
    }

    #[test]
    fn pools_are_populated() {
        let (world, colo, verified) = setup();
        let pools = RelayPools::build(&world, &colo, &verified);
        assert!(!pools.cor_by_facility.is_empty());
        assert!(!pools.plr_by_site.is_empty());
        assert!(!pools.rar_eye_by_country.is_empty());
        assert!(!pools.rar_other_by_country.is_empty());
    }

    #[test]
    fn type_index_round_trips() {
        for t in RelayType::ALL {
            assert_eq!(RelayType::ALL[t.index()], t);
        }
        assert_eq!(RelayType::Cor.label(), "COR");
    }

    #[test]
    fn round_sampling_respects_per_group_limits() {
        let (world, colo, verified) = setup();
        let pools = RelayPools::build(&world, &colo, &verified);
        let mut rng = StdRng::seed_from_u64(9);
        let round = pools.sample_round(&world, 1, &mut rng);

        // Per facility at most 3 COR.
        let mut per_fac: BTreeMap<FacilityId, usize> = BTreeMap::new();
        for r in round.of_type(RelayType::Cor) {
            *per_fac
                .entry(r.facility.expect("COR has facility"))
                .or_default() += 1;
        }
        assert!(per_fac.values().all(|&n| n <= 3));

        // Per country exactly 1 RAR_eye / RAR_other.
        let mut eye_countries = std::collections::HashSet::new();
        for r in round.of_type(RelayType::RarEye) {
            assert!(eye_countries.insert(r.country), "duplicate RAR_eye country");
        }
        let mut other_countries = std::collections::HashSet::new();
        for r in round.of_type(RelayType::RarOther) {
            assert!(
                other_countries.insert(r.country),
                "duplicate RAR_other country"
            );
        }
    }

    #[test]
    fn rar_sets_are_disjoint_by_as() {
        let (world, colo, verified) = setup();
        let pools = RelayPools::build(&world, &colo, &verified);
        let eye_asns: std::collections::HashSet<Asn> = pools
            .rar_eye_by_country
            .values()
            .flatten()
            .map(|r| r.asn)
            .collect();
        for r in pools.rar_other_by_country.values().flatten() {
            // An AS can be eyeball in one country and "other" elsewhere,
            // but within the same country the sets must not overlap.
            let clash = verified
                .iter()
                .any(|v| v.asn == r.asn && v.country == r.country);
            assert!(
                !clash,
                "RAR_other contains verified tuple {:?}",
                (r.asn, r.country)
            );
        }
        // Sanity: some eyeball ASes exist.
        assert!(!eye_asns.is_empty());
    }

    #[test]
    fn planetlab_flakiness_varies_sample() {
        let (world, colo, verified) = setup();
        let pools = RelayPools::build(&world, &colo, &verified);
        let mut rng = StdRng::seed_from_u64(10);
        let counts: Vec<usize> = (0..6)
            .map(|round| {
                pools
                    .sample_round(&world, round, &mut rng)
                    .count(RelayType::Plr)
            })
            .collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(
            max > min,
            "availability churn should vary PLR counts: {counts:?}"
        );
    }

    #[test]
    fn cor_relays_point_at_facility_cities() {
        let (world, colo, verified) = setup();
        let pools = RelayPools::build(&world, &colo, &verified);
        for (fid, members) in &pools.cor_by_facility {
            let fcity = world.topo.facility(*fid).city;
            for r in members {
                assert_eq!(r.city, fcity);
                assert_eq!(r.rtype, RelayType::Cor);
            }
        }
    }
}
