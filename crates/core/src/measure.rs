//! Measurement primitives: medians, windows, stitching.
//!
//! §2.5 defines the paper's RTT estimator: within a 30-minute window,
//! send 6 single-packet pings 5 minutes apart; if at least 3 replies
//! arrive, the pair's RTT for the round is the **median** of the
//! replies (robust to the heavy spikes real networks produce); otherwise
//! the pair is unresponsive this round. A relayed path's RTT is the sum
//! of the two legs' medians ("stitching").

use rand::Rng;
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{HostId, Pinger};
use std::cell::RefCell;

thread_local! {
    /// Per-thread reply buffer shared by every window measured on this
    /// thread. A campaign measures millions of windows; reusing one
    /// buffer per worker removes a `Vec<f64>` allocation per pair per
    /// round from the hot loop.
    static WINDOW_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's (cleared) window scratch buffer. Do not
/// nest calls on one thread — the buffer is a single per-thread slot.
pub fn with_reply_scratch<T>(f: impl FnOnce(&mut Vec<f64>) -> T) -> T {
    WINDOW_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        f(&mut buf)
    })
}

/// Parameters of a measurement window.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Pings per window (paper: 6).
    pub pings: usize,
    /// Seconds between pings (paper: 300 s).
    pub interval_secs: f64,
    /// Minimum valid replies for a usable median (paper: 3).
    pub min_valid: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            pings: 6,
            interval_secs: 300.0,
            min_valid: 3,
        }
    }
}

/// Median of a slice. `None` for an empty slice. Even lengths average
/// the middle pair.
///
/// Runs once per ping window — millions of times per campaign — so
/// window-sized inputs (≤ 16 samples) use a stack buffer and a tiny
/// insertion sort, and larger ones select in O(n)
/// (`select_nth_unstable_by`) instead of sorting.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    if values.len() <= 16 {
        let mut buf = [0.0f64; 16];
        buf[..values.len()].copy_from_slice(values);
        Some(median_in_place(&mut buf[..values.len()]))
    } else {
        Some(median_in_place(&mut values.to_vec()))
    }
}

/// Median over a scratch buffer the caller lets us reorder.
///
/// Window-sized inputs (≤ 16, the overwhelmingly common case — every
/// §2.5 window has at most 6 replies) take an insertion sort:
/// `select_nth_unstable` carries pivot machinery that costs more than
/// sorting this few elements outright. Both branches return the same
/// order statistics, so which one runs is unobservable in results.
fn median_in_place(v: &mut [f64]) -> f64 {
    let n = v.len();
    if n <= 16 {
        for i in 1..n {
            let x = v[i];
            let mut j = i;
            while j > 0 && v[j - 1] > x {
                v[j] = v[j - 1];
                j -= 1;
            }
            v[j] = x;
        }
        return if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        };
    }
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("RTTs are finite");
    let (lower, &mut upper_mid, _) = v.select_nth_unstable_by(n / 2, cmp);
    if n % 2 == 1 {
        upper_mid
    } else {
        // The other middle element is the maximum of the left
        // partition select_nth already produced.
        let lower_mid = lower.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lower_mid + upper_mid) / 2.0
    }
}

/// The window verdict over a reply buffer the caller lets us reorder:
/// `None` when there are no replies or fewer than `min_valid`, the
/// selection-based median otherwise. This is [`median`] fused with the
/// §2.5 validity rule, minus `median`'s defensive copy — callers hand
/// over a scratch buffer they are done with.
pub fn window_median(replies: &mut [f64], min_valid: usize) -> Option<f64> {
    if replies.is_empty() || replies.len() < min_valid {
        return None;
    }
    Some(median_in_place(replies))
}

/// Measures one pair over a window: pings per [`WindowConfig`], median
/// if enough replies, `None` otherwise. Generic over [`Pinger`], so it
/// runs identically on a bare engine or a campaign's fault-carrying
/// handle. Replies land in the thread's scratch buffer
/// ([`with_reply_scratch`]), so steady-state windows allocate nothing.
pub fn measure_pair<P: Pinger, R: Rng + ?Sized>(
    engine: &P,
    src: HostId,
    dst: HostId,
    window_start: SimTime,
    cfg: &WindowConfig,
    rng: &mut R,
) -> Option<f64> {
    with_reply_scratch(|replies| {
        engine.ping_series_into(
            src,
            dst,
            window_start,
            cfg.pings,
            cfg.interval_secs,
            rng,
            replies,
        );
        window_median(replies, cfg.min_valid)
    })
}

/// Stitches a one-relay overlay path from its two leg medians
/// (§2.5 step 4): `RTT(src, relay, dst) = RTT(src, relay) + RTT(dst,
/// relay)`.
pub fn stitch(leg1_ms: f64, leg2_ms: f64) -> f64 {
    leg1_ms + leg2_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn median_large_slices_use_heap_path() {
        // 17+ elements exceed the stack buffer; both parities.
        let odd: Vec<f64> = (0..17).map(f64::from).rev().collect();
        assert_eq!(median(&odd), Some(8.0));
        let even: Vec<f64> = (0..18).map(f64::from).rev().collect();
        assert_eq!(median(&even), Some(8.5));
    }

    #[test]
    fn median_robust_to_one_spike() {
        let m = median(&[10.0, 10.2, 9.9, 10.1, 400.0, 10.0]).unwrap();
        assert!(m < 11.0, "median {m} should shrug off the spike");
    }

    #[test]
    fn window_median_applies_validity_rule_in_place() {
        assert_eq!(window_median(&mut [3.0, 1.0, 2.0], 3), Some(2.0));
        assert_eq!(window_median(&mut [4.0, 1.0, 2.0, 3.0], 3), Some(2.5));
        assert_eq!(window_median(&mut [3.0, 1.0], 3), None, "below min_valid");
        assert_eq!(window_median(&mut [], 0), None, "no replies, no median");
    }

    #[test]
    fn reply_scratch_is_cleared_between_windows() {
        with_reply_scratch(|b| b.extend([1.0, 2.0, 3.0]));
        with_reply_scratch(|b| assert!(b.is_empty(), "stale replies leaked"));
    }

    #[test]
    fn stitch_adds_legs() {
        assert_eq!(stitch(10.0, 15.5), 25.5);
        assert_eq!(stitch(0.0, 0.0), 0.0);
    }

    #[test]
    fn window_default_matches_paper() {
        let w = WindowConfig::default();
        assert_eq!(w.pings, 6);
        assert_eq!(w.interval_secs, 300.0);
        assert_eq!(w.min_valid, 3);
        // 6 pings every 5 minutes fit exactly in the 30-minute window.
        assert!(w.pings as f64 * w.interval_secs <= 1800.0 + 1e-9);
    }
}
