//! Planning layer of the measurement engine (§2.5 steps 1 and 3 as
//! *data*).
//!
//! A round is planned before anything is measured: which endpoints the
//! round samples, which direct pairs get a window, which pairs also get
//! a reverse window (the symmetry check), and which relays are in play.
//! The plan is pure data — no I/O, no ping engine, no clock — so it can
//! be inspected, serialized, or handed to any
//! [`MeasurementBackend`](crate::backend::MeasurementBackend).
//!
//! Feasibility (§2.4) needs the measured direct medians, so it forms a
//! second planning stage: [`plan_overlay`] folds direct results into an
//! [`OverlayPlan`] — the feasibility matrix and the deduplicated set of
//! (endpoint, relay) links worth measuring. Both stages are pure
//! functions; all randomness enters through the round RNG they are
//! given, never through measurement ordering.

use crate::backend::{MeasureTask, TaskKind};
use crate::eyeball::EndpointPool;
use crate::feasibility::is_feasible;
use crate::relays::{Relay, RelayPools};
use crate::workflow::CampaignConfig;
use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shortcuts_geo::{CityId, Continent, CountryCode, GeoPoint};
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::HostId;
use shortcuts_topology::Asn;
use std::collections::BTreeSet;

/// One endpoint of the round, with the location facts later stages
/// need (so they never have to reach back into the world).
#[derive(Debug, Clone)]
pub struct PlannedEndpoint {
    /// The endpoint's host.
    pub host: HostId,
    /// Country of the endpoint (one endpoint per country per round).
    pub country: CountryCode,
    /// City of the endpoint's host.
    pub city: CityId,
    /// Continent of that city.
    pub continent: Continent,
    /// Geographic location, for the §2.4 feasibility filter.
    pub location: GeoPoint,
}

/// One direct RAE pair scheduled for measurement.
#[derive(Debug, Clone, Copy)]
pub struct PlannedPair {
    /// Index of the source endpoint in [`RoundPlan::endpoints`].
    pub src: usize,
    /// Index of the destination endpoint (always `> src`).
    pub dst: usize,
    /// Whether the pair is also measured in the reverse direction
    /// (the paper's ping-direction symmetry sample).
    pub reverse: bool,
}

/// Everything one round will measure, decided up front.
#[derive(Debug, Clone)]
pub struct RoundPlan {
    /// Round index.
    pub round: u32,
    /// Start of the round's measurement window.
    pub t0: SimTime,
    /// The round's sampled endpoints.
    pub endpoints: Vec<PlannedEndpoint>,
    /// Direct pairs in deterministic `(src, dst)` order.
    pub pairs: Vec<PlannedPair>,
    /// The round's sampled relays (all types mixed; see
    /// [`Relay::rtype`]).
    pub relays: Vec<Relay>,
}

impl RoundPlan {
    /// Measurement tasks for every direct pair, in pair order.
    pub fn direct_tasks(&self) -> Vec<MeasureTask> {
        self.pairs
            .iter()
            .map(|p| MeasureTask {
                round: self.round,
                src: self.endpoints[p.src].host,
                dst: self.endpoints[p.dst].host,
                start: self.t0,
                kind: TaskKind::Direct,
            })
            .collect()
    }

    /// Reverse-direction tasks for the symmetry check, in pair order:
    /// the flagged pairs whose forward window actually produced a
    /// median (`direct` aligns with [`RoundPlan::pairs`]) — a pair
    /// that was unresponsive forward contributes nothing to the
    /// symmetry analysis, so its reverse window is never sent.
    pub fn reverse_tasks(&self, direct: &[Option<f64>]) -> Vec<MeasureTask> {
        assert_eq!(direct.len(), self.pairs.len(), "one result per pair");
        self.pairs
            .iter()
            .zip(direct)
            .filter(|(p, d)| p.reverse && d.is_some())
            .map(|(p, _)| MeasureTask {
                round: self.round,
                src: self.endpoints[p.dst].host,
                dst: self.endpoints[p.src].host,
                start: self.t0,
                kind: TaskKind::Reverse,
            })
            .collect()
    }
}

/// Every destination AS the campaign's measurement tasks can route
/// toward, deduplicated and in **priority order**: the endpoint-pool
/// ASes first (each direct pair needs tables toward both ends —
/// forward and return routes — so every window of every round touches
/// them), then the relay ASes (each overlay link needs the relay's
/// table, and its return route needs the endpoint's, already covered).
/// Each group is ascending, so the order is fully deterministic.
///
/// The pools are round-invariant — every round samples from them — so
/// this is the complete destination set of the whole campaign, known
/// before round 0. Handing it to `Router::precompute` builds all
/// tables data-parallel up front instead of serializing construction
/// behind the first round's pair-cache misses. Under a byte budget
/// `precompute` warms front-to-back and stops when the budget fills,
/// which is exactly why the hottest (endpoint) destinations lead.
pub fn warmup_destinations(endpoints: &EndpointPool<'_>, relays: &RelayPools) -> Vec<Asn> {
    let hot: BTreeSet<Asn> = endpoints.asns().into_iter().collect();
    let warm: BTreeSet<Asn> = relays
        .asns()
        .into_iter()
        .filter(|a| !hot.contains(a))
        .collect();
    hot.into_iter().chain(warm).collect()
}

/// The planning RNG for a round: one deterministic stream derived from
/// `(campaign seed, round)` and nothing else. This is what makes a
/// round's plan a pure function of its index — any round can be
/// planned at any time, in any order, on any thread, and the plan
/// comes out identical.
pub fn round_rng(campaign_seed: u64, round: u32) -> StdRng {
    StdRng::seed_from_u64(
        campaign_seed
            .wrapping_add(0x5EED)
            .wrapping_add(u64::from(round)),
    )
}

/// Plans round `round` of the campaign as a standalone pure function
/// of `(cfg.seed, round)`: derives the round's planning RNG via
/// [`round_rng`] and runs [`plan_round`]. Because nothing else feeds
/// in, all round plans can be produced up front, lazily, or
/// concurrently from worker threads — the sharded scheduler relies on
/// exactly this.
pub fn plan_round_for(
    world: &World,
    endpoints: &EndpointPool<'_>,
    relays: &RelayPools,
    cfg: &CampaignConfig,
    round: u32,
) -> RoundPlan {
    let mut rng = round_rng(cfg.seed, round);
    plan_round(world, endpoints, relays, cfg, round, &mut rng)
}

/// Plans one round: samples endpoints and relays, enumerates direct
/// pairs, and pre-draws the symmetry coin flips. Pure apart from the
/// RNG it is handed.
pub fn plan_round<R: Rng + ?Sized>(
    world: &World,
    endpoints: &EndpointPool<'_>,
    relays: &RelayPools,
    cfg: &CampaignConfig,
    round: u32,
    rng: &mut R,
) -> RoundPlan {
    let t0 = SimTime(f64::from(round) * cfg.round_interval_hours * 3600.0);

    // Step 1: endpoints (one eyeball AS per country, one probe per AS).
    let raes = endpoints.sample_round(rng);
    let endpoints: Vec<PlannedEndpoint> = raes
        .iter()
        .map(|p| {
            let h = world.hosts.get(p.host);
            PlannedEndpoint {
                host: p.host,
                country: p.country,
                city: h.city,
                continent: world.topo.cities.get(h.city).continent,
                location: h.location,
            }
        })
        .collect();

    // Every unordered pair gets a direct window; a sampled fraction is
    // flagged for the reverse direction as well.
    let mut pairs = Vec::with_capacity(endpoints.len() * (endpoints.len().saturating_sub(1)) / 2);
    for src in 0..endpoints.len() {
        for dst in (src + 1)..endpoints.len() {
            pairs.push(PlannedPair {
                src,
                dst,
                reverse: rng.gen_bool(cfg.symmetry_sample_prob),
            });
        }
    }

    // Step 3 (sampling half): the round's relays per type.
    let round_relays = relays.sample_round(world, round, rng);

    RoundPlan {
        round,
        t0,
        endpoints,
        pairs,
        relays: round_relays.relays,
    }
}

/// The second planning stage: which relays are feasible for which
/// pair, and which overlay links that requires measuring.
#[derive(Debug, Clone)]
pub struct OverlayPlan {
    /// Per direct pair (same order as [`RoundPlan::pairs`]): indices
    /// into [`RoundPlan::relays`] passing the §2.4 light-cone filter.
    pub feasible: Vec<Vec<u32>>,
    /// Deduplicated `(endpoint index, relay index)` links to measure,
    /// in ascending order.
    pub needed: Vec<(usize, u32)>,
}

impl OverlayPlan {
    /// Measurement tasks for every needed overlay link, in
    /// [`OverlayPlan::needed`] order.
    pub fn link_tasks(&self, plan: &RoundPlan) -> Vec<MeasureTask> {
        self.needed
            .iter()
            .map(|&(ei, ri)| MeasureTask {
                round: plan.round,
                src: plan.endpoints[ei].host,
                dst: plan.relays[ri as usize].host,
                start: plan.t0,
                kind: TaskKind::Overlay,
            })
            .collect()
    }
}

/// Plans the overlay stage from the direct results (`direct[i]` is the
/// median of `plan.pairs[i]`, `None` if the pair was unresponsive).
/// Pure: geometry and arithmetic only.
pub fn plan_overlay(plan: &RoundPlan, direct: &[Option<f64>]) -> OverlayPlan {
    assert_eq!(plan.pairs.len(), direct.len(), "one result per pair");
    let mut feasible: Vec<Vec<u32>> = vec![Vec::new(); plan.pairs.len()];
    // Used purely as an ordered set: BTreeSet dedups and yields the
    // deterministic ascending order the executor and stitcher rely on.
    let mut needed: BTreeSet<(usize, u32)> = BTreeSet::new();
    for (pair_idx, (pair, d)) in plan.pairs.iter().zip(direct).enumerate() {
        let Some(d) = *d else { continue };
        let si = &plan.endpoints[pair.src].location;
        let sj = &plan.endpoints[pair.dst].location;
        for (ri, relay) in plan.relays.iter().enumerate() {
            if is_feasible(si, sj, &relay.location, d) {
                feasible[pair_idx].push(ri as u32);
                needed.insert((pair.src, ri as u32));
                needed.insert((pair.dst, ri as u32));
            }
        }
    }
    OverlayPlan {
        feasible,
        needed: needed.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colo::{run_pipeline, ColoPipelineConfig};
    use crate::eyeball::select_eyeballs;
    use crate::world::WorldConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_fixture() -> (World, RoundPlan) {
        let world = World::build(&WorldConfig::small(), 31);
        let engine = world.shared().engine(Default::default());
        let vantage = world.looking_glasses.lgs()[0].host;
        let mut rng = StdRng::seed_from_u64(1);
        let colo = run_pipeline(
            &world,
            &*engine,
            vantage,
            SimTime(0.0),
            &ColoPipelineConfig::default(),
            &mut rng,
        );
        let verified = select_eyeballs(&world, 10.0).verified;
        let pool = EndpointPool::build(&world, &verified);
        let relays = RelayPools::build(&world, &colo, &verified);
        let cfg = CampaignConfig::small();
        let mut round_rng = StdRng::seed_from_u64(9);
        let plan = plan_round(&world, &pool, &relays, &cfg, 2, &mut round_rng);
        drop(engine);
        (world, plan)
    }

    #[test]
    fn pairs_are_ordered_and_complete() {
        let (_, plan) = plan_fixture();
        let n = plan.endpoints.len();
        assert_eq!(plan.pairs.len(), n * (n - 1) / 2);
        for w in plan.pairs.windows(2) {
            assert!((w[0].src, w[0].dst) < (w[1].src, w[1].dst));
        }
        for p in &plan.pairs {
            assert!(p.src < p.dst && p.dst < n);
        }
        assert_eq!(plan.t0, SimTime(2.0 * 12.0 * 3600.0));
    }

    #[test]
    fn tasks_mirror_the_plan() {
        let (_, plan) = plan_fixture();
        let direct = plan.direct_tasks();
        assert_eq!(direct.len(), plan.pairs.len());
        for (t, p) in direct.iter().zip(&plan.pairs) {
            assert_eq!(t.src, plan.endpoints[p.src].host);
            assert_eq!(t.dst, plan.endpoints[p.dst].host);
            assert_eq!(t.kind, TaskKind::Direct);
        }
        let all_ok: Vec<Option<f64>> = plan.pairs.iter().map(|_| Some(50.0)).collect();
        let reverse = plan.reverse_tasks(&all_ok);
        assert_eq!(
            reverse.len(),
            plan.pairs.iter().filter(|p| p.reverse).count()
        );
        assert!(!reverse.is_empty(), "10% of hundreds of pairs");
        for t in &reverse {
            assert_eq!(t.kind, TaskKind::Reverse);
        }
        // Unresponsive forward pairs get no reverse window at all.
        let none: Vec<Option<f64>> = plan.pairs.iter().map(|_| None).collect();
        assert!(plan.reverse_tasks(&none).is_empty());
    }

    #[test]
    fn overlay_plan_is_deduplicated_and_sorted() {
        let (_, plan) = plan_fixture();
        // Synthetic direct medians: a generous RTT everywhere makes
        // many relays feasible and exercises the dedup.
        let direct: Vec<Option<f64>> = plan.pairs.iter().map(|_| Some(250.0)).collect();
        let oplan = plan_overlay(&plan, &direct);
        assert_eq!(oplan.feasible.len(), plan.pairs.len());
        assert!(!oplan.needed.is_empty());
        for w in oplan.needed.windows(2) {
            assert!(w[0] < w[1], "needed links must be sorted and unique");
        }
        // Every feasible (pair, relay) contributed both of its links.
        let needed: BTreeSet<(usize, u32)> = oplan.needed.iter().copied().collect();
        for (pair_idx, rels) in oplan.feasible.iter().enumerate() {
            let p = plan.pairs[pair_idx];
            for &ri in rels {
                assert!(needed.contains(&(p.src, ri)));
                assert!(needed.contains(&(p.dst, ri)));
            }
        }
    }

    #[test]
    fn unresponsive_pairs_need_no_links() {
        let (_, plan) = plan_fixture();
        let direct: Vec<Option<f64>> = plan.pairs.iter().map(|_| None).collect();
        let oplan = plan_overlay(&plan, &direct);
        assert!(oplan.needed.is_empty());
        assert!(oplan.feasible.iter().all(|f| f.is_empty()));
    }

    #[test]
    fn plan_round_for_is_pure_in_seed_and_round() {
        let (world, _) = plan_fixture();
        let verified = select_eyeballs(&world, 10.0).verified;
        let pool = EndpointPool::build(&world, &verified);
        let engine = world.shared().engine(Default::default());
        let vantage = world.looking_glasses.lgs()[0].host;
        let mut rng = StdRng::seed_from_u64(1);
        let colo = run_pipeline(
            &world,
            &*engine,
            vantage,
            SimTime(0.0),
            &ColoPipelineConfig::default(),
            &mut rng,
        );
        let relays = RelayPools::build(&world, &colo, &verified);
        let cfg = CampaignConfig::small();
        // Standalone planning must agree with explicit-RNG planning on
        // the derived stream, regardless of the order rounds are
        // planned in.
        for round in [2, 0, 1] {
            let standalone = plan_round_for(&world, &pool, &relays, &cfg, round);
            let mut rng = round_rng(cfg.seed, round);
            let explicit = plan_round(&world, &pool, &relays, &cfg, round, &mut rng);
            assert_eq!(standalone.round, explicit.round);
            assert_eq!(standalone.endpoints.len(), explicit.endpoints.len());
            for (a, b) in standalone.endpoints.iter().zip(&explicit.endpoints) {
                assert_eq!(a.host, b.host);
            }
            for (a, b) in standalone.pairs.iter().zip(&explicit.pairs) {
                assert_eq!((a.src, a.dst, a.reverse), (b.src, b.dst, b.reverse));
            }
            for (a, b) in standalone.relays.iter().zip(&explicit.relays) {
                assert_eq!(a.host, b.host);
            }
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let (world, _) = plan_fixture();
        let verified = select_eyeballs(&world, 10.0).verified;
        let pool = EndpointPool::build(&world, &verified);
        let engine = world.shared().engine(Default::default());
        let vantage = world.looking_glasses.lgs()[0].host;
        let mut rng = StdRng::seed_from_u64(1);
        let colo = run_pipeline(
            &world,
            &*engine,
            vantage,
            SimTime(0.0),
            &ColoPipelineConfig::default(),
            &mut rng,
        );
        let relays = RelayPools::build(&world, &colo, &verified);
        let cfg = CampaignConfig::small();
        let p1 = plan_round(
            &world,
            &pool,
            &relays,
            &cfg,
            0,
            &mut StdRng::seed_from_u64(5),
        );
        let p2 = plan_round(
            &world,
            &pool,
            &relays,
            &cfg,
            0,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(p1.endpoints.len(), p2.endpoints.len());
        for (a, b) in p1.endpoints.iter().zip(&p2.endpoints) {
            assert_eq!(a.host, b.host);
        }
        for (a, b) in p1.relays.iter().zip(&p2.relays) {
            assert_eq!(a.host, b.host);
        }
        for (a, b) in p1.pairs.iter().zip(&p2.pairs) {
            assert_eq!(a.reverse, b.reverse);
        }
    }
}
