//! Fig. 3 — % of total cases improved vs. number of top relays.
//!
//! Relays of each type are ranked by **frequency of improvement** (how
//! many cases they improved). The curve at x = k is the fraction of all
//! cases improved by *at least one of the top-k relays*. The paper's
//! headline: the top-10 COR relays (in 6 facilities) already improve
//! ~58 % of all cases — matching the best other type's performance with
//! two orders of magnitude fewer relays.

use crate::relays::RelayType;
use crate::workflow::CampaignResults;
use shortcuts_netsim::HostId;
use std::collections::{HashMap, HashSet};

/// Ranking and coverage curve for one relay type.
#[derive(Debug, Clone)]
pub struct TopRelayAnalysis {
    /// The relay type.
    pub rtype: RelayType,
    /// Relays ranked by improvement frequency (most frequent first),
    /// with their improvement counts.
    pub ranked: Vec<(HostId, usize)>,
    /// `coverage[k-1]` = fraction of total cases improved by the top-k
    /// relays together.
    pub coverage: Vec<f64>,
    /// Total number of cases.
    pub total_cases: usize,
}

impl TopRelayAnalysis {
    /// Computes the ranking and coverage curve for `rtype`, with the
    /// curve cut at `max_k` relays.
    pub fn compute(results: &CampaignResults, rtype: RelayType, max_k: usize) -> Self {
        let total = results.total_cases().max(1);

        // Per relay: the set of case indexes it improved.
        let mut improved_cases: HashMap<HostId, Vec<u32>> = HashMap::new();
        for (case_idx, c) in results.cases.iter().enumerate() {
            for &(host, _) in &c.outcome(rtype).improving {
                improved_cases
                    .entry(host)
                    .or_default()
                    .push(case_idx as u32);
            }
        }

        let mut ranked: Vec<(HostId, usize)> =
            improved_cases.iter().map(|(&h, v)| (h, v.len())).collect();
        // Frequency desc, host id asc for determinism.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut coverage = Vec::with_capacity(max_k.min(ranked.len()));
        let mut covered: HashSet<u32> = HashSet::new();
        for (host, _) in ranked.iter().take(max_k) {
            covered.extend(improved_cases[host].iter().copied());
            coverage.push(covered.len() as f64 / total as f64);
        }

        TopRelayAnalysis {
            rtype,
            ranked,
            coverage,
            total_cases: total,
        }
    }

    /// Coverage of the top-k relays (fraction of total cases), or the
    /// final coverage if fewer relays exist.
    pub fn coverage_at(&self, k: usize) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        let idx = k.min(self.coverage.len()).saturating_sub(1);
        self.coverage[idx]
    }

    /// Number of relays needed to reach `fraction` of the type's final
    /// coverage, or `None` if never reached.
    pub fn relays_for_fraction(&self, fraction: f64) -> Option<usize> {
        let target = self.coverage.last()? * fraction;
        self.coverage
            .iter()
            .position(|&c| c >= target)
            .map(|i| i + 1)
    }

    /// The top-k relay hosts.
    pub fn top_hosts(&self, k: usize) -> Vec<HostId> {
        self.ranked.iter().take(k).map(|&(h, _)| h).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::improvement::tests::synthetic_results;

    #[test]
    fn coverage_is_monotone() {
        let r = synthetic_results();
        let a = TopRelayAnalysis::compute(&r, RelayType::Cor, 100);
        for w in a.coverage.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn single_heavy_hitter_dominates() {
        let r = synthetic_results();
        let a = TopRelayAnalysis::compute(&r, RelayType::Cor, 100);
        // COR relay host 100 improves 2 of 4 cases.
        assert_eq!(a.ranked.len(), 1);
        assert_eq!(a.ranked[0].1, 2);
        assert_eq!(a.coverage_at(1), 0.5);
        assert_eq!(a.coverage_at(50), 0.5);
        assert_eq!(a.top_hosts(3).len(), 1);
    }

    #[test]
    fn empty_type_has_empty_curve() {
        let r = synthetic_results();
        let a = TopRelayAnalysis::compute(&r, RelayType::RarEye, 100);
        assert!(a.ranked.is_empty());
        assert_eq!(a.coverage_at(10), 0.0);
        assert!(a.relays_for_fraction(0.75).is_none());
    }

    #[test]
    fn relays_for_fraction_finds_knee() {
        let r = synthetic_results();
        let a = TopRelayAnalysis::compute(&r, RelayType::Cor, 100);
        assert_eq!(a.relays_for_fraction(0.75), Some(1));
        assert_eq!(a.relays_for_fraction(1.0), Some(1));
    }
}
