//! Fig. 2 — CDF of latency improvements per relay type, plus the
//! headline percentages.
//!
//! For each case (RAE pair, round) and each type, the *best* relay of
//! that type is compared with the direct path. The paper reports:
//! improved-case fractions of 76 % (COR), 58 % (RAR_other), 43 % (PLR),
//! 35 % (RAR_eye); median improvements of 12–14 ms; and >100 ms
//! improvements in 6 % of the improved COR/RAR_other cases.

use crate::analysis::stats;
use crate::relays::RelayType;
use crate::workflow::CampaignResults;

/// Summary of one relay type's improvements.
#[derive(Debug, Clone)]
pub struct TypeImprovement {
    /// The relay type.
    pub rtype: RelayType,
    /// Fraction of *total* cases where the type's best relay beat the
    /// direct path.
    pub improved_fraction: f64,
    /// Improvements (ms) of the improved cases (best relay per case).
    pub improvements_ms: Vec<f64>,
    /// Median improvement among improved cases, ms.
    pub median_improvement_ms: f64,
    /// Fraction of improved cases with improvement > 100 ms.
    pub over_100ms_fraction: f64,
    /// Median number of improving relays per improved case (the paper's
    /// "redundancy" observation: median of 8 for COR).
    pub median_improving_relays: f64,
}

/// The full Fig. 2 analysis.
#[derive(Debug, Clone)]
pub struct ImprovementAnalysis {
    /// Per-type summaries in [`RelayType::ALL`] order.
    pub per_type: Vec<TypeImprovement>,
    /// Total number of cases.
    pub total_cases: usize,
    /// Fraction of cases improved by at least one relay of any type.
    pub any_improved_fraction: f64,
}

impl ImprovementAnalysis {
    /// Runs the analysis.
    pub fn compute(results: &CampaignResults) -> Self {
        let total = results.total_cases().max(1);
        let mut per_type = Vec::with_capacity(4);
        let mut any_improved = 0usize;

        for c in &results.cases {
            if RelayType::ALL
                .iter()
                .any(|t| c.outcome(*t).improved(c.direct_ms))
            {
                any_improved += 1;
            }
        }

        for t in RelayType::ALL {
            let mut improvements = Vec::new();
            let mut improving_counts = Vec::new();
            for c in &results.cases {
                let out = c.outcome(t);
                if let Some(delta) = out.best_improvement(c.direct_ms) {
                    if delta > 0.0 {
                        improvements.push(delta);
                        improving_counts.push(out.improving.len() as f64);
                    }
                }
            }
            let improved_fraction = improvements.len() as f64 / total as f64;
            let median_improvement_ms = stats::percentile(&improvements, 50.0).unwrap_or(0.0);
            let over_100ms_fraction = stats::fraction_above(&improvements, 100.0);
            let median_improving_relays = stats::percentile(&improving_counts, 50.0).unwrap_or(0.0);
            per_type.push(TypeImprovement {
                rtype: t,
                improved_fraction,
                improvements_ms: improvements,
                median_improvement_ms,
                over_100ms_fraction,
                median_improving_relays,
            });
        }

        ImprovementAnalysis {
            per_type,
            total_cases: total,
            any_improved_fraction: any_improved as f64 / total as f64,
        }
    }

    /// Summary for one type.
    pub fn for_type(&self, t: RelayType) -> &TypeImprovement {
        &self.per_type[t.index()]
    }

    /// CDF of a type's improvements sampled at `xs` (Fig. 2's series).
    pub fn cdf(&self, t: RelayType, xs: &[f64]) -> Vec<(f64, f64)> {
        stats::cdf_at(&self.for_type(t).improvements_ms, xs)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::workflow::{CaseRecord, TypeOutcome};
    use shortcuts_geo::CountryCode;
    use shortcuts_netsim::HostId;
    use std::collections::HashMap;

    /// Builds a minimal synthetic results object with controlled
    /// outcomes: COR improves cases 0 and 1, PLR improves case 0 only.
    pub(crate) fn synthetic_results() -> CampaignResults {
        use crate::colo::{ColoPool, FilterFunnel};
        let cc = |s| CountryCode::new(s).unwrap();
        let mk_case = |round: u32, cor_best: Option<f64>, plr_best: Option<f64>| {
            let mut outcomes: [TypeOutcome; 4] = Default::default();
            if let Some(v) = cor_best {
                outcomes[RelayType::Cor.index()].best = Some((HostId(100), v));
                if v < 100.0 {
                    outcomes[RelayType::Cor.index()]
                        .improving
                        .push((HostId(100), (100.0 - v) as f32));
                }
            }
            if let Some(v) = plr_best {
                outcomes[RelayType::Plr.index()].best = Some((HostId(200), v));
                if v < 100.0 {
                    outcomes[RelayType::Plr.index()]
                        .improving
                        .push((HostId(200), (100.0 - v) as f32));
                }
            }
            CaseRecord {
                round,
                src: HostId(1),
                dst: HostId(2),
                src_country: cc("DE"),
                dst_country: cc("FR"),
                intercontinental: false,
                direct_ms: 100.0,
                outcomes,
            }
        };
        CampaignResults {
            cases: vec![
                mk_case(0, Some(80.0), Some(95.0)),  // both improve
                mk_case(0, Some(85.0), Some(120.0)), // only COR improves
                mk_case(1, Some(130.0), None),       // nobody improves
                mk_case(1, None, None),              // nothing feasible
            ],
            direct_history: HashMap::new(),
            link_history: HashMap::new(),
            symmetry_samples: vec![],
            relay_meta: HashMap::new(),
            colo_pool: ColoPool {
                relays: vec![],
                funnel: FilterFunnel {
                    initial: 0,
                    single_facility: 0,
                    pingable: 0,
                    ownership: 0,
                    presence: 0,
                    geolocated: 0,
                },
            },
            pings_sent: 0,
            unresponsive_pairs: 0,
            avg_endpoints: 0.0,
            avg_relays: [0.0; 4],
        }
    }

    #[test]
    fn fractions_count_total_cases() {
        let r = synthetic_results();
        let a = ImprovementAnalysis::compute(&r);
        assert_eq!(a.total_cases, 4);
        assert_eq!(a.for_type(RelayType::Cor).improved_fraction, 0.5);
        assert_eq!(a.for_type(RelayType::Plr).improved_fraction, 0.25);
        assert_eq!(a.for_type(RelayType::RarEye).improved_fraction, 0.0);
        assert_eq!(a.any_improved_fraction, 0.5);
    }

    #[test]
    fn improvements_are_best_relay_deltas() {
        let r = synthetic_results();
        let a = ImprovementAnalysis::compute(&r);
        let cor = a.for_type(RelayType::Cor);
        let mut imps = cor.improvements_ms.clone();
        imps.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(imps, vec![15.0, 20.0]);
        assert_eq!(cor.median_improvement_ms, 17.5);
        assert_eq!(cor.over_100ms_fraction, 0.0);
    }

    #[test]
    fn cdf_reaches_one() {
        let r = synthetic_results();
        let a = ImprovementAnalysis::compute(&r);
        let cdf = a.cdf(RelayType::Cor, &[0.0, 15.0, 20.0, 50.0]);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf[0].1, 0.0);
    }
}
