//! The VoIP analysis — paths above the 320 ms quality threshold.
//!
//! ITU G.114 / Cisco guidance treats ~300–320 ms RTT as the point where
//! VoIP quality degrades badly. The paper reports that 19 % of direct
//! paths exceed 320 ms, and that employing only COR relays (taking the
//! relayed path when it is faster) drops that to 11 %.

use crate::relays::RelayType;
use crate::workflow::CampaignResults;

/// The 320 ms VoIP quality threshold (RTT), ms.
pub const VOIP_THRESHOLD_MS: f64 = 320.0;

/// Result of the VoIP threshold analysis.
#[derive(Debug, Clone, Copy)]
pub struct VoipAnalysis {
    /// Threshold used, ms.
    pub threshold_ms: f64,
    /// Fraction of direct paths above the threshold.
    pub direct_over: f64,
    /// Fraction of paths above the threshold when each case uses
    /// min(direct, best COR relay).
    pub with_cor_over: f64,
    /// Total cases.
    pub total_cases: usize,
}

impl VoipAnalysis {
    /// Runs the analysis at the standard 320 ms threshold.
    pub fn compute(results: &CampaignResults) -> Self {
        Self::compute_at(results, VOIP_THRESHOLD_MS)
    }

    /// Runs the analysis at a custom threshold.
    pub fn compute_at(results: &CampaignResults, threshold_ms: f64) -> Self {
        let total = results.total_cases().max(1);
        let mut direct_over = 0usize;
        let mut with_cor_over = 0usize;
        for c in &results.cases {
            let direct_bad = c.direct_ms > threshold_ms;
            if direct_bad {
                direct_over += 1;
            }
            let effective = match c.outcome(RelayType::Cor).best {
                Some((_, rtt)) => c.direct_ms.min(rtt),
                None => c.direct_ms,
            };
            if effective > threshold_ms {
                with_cor_over += 1;
            }
        }
        VoipAnalysis {
            threshold_ms,
            direct_over: direct_over as f64 / total as f64,
            with_cor_over: with_cor_over as f64 / total as f64,
            total_cases: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Campaign, CampaignConfig};
    use crate::world::{World, WorldConfig};

    fn results() -> CampaignResults {
        let world = World::build(&WorldConfig::small(), 51);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        Campaign::new(&world, cfg).run()
    }

    #[test]
    fn cor_never_increases_bad_fraction() {
        let r = results();
        let v = VoipAnalysis::compute(&r);
        assert!(v.with_cor_over <= v.direct_over + 1e-12);
        assert!((0.0..=1.0).contains(&v.direct_over));
    }

    #[test]
    fn lower_threshold_catches_more_paths() {
        let r = results();
        let strict = VoipAnalysis::compute_at(&r, 100.0);
        let lax = VoipAnalysis::compute_at(&r, 500.0);
        assert!(strict.direct_over >= lax.direct_over);
    }

    #[test]
    fn some_paths_are_bad_some_good() {
        let r = results();
        let v = VoipAnalysis::compute_at(&r, 150.0);
        // In a global endpoint set there should be both fast and slow
        // direct paths around 150 ms.
        assert!(v.direct_over > 0.0, "no slow paths at all?");
        assert!(v.direct_over < 1.0, "every path slow?");
    }
}
