//! §3 — measurement results: one submodule per figure, table or in-text
//! claim.
//!
//! | artifact | module |
//! |---|---|
//! | Fig. 2 (CDF of improvements per type) | [`improvement`] |
//! | Fig. 3 (% improved vs. number of top relays) | [`top_relays`] |
//! | Fig. 4 (% improved vs. threshold, top-10 vs all) | [`threshold`] |
//! | Table 1 (top facilities) | [`facilities`] |
//! | "Changing Countries and Paths" | [`country`] |
//! | VoIP / 320 ms analysis | [`voip`] |
//! | "Stability over Time" (CV) | [`stability`] |
//! | ping-direction symmetry check | [`symmetry`] |
//! | shared numeric helpers | [`stats`] |

pub mod country;
pub mod facilities;
pub mod improvement;
pub mod stability;
pub mod stats;
pub mod symmetry;
pub mod threshold;
pub mod top_relays;
pub mod voip;
