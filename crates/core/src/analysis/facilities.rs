//! Table 1 — the facilities hosting the top COR relays, with PeeringDB
//! enrichment.
//!
//! The paper ranks the top-20 COR relays by frequency of presence in
//! improved paths, groups them by facility (only 10 facilities contain
//! all 20) and reports, per facility: the percentage of improved cases
//! it appears in, city/country, number of colocated networks, number of
//! IXPs, cloud services, and whether it is in PeeringDB's global top-10
//! by colocated networks.

use crate::analysis::top_relays::TopRelayAnalysis;
use crate::relays::RelayType;
use crate::workflow::CampaignResults;
use crate::world::World;
use shortcuts_topology::FacilityId;
use std::collections::{HashMap, HashSet};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct FacilityRow {
    /// The facility.
    pub facility: FacilityId,
    /// Facility name.
    pub name: String,
    /// Percentage of COR-improved cases in which one of this facility's
    /// top relays appears (the paper's "% of Improved Cases").
    pub improved_pct: f64,
    /// City name.
    pub city: String,
    /// Country code.
    pub country: String,
    /// Number of colocated networks (PeeringDB).
    pub net_count: usize,
    /// Number of IXPs present (PeeringDB).
    pub ixp_count: usize,
    /// Cloud services available on site.
    pub offers_cloud: bool,
    /// Facility in PeeringDB's global top-10 by colocated networks.
    pub pdb_top10: bool,
}

/// The Table 1 analysis.
#[derive(Debug, Clone)]
pub struct FacilityTable {
    /// Rows sorted by `improved_pct` descending.
    pub rows: Vec<FacilityRow>,
    /// How many top relays were considered (paper: 20).
    pub top_relays_considered: usize,
}

impl FacilityTable {
    /// Builds Table 1 from the campaign's results: take the top
    /// `top_relays` COR relays, group by facility, enrich from
    /// PeeringDB.
    pub fn compute(world: &World, results: &CampaignResults, top_relays: usize) -> Self {
        let ranking = TopRelayAnalysis::compute(results, RelayType::Cor, top_relays);
        let top_hosts = ranking.top_hosts(top_relays);
        let top_set: HashSet<_> = top_hosts.iter().copied().collect();

        // Facility of each top relay.
        let mut relay_facility: HashMap<_, FacilityId> = HashMap::new();
        for &host in &top_hosts {
            if let Some(meta) = results.relay_meta.get(&host) {
                if let Some(f) = meta.facility {
                    relay_facility.insert(host, f);
                }
            }
        }

        // Count, per facility, the COR-improved cases in which any of
        // its top relays improves.
        let mut improved_case_total = 0usize;
        let mut per_facility_cases: HashMap<FacilityId, usize> = HashMap::new();
        for c in &results.cases {
            let improving = &c.outcome(RelayType::Cor).improving;
            if improving.is_empty() {
                continue;
            }
            improved_case_total += 1;
            let mut facilities_here: HashSet<FacilityId> = HashSet::new();
            for &(host, _) in improving {
                if top_set.contains(&host) {
                    if let Some(&f) = relay_facility.get(&host) {
                        facilities_here.insert(f);
                    }
                }
            }
            for f in facilities_here {
                *per_facility_cases.entry(f).or_default() += 1;
            }
        }

        let mut rows: Vec<FacilityRow> = per_facility_cases
            .into_iter()
            .map(|(fid, count)| {
                let pdb = world.peeringdb.facility(fid);
                let topo_f = world.topo.facility(fid);
                let city = world.topo.cities.get(topo_f.city);
                FacilityRow {
                    facility: fid,
                    name: topo_f.name.clone(),
                    improved_pct: 100.0 * count as f64 / improved_case_total.max(1) as f64,
                    city: city.name.to_string(),
                    country: city.country.to_string(),
                    net_count: pdb.map_or(0, |p| p.net_count),
                    ixp_count: pdb.map_or(0, |p| p.ixp_count),
                    offers_cloud: pdb.is_some_and(|p| p.offers_cloud),
                    pdb_top10: world.peeringdb.is_top10(fid),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.improved_pct
                .partial_cmp(&a.improved_pct)
                .expect("finite")
                .then(a.facility.0.cmp(&b.facility.0))
        });

        FacilityTable {
            rows,
            top_relays_considered: top_relays,
        }
    }

    /// Number of distinct facilities hosting the top relays (paper: 10
    /// facilities for the top 20 relays).
    pub fn facility_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Campaign, CampaignConfig};
    use crate::world::{World, WorldConfig};

    fn run() -> (World, CampaignResults) {
        let world = World::build(&WorldConfig::small(), 31);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        let results = Campaign::new(&world, cfg).run();
        (world, results)
    }

    #[test]
    fn table_has_enriched_rows() {
        let (world, results) = run();
        let table = FacilityTable::compute(&world, &results, 20);
        assert!(!table.rows.is_empty(), "no facilities in Table 1");
        assert!(table.facility_count() <= 20);
        for row in &table.rows {
            assert!(row.improved_pct > 0.0 && row.improved_pct <= 100.0);
            assert!(row.net_count > 0, "facility without members in Table 1");
            assert!(!row.city.is_empty());
        }
    }

    #[test]
    fn rows_sorted_by_improvement() {
        let (world, results) = run();
        let table = FacilityTable::compute(&world, &results, 20);
        for w in table.rows.windows(2) {
            assert!(w[0].improved_pct >= w[1].improved_pct);
        }
    }

    #[test]
    fn fewer_facilities_than_relays() {
        let (world, results) = run();
        let table = FacilityTable::compute(&world, &results, 20);
        // The paper's observation: top-20 relays concentrate in ~10
        // facilities. At small scale, just require concentration.
        assert!(table.facility_count() <= table.top_relays_considered);
    }
}
