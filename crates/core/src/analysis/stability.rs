//! "Stability over Time" — coefficient of variation of pair RTTs and
//! per-round consistency of the headline result.
//!
//! The paper computes, for every direct and relayed pair, the CV of its
//! median RTTs across rounds (stddev / mean) and finds CV < 10 % for
//! 90 % of pairs — overlays are stable enough to be usable. It also
//! checks that COR wins >75 % of cases in *every* round, not just in
//! aggregate.

use crate::analysis::stats;
use crate::relays::RelayType;
use crate::workflow::CampaignResults;
use std::collections::HashMap;

/// CV distribution over measured pairs.
#[derive(Debug, Clone)]
pub struct StabilityAnalysis {
    /// CVs of direct pairs with at least `min_samples` rounds.
    pub direct_cvs: Vec<f64>,
    /// CVs of overlay links with at least `min_samples` rounds.
    pub link_cvs: Vec<f64>,
    /// Minimum samples per pair required.
    pub min_samples: usize,
}

impl StabilityAnalysis {
    /// Computes CVs over all pair histories with ≥ `min_samples`
    /// observations.
    pub fn compute(results: &CampaignResults, min_samples: usize) -> Self {
        let cvs = |hist: &HashMap<_, Vec<f64>>| {
            let mut v: Vec<f64> = hist
                .values()
                .filter(|h| h.len() >= min_samples)
                .filter_map(|h| stats::coefficient_of_variation(h))
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v
        };
        StabilityAnalysis {
            direct_cvs: cvs(&results.direct_history),
            link_cvs: cvs(&results.link_history),
            min_samples,
        }
    }

    /// Fraction of all pairs (direct + links) with CV below `cv`.
    pub fn fraction_below(&self, cv: f64) -> f64 {
        let total = self.direct_cvs.len() + self.link_cvs.len();
        if total == 0 {
            return 0.0;
        }
        let below = self.direct_cvs.iter().filter(|&&c| c < cv).count()
            + self.link_cvs.iter().filter(|&&c| c < cv).count();
        below as f64 / total as f64
    }

    /// Maximum CV observed.
    pub fn max_cv(&self) -> f64 {
        self.direct_cvs
            .iter()
            .chain(self.link_cvs.iter())
            .fold(0.0_f64, |a, &b| a.max(b))
    }
}

/// Per-round improved fraction for one relay type ("consistent pattern
/// over time").
pub fn per_round_improved_fraction(results: &CampaignResults, rtype: RelayType) -> Vec<f64> {
    let mut per_round: HashMap<u32, (usize, usize)> = HashMap::new();
    for c in &results.cases {
        let e = per_round.entry(c.round).or_default();
        e.0 += 1;
        if c.outcome(rtype).improved(c.direct_ms) {
            e.1 += 1;
        }
    }
    let mut rounds: Vec<u32> = per_round.keys().copied().collect();
    rounds.sort_unstable();
    rounds
        .into_iter()
        .map(|r| {
            let (total, improved) = per_round[&r];
            improved as f64 / total.max(1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Campaign, CampaignConfig};
    use crate::world::{World, WorldConfig};

    fn results(rounds: u32) -> CampaignResults {
        let world = World::build(&WorldConfig::small(), 61);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = rounds;
        Campaign::new(&world, cfg).run()
    }

    #[test]
    fn cvs_are_small_for_stable_overlays() {
        let r = results(4);
        let s = StabilityAnalysis::compute(&r, 3);
        assert!(!s.direct_cvs.is_empty(), "no direct pairs with 3 samples");
        // The simulator's jitter is mild relative to base RTTs: most
        // pairs should sit below 10% CV like the paper's 90%.
        assert!(
            s.fraction_below(0.10) > 0.6,
            "only {:.0}% below 10% CV",
            100.0 * s.fraction_below(0.10)
        );
        assert!(s.max_cv() < 1.0, "CV above 100% indicates a bug");
    }

    #[test]
    fn min_samples_filters_pairs() {
        let r = results(3);
        let strict = StabilityAnalysis::compute(&r, 3);
        let lax = StabilityAnalysis::compute(&r, 1);
        assert!(lax.direct_cvs.len() >= strict.direct_cvs.len());
    }

    #[test]
    fn per_round_fractions_cover_all_rounds() {
        let r = results(3);
        let fracs = per_round_improved_fraction(&r, RelayType::Cor);
        assert_eq!(fracs.len(), 3);
        for f in fracs {
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
