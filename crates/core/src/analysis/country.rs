//! "Changing Countries and Paths" — does relaying through a *different
//! country* help more?
//!
//! The paper's reasoning: BGP path inflation hits international paths;
//! a relay in a third country forces the discovery of alternate,
//! non-inflated paths. Empirically: for COR, the min-latency relay
//! improves the direct path in 75 % of cases when it is in a different
//! country than both endpoints, vs. 50 % when it shares a country with
//! one endpoint.

use crate::relays::RelayType;
use crate::workflow::CampaignResults;

/// Improvement rates split by relay-country relationship.
#[derive(Debug, Clone, Copy)]
pub struct CountryAnalysis {
    /// The relay type analyzed.
    pub rtype: RelayType,
    /// Cases whose best (min-latency) relay is in a different country
    /// than both endpoints.
    pub different_country_cases: usize,
    /// ... of which improved.
    pub different_country_improved: usize,
    /// Cases whose best relay shares a country with an endpoint.
    pub same_country_cases: usize,
    /// ... of which improved.
    pub same_country_improved: usize,
}

impl CountryAnalysis {
    /// Runs the analysis for one relay type.
    pub fn compute(results: &CampaignResults, rtype: RelayType) -> Self {
        let mut diff = (0usize, 0usize);
        let mut same = (0usize, 0usize);
        for c in &results.cases {
            let out = c.outcome(rtype);
            let Some((host, rtt)) = out.best else {
                continue;
            };
            let Some(meta) = results.relay_meta.get(&host) else {
                continue;
            };
            let changes_country = meta.country != c.src_country && meta.country != c.dst_country;
            let improved = rtt < c.direct_ms;
            let bucket = if changes_country {
                &mut diff
            } else {
                &mut same
            };
            bucket.0 += 1;
            if improved {
                bucket.1 += 1;
            }
        }
        CountryAnalysis {
            rtype,
            different_country_cases: diff.0,
            different_country_improved: diff.1,
            same_country_cases: same.0,
            same_country_improved: same.1,
        }
    }

    /// Improvement rate when the relay changes country.
    pub fn different_country_rate(&self) -> f64 {
        rate(
            self.different_country_improved,
            self.different_country_cases,
        )
    }

    /// Improvement rate when the relay shares a country with an
    /// endpoint.
    pub fn same_country_rate(&self) -> f64 {
        rate(self.same_country_improved, self.same_country_cases)
    }
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Fraction of cases whose endpoints are on different continents
/// (paper: 74 %, "a set conducive to path inflation").
pub fn intercontinental_fraction(results: &CampaignResults) -> f64 {
    if results.cases.is_empty() {
        return 0.0;
    }
    results.cases.iter().filter(|c| c.intercontinental).count() as f64 / results.cases.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Campaign, CampaignConfig};
    use crate::world::{World, WorldConfig};

    fn results() -> CampaignResults {
        let world = World::build(&WorldConfig::small(), 41);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        Campaign::new(&world, cfg).run()
    }

    #[test]
    fn rates_are_probabilities() {
        let r = results();
        for t in RelayType::ALL {
            let a = CountryAnalysis::compute(&r, t);
            assert!((0.0..=1.0).contains(&a.different_country_rate()));
            assert!((0.0..=1.0).contains(&a.same_country_rate()));
            assert!(a.different_country_improved <= a.different_country_cases);
            assert!(a.same_country_improved <= a.same_country_cases);
        }
    }

    #[test]
    fn cor_crossing_countries_helps() {
        let r = results();
        let a = CountryAnalysis::compute(&r, RelayType::Cor);
        // The paper's effect direction: different-country relays win
        // more often. Require the direction (with slack for small
        // worlds) only when both buckets have data.
        if a.different_country_cases > 20 && a.same_country_cases > 20 {
            assert!(
                a.different_country_rate() + 0.10 >= a.same_country_rate(),
                "diff {} vs same {}",
                a.different_country_rate(),
                a.same_country_rate()
            );
        }
    }

    #[test]
    fn intercontinental_fraction_is_high() {
        let r = results();
        let f = intercontinental_fraction(&r);
        // One endpoint per country worldwide: most pairs cross
        // continents (paper: 74%).
        assert!(f > 0.5, "intercontinental fraction {f}");
        assert!(f <= 1.0);
    }
}
