//! Fig. 4 — % of total cases improved vs. improvement threshold, for
//! top-10 and all relays of each type.
//!
//! For every threshold x, the curve gives the fraction of *total* cases
//! whose best improvement (within the chosen relay subset) exceeds x ms.
//! "Best performance of each relay set is considered per case": for the
//! top-10 subset, each case's improvement is the maximum over the
//! top-10 relays that improved it.

use crate::analysis::top_relays::TopRelayAnalysis;
use crate::relays::RelayType;
use crate::workflow::CampaignResults;
use shortcuts_netsim::HostId;
use std::collections::HashSet;

/// One curve of Fig. 4.
#[derive(Debug, Clone)]
pub struct ThresholdCurve {
    /// The relay type.
    pub rtype: RelayType,
    /// Number of top relays considered (`None` = all relays).
    pub top_k: Option<usize>,
    /// `(threshold_ms, fraction_of_total_cases)` points.
    pub points: Vec<(f64, f64)>,
}

impl ThresholdCurve {
    /// Computes the curve for `rtype`, restricted to the top-`top_k`
    /// relays when given (ranked by improvement frequency, as in
    /// Fig. 3), over thresholds `xs`.
    pub fn compute(
        results: &CampaignResults,
        rtype: RelayType,
        top_k: Option<usize>,
        xs: &[f64],
    ) -> Self {
        let total = results.total_cases().max(1);
        let allowed: Option<HashSet<HostId>> = top_k.map(|k| {
            TopRelayAnalysis::compute(results, rtype, k)
                .top_hosts(k)
                .into_iter()
                .collect()
        });

        // Best improvement per case within the allowed subset.
        let mut best_improvements = Vec::new();
        for c in &results.cases {
            let best = c
                .outcome(rtype)
                .improving
                .iter()
                .filter(|(h, _)| allowed.as_ref().is_none_or(|a| a.contains(h)))
                .map(|&(_, imp)| f64::from(imp))
                .fold(f64::NEG_INFINITY, f64::max);
            if best.is_finite() {
                best_improvements.push(best);
            }
        }

        let points = xs
            .iter()
            .map(|&x| {
                let n = best_improvements.iter().filter(|&&i| i > x).count();
                (x, n as f64 / total as f64)
            })
            .collect();

        ThresholdCurve {
            rtype,
            top_k,
            points,
        }
    }

    /// Fraction of total cases with improvement above `x` (nearest
    /// computed point at or below `x`).
    pub fn fraction_at(&self, x: f64) -> f64 {
        self.points
            .iter()
            .rfind(|(px, _)| *px <= x)
            .map(|&(_, f)| f)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::improvement::tests::synthetic_results;

    fn xs() -> Vec<f64> {
        (0..=10).map(|i| f64::from(i) * 5.0).collect()
    }

    #[test]
    fn curves_decrease_with_threshold() {
        let r = synthetic_results();
        let c = ThresholdCurve::compute(&r, RelayType::Cor, None, &xs());
        for w in c.points.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn all_relays_curve_matches_synthetic_data() {
        let r = synthetic_results();
        let c = ThresholdCurve::compute(&r, RelayType::Cor, None, &xs());
        // Improvements are 20 and 15 ms over 4 total cases.
        assert_eq!(c.fraction_at(0.0), 0.5);
        assert_eq!(c.fraction_at(15.0), 0.25); // strictly above 15
        assert_eq!(c.fraction_at(20.0), 0.0);
    }

    #[test]
    fn top_k_subset_never_beats_all() {
        let r = synthetic_results();
        let all = ThresholdCurve::compute(&r, RelayType::Cor, None, &xs());
        let top1 = ThresholdCurve::compute(&r, RelayType::Cor, Some(1), &xs());
        for (a, t) in all.points.iter().zip(top1.points.iter()) {
            assert!(t.1 <= a.1 + 1e-12);
        }
    }

    #[test]
    fn empty_type_is_flat_zero() {
        let r = synthetic_results();
        let c = ThresholdCurve::compute(&r, RelayType::RarEye, None, &xs());
        assert!(c.points.iter().all(|&(_, f)| f == 0.0));
    }
}
