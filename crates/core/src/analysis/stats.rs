//! Shared numeric helpers for the analyses.

/// Arithmetic mean; `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for empty input.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Coefficient of variation (stddev / mean); `None` if empty or the
/// mean is zero.
pub fn coefficient_of_variation(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    if m.abs() < f64::EPSILON {
        return None;
    }
    Some(std_dev(values)? / m)
}

/// `p`-th percentile (0–100) with linear interpolation; `None` for
/// empty input.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(v[lo]);
    }
    let frac = rank - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Empirical CDF sampled at the given x values: for each `x`, the
/// fraction of `values <= x`.
pub fn cdf_at(values: &[f64], xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs.iter()
        .map(|&x| {
            let count = v.partition_point(|&y| y <= x);
            (x, count as f64 / v.len().max(1) as f64)
        })
        .collect()
}

/// Fraction of values strictly greater than `threshold`.
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_basics() {
        let cv = coefficient_of_variation(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(cv, 0.0);
        assert!(coefficient_of_variation(&[]).is_none());
        assert!(coefficient_of_variation(&[0.0, 0.0]).is_none());
        let cv = coefficient_of_variation(&[8.0, 12.0]).unwrap();
        assert!((cv - 0.2).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        let xs: Vec<f64> = (0..=6).map(f64::from).collect();
        let cdf = cdf_at(&values, &xs);
        assert_eq!(cdf.first().unwrap().1, 0.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // fraction at x=3 is 3/5.
        assert!((cdf[3].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fraction_above_works() {
        assert_eq!(fraction_above(&[1.0, 2.0, 3.0, 4.0], 2.0), 0.5);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }
}
