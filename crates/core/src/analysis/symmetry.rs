//! Ping-direction symmetry check.
//!
//! §2.5: "for ~80 % of the RAE2RAE cases, the difference between
//! initiating the ping from one node instead of its counterpart does
//! not exceed 5 %, while it is averaged out to ~0 %". The campaign
//! measures a sample of pairs in both directions; this module computes
//! the same two statistics.

use crate::workflow::CampaignResults;

/// Symmetry statistics over forward/reverse measured pairs.
#[derive(Debug, Clone, Copy)]
pub struct SymmetryAnalysis {
    /// Number of bidirectionally measured pairs.
    pub samples: usize,
    /// Fraction of pairs whose relative difference is ≤ 5 %.
    pub within_5pct: f64,
    /// Mean signed relative difference (should be ~0: no systematic
    /// direction bias).
    pub mean_signed_diff: f64,
}

impl SymmetryAnalysis {
    /// Computes the statistics from the campaign's symmetry samples.
    pub fn compute(results: &CampaignResults) -> Self {
        let samples = &results.symmetry_samples;
        if samples.is_empty() {
            return SymmetryAnalysis {
                samples: 0,
                within_5pct: 0.0,
                mean_signed_diff: 0.0,
            };
        }
        let mut within = 0usize;
        let mut signed_sum = 0.0;
        for &(fwd, rev) in samples {
            let base = fwd.max(rev).max(f64::EPSILON);
            let rel = (fwd - rev).abs() / base;
            if rel <= 0.05 {
                within += 1;
            }
            signed_sum += (fwd - rev) / base;
        }
        SymmetryAnalysis {
            samples: samples.len(),
            within_5pct: within as f64 / samples.len() as f64,
            mean_signed_diff: signed_sum / samples.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Campaign, CampaignConfig};
    use crate::world::{World, WorldConfig};

    #[test]
    fn campaign_symmetry_matches_paper_shape() {
        let world = World::build(&WorldConfig::small(), 71);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        cfg.symmetry_sample_prob = 0.3;
        let r = Campaign::new(&world, cfg).run();
        let s = SymmetryAnalysis::compute(&r);
        assert!(s.samples > 20, "need symmetry samples, got {}", s.samples);
        // Most pairs within 5% (paper: ~80%).
        assert!(s.within_5pct > 0.5, "within5 {}", s.within_5pct);
        // No systematic bias.
        assert!(
            s.mean_signed_diff.abs() < 0.05,
            "bias {}",
            s.mean_signed_diff
        );
    }

    #[test]
    fn empty_samples_are_handled() {
        let world = World::build(&WorldConfig::small(), 71);
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 1;
        cfg.symmetry_sample_prob = 0.0;
        let r = Campaign::new(&world, cfg).run();
        let s = SymmetryAnalysis::compute(&r);
        assert_eq!(s.samples, 0);
        assert_eq!(s.within_5pct, 0.0);
    }
}
