//! §2.4 — the speed-of-light relay feasibility filter.
//!
//! A relay `f` is worth measuring for an endpoint pair `(n1, n2)` only
//! if, even in a speed-of-light Internet, the relayed path could beat
//! the measured direct RTT:
//!
//! ```text
//! 2 * [t(n1, f) + t(f, n2)] <= RTT(n1, n2)
//! ```
//!
//! where `t(a, b) = d(a, b) / (c * 2/3)` is the one-way fiber
//! propagation delay over the great-circle distance. Infeasible relays
//! are excluded *before* any endpoint↔relay probing, which is what keeps
//! the measurement budget tractable (and what the `ablation_feasibility`
//! experiment quantifies).

use shortcuts_geo::{light, GeoPoint};

/// Whether a relay at `relay_loc` is feasible for endpoints at
/// `src_loc`/`dst_loc` whose measured direct RTT is `direct_rtt_ms`.
pub fn is_feasible(
    src_loc: &GeoPoint,
    dst_loc: &GeoPoint,
    relay_loc: &GeoPoint,
    direct_rtt_ms: f64,
) -> bool {
    min_relay_rtt(src_loc, dst_loc, relay_loc) <= direct_rtt_ms
}

/// The speed-of-light lower bound of the relayed RTT (the left-hand side
/// of the inequality), in ms.
pub fn min_relay_rtt(src_loc: &GeoPoint, dst_loc: &GeoPoint, relay_loc: &GeoPoint) -> f64 {
    let d1 = src_loc.distance_km(relay_loc);
    let d2 = relay_loc.distance_km(dst_loc);
    light::min_relay_rtt_ms(d1, d2)
}

/// Splits a relay iterator into the feasible subset for a pair.
pub fn feasible_subset<'r, I, T, F>(
    relays: I,
    loc_of: F,
    src_loc: &GeoPoint,
    dst_loc: &GeoPoint,
    direct_rtt_ms: f64,
) -> Vec<&'r T>
where
    I: IntoIterator<Item = &'r T>,
    F: Fn(&T) -> GeoPoint,
{
    relays
        .into_iter()
        .filter(|r| is_feasible(src_loc, dst_loc, &loc_of(r), direct_rtt_ms))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn on_path_relay_is_feasible() {
        let london = p(51.5, -0.13);
        let nyc = p(40.7, -74.0);
        // Dublin is roughly on the way.
        let dublin = p(53.35, -6.26);
        // A healthy transatlantic RTT.
        let direct = 85.0;
        assert!(is_feasible(&london, &nyc, &dublin, direct));
    }

    #[test]
    fn far_relay_is_infeasible() {
        let london = p(51.5, -0.13);
        let paris = p(48.85, 2.35);
        let tokyo = p(35.68, 139.65);
        // Even a slowish London-Paris RTT can't justify a Tokyo detour.
        assert!(!is_feasible(&london, &paris, &tokyo, 30.0));
    }

    #[test]
    fn inflated_direct_path_admits_more_relays() {
        let bogota = p(4.71, -74.07);
        let bratislava = p(48.15, 17.11);
        let miami = p(25.76, -80.19);
        let honest = min_relay_rtt(&bogota, &bratislava, &miami);
        // With a direct RTT barely above the floor, Miami may not fit;
        // with a heavily inflated direct path it does.
        assert!(!is_feasible(&bogota, &bratislava, &miami, honest - 1.0));
        assert!(is_feasible(&bogota, &bratislava, &miami, honest + 50.0));
    }

    #[test]
    fn min_relay_rtt_matches_geo_math() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 10.0);
        let r = p(0.0, 5.0);
        let d1 = a.distance_km(&r);
        let d2 = r.distance_km(&b);
        let want = shortcuts_geo::light::min_relay_rtt_ms(d1, d2);
        assert!((min_relay_rtt(&a, &b, &r) - want).abs() < 1e-12);
    }

    #[test]
    fn feasible_subset_filters_correctly() {
        struct R {
            loc: GeoPoint,
        }
        let relays = [
            R {
                loc: p(53.35, -6.26),
            }, // Dublin: feasible
            R {
                loc: p(35.68, 139.65),
            }, // Tokyo: not
        ];
        let subset = feasible_subset(
            relays.iter(),
            |r| r.loc,
            &p(51.5, -0.13),
            &p(40.7, -74.0),
            85.0,
        );
        assert_eq!(subset.len(), 1);
    }

    #[test]
    fn zero_direct_rtt_rejects_everything_distant() {
        let a = p(10.0, 10.0);
        let b = p(10.0, 11.0);
        let r = p(20.0, 20.0);
        assert!(!is_feasible(&a, &b, &r, 0.0));
    }
}
