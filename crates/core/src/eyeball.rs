//! §2.1 — endpoint selection at eyeball networks.
//!
//! The pipeline: take the APNIC user-coverage table, keep (AS, country)
//! tuples above the cutoff coverage (the paper settles on 10 % after
//! sweeping Fig. 1), *verify* each AS really is an eyeball (the authors
//! manually checked 494 official websites; the simulation's stand-in is
//! the topology's ground-truth AS classification — exactly what a manual
//! check would discover), then gather RIPE Atlas probes in the verified
//! tuples that pass the five probe criteria, and per measurement round
//! sample **one AS per country, one probe per AS** to keep country-level
//! diversity without over-weighting densely probed ISPs.

use crate::world::World;
use rand::prelude::*;
use shortcuts_atlas::ripe::{Probe, ProbeFilter};
use shortcuts_geo::CountryCode;
use shortcuts_topology::{AsType, Asn};
use std::collections::BTreeMap;

/// A verified eyeball presence: this AS serves end users in this country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct VerifiedEyeball {
    /// The eyeball AS.
    pub asn: Asn,
    /// Country where the coverage was measured.
    pub country: CountryCode,
}

/// Outcome of the §2.1 selection, with intermediate counts for
/// reporting.
#[derive(Debug, Clone)]
pub struct EyeballSelection {
    /// Tuples above the coverage cutoff, before verification.
    pub candidates: Vec<(Asn, CountryCode)>,
    /// Tuples that passed eyeball verification.
    pub verified: Vec<VerifiedEyeball>,
}

/// Runs candidate selection + verification at `cutoff_pct` coverage.
pub fn select_eyeballs(world: &World, cutoff_pct: f64) -> EyeballSelection {
    let candidates = world.apnic.tuples_above(cutoff_pct);
    let verified = candidates
        .iter()
        .filter(|(asn, _)| {
            // "Manual verification": does the AS actually sell last-mile
            // access to end users? Ground truth stands in for the
            // website check.
            world
                .topo
                .as_info(*asn)
                .is_some_and(|i| i.as_type == AsType::Eyeball)
        })
        .map(|&(asn, country)| VerifiedEyeball { asn, country })
        .collect();
    EyeballSelection {
        candidates,
        verified,
    }
}

/// The pool of usable endpoint probes, grouped country → AS → probes.
#[derive(Debug)]
pub struct EndpointPool<'w> {
    /// country → (asn → probes) map; BTree for deterministic iteration.
    by_country: BTreeMap<CountryCode, BTreeMap<Asn, Vec<&'w Probe>>>,
}

impl<'w> EndpointPool<'w> {
    /// Builds the pool: probes of verified (AS, country) tuples passing
    /// the paper's probe filter.
    pub fn build(world: &'w World, verified: &[VerifiedEyeball]) -> Self {
        let filter = ProbeFilter::paper();
        let mut by_country: BTreeMap<CountryCode, BTreeMap<Asn, Vec<&'w Probe>>> = BTreeMap::new();
        for p in world.ripe.probes() {
            if !filter.accepts(p) {
                continue;
            }
            if verified
                .iter()
                .any(|v| v.asn == p.asn && v.country == p.country)
            {
                by_country
                    .entry(p.country)
                    .or_default()
                    .entry(p.asn)
                    .or_default()
                    .push(p);
            }
        }
        EndpointPool { by_country }
    }

    /// Number of countries with at least one usable probe.
    pub fn country_count(&self) -> usize {
        self.by_country.len()
    }

    /// Number of distinct ASes with usable probes.
    pub fn as_count(&self) -> usize {
        self.by_country.values().map(|m| m.len()).sum()
    }

    /// Distinct ASes with usable probes, ascending. Every direct or
    /// reverse measurement routes toward one of these, so this is the
    /// endpoint half of the router's warmup destination set.
    pub fn asns(&self) -> Vec<Asn> {
        let set: std::collections::BTreeSet<Asn> = self
            .by_country
            .values()
            .flat_map(|m| m.keys().copied())
            .collect();
        set.into_iter().collect()
    }

    /// Total usable probes.
    pub fn probe_count(&self) -> usize {
        self.by_country
            .values()
            .flat_map(|m| m.values())
            .map(|v| v.len())
            .sum()
    }

    /// Samples the round's endpoints: one random eyeball AS per country,
    /// one random probe from it (the paper's 2-step sampling).
    pub fn sample_round<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<&'w Probe> {
        let mut out = Vec::with_capacity(self.by_country.len());
        for per_as in self.by_country.values() {
            let asns: Vec<&Asn> = per_as.keys().collect();
            let asn = asns.choose(rng).expect("country has ASes");
            let probes = &per_as[asn];
            out.push(*probes.choose(rng).expect("AS has probes"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::rngs::StdRng;

    fn world() -> World {
        World::build(&WorldConfig::small(), 8)
    }

    #[test]
    fn verification_keeps_only_real_eyeballs() {
        let w = world();
        let sel = select_eyeballs(&w, 10.0);
        assert!(!sel.verified.is_empty());
        assert!(sel.verified.len() <= sel.candidates.len());
        for v in &sel.verified {
            assert_eq!(w.topo.expect_as(v.asn).as_type, AsType::Eyeball);
        }
    }

    #[test]
    fn verification_drops_enterprise_noise() {
        let w = world();
        // At a very low cutoff, enterprise rows sneak into the
        // candidates and must be verified away.
        let sel = select_eyeballs(&w, 0.01);
        let dropped = sel.candidates.len() - sel.verified.len();
        assert!(dropped > 0, "no enterprise candidates got dropped");
    }

    #[test]
    fn pool_groups_by_country_and_as() {
        let w = world();
        let sel = select_eyeballs(&w, 10.0);
        let pool = EndpointPool::build(&w, &sel.verified);
        assert!(pool.country_count() > 20, "got {}", pool.country_count());
        assert!(pool.as_count() >= pool.country_count());
        assert!(pool.probe_count() >= pool.as_count());
    }

    #[test]
    fn round_sample_is_one_probe_per_country() {
        let w = world();
        let sel = select_eyeballs(&w, 10.0);
        let pool = EndpointPool::build(&w, &sel.verified);
        let mut rng = StdRng::seed_from_u64(3);
        let sample = pool.sample_round(&mut rng);
        assert_eq!(sample.len(), pool.country_count());
        let countries: std::collections::HashSet<_> = sample.iter().map(|p| p.country).collect();
        assert_eq!(countries.len(), sample.len(), "one endpoint per country");
    }

    #[test]
    fn round_samples_vary() {
        let w = world();
        let sel = select_eyeballs(&w, 10.0);
        let pool = EndpointPool::build(&w, &sel.verified);
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<u32> = pool.sample_round(&mut rng).iter().map(|p| p.id).collect();
        let b: Vec<u32> = pool.sample_round(&mut rng).iter().map(|p| p.id).collect();
        assert_ne!(a, b, "different rounds should sample different probes");
    }

    #[test]
    fn sampled_probes_pass_paper_filter() {
        let w = world();
        let sel = select_eyeballs(&w, 10.0);
        let pool = EndpointPool::build(&w, &sel.verified);
        let mut rng = StdRng::seed_from_u64(5);
        let filter = ProbeFilter::paper();
        for p in pool.sample_round(&mut rng) {
            assert!(filter.accepts(p));
        }
    }
}
