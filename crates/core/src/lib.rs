//! # shortcuts-core
//!
//! The paper itself: *Shortcuts through Colocation Facilities* (IMC
//! 2017) — endpoint and relay selection, the measurement engine, and
//! every analysis behind the paper's figures, table and in-text
//! numbers.
//!
//! ## The measurement engine: plan → execute → stitch
//!
//! The §2.5 campaign (45 rounds × O(n²) endpoint pairs × hundreds of
//! relays, 6 pings per window) is the hot path of the reproduction, so
//! it is built as three explicit layers:
//!
//! - **[`plan`]** decides *what to measure* as pure data: the round's
//!   endpoints, direct pairs, symmetry sample, relays
//!   ([`plan::RoundPlan`]) and — once the direct medians exist — the
//!   §2.4-feasible relays and deduplicated overlay links
//!   ([`plan::OverlayPlan`]). No I/O, no clocks, no engine.
//! - **[`backend`]** measures. A [`backend::MeasureTask`] names one
//!   ping window; the [`backend::MeasurementBackend`] trait abstracts
//!   how it is measured (netsim today via [`backend::NetsimBackend`];
//!   recorded-trace or analytical backends slot in without touching
//!   the other layers). Every task derives its own RNG from
//!   `(seed, round, src, dst, kind)`, so task outcomes are
//!   order-independent and scheduling is a free choice
//!   ([`backend::ExecMode`]): serial, data-parallel within a round, or
//!   round-sharded across rounds via the [`shard`] scheduler, which
//!   keeps several rounds in flight on one worker pool — all with
//!   **bit-identical** results.
//! - **[`stitch`]** folds window medians into
//!   [`workflow::CampaignResults`]: case records with per-type
//!   outcomes (`RTT(e1, relay, e2) = median(e1, relay) + median(e2,
//!   relay)`), RTT histories, symmetry samples, relay metadata. The
//!   builder absorbs rounds in **any order** and merges them by round
//!   index, so completion order is unobservable.
//!
//! [`workflow::Campaign`] orchestrates the three layers per round and
//! **streams**: [`workflow::Campaign::run_streaming`] reports a
//! [`workflow::RoundSummary`] per completed round, in round order,
//! while later rounds are still measuring.
//!
//! On top of the single campaign sits [`sweep`]: many `(seed, config)`
//! scenarios run **concurrently on one world**, sharing the engine's
//! pair cache, the router's destination tables (warmed once with the
//! union of every scenario's destinations) and one worker pool via the
//! two-level [`shard::run_interleaved`] scheduler — with every
//! scenario bit-identical to running it alone. A [`sweep::Sweep`] owns
//! its world (`Arc`) and can measure through a caller-pooled engine
//! ([`sweep::Sweep::with_engine`],
//! [`workflow::Campaign::run_streaming_on`]) — the ownership shape the
//! `shortcuts_service` session server uses to keep one warmed engine
//! stack serving many concurrent client sessions.
//!
//! ## Paper-section map
//!
//! | paper section | module |
//! |---|---|
//! | §2.1 endpoint selection at eyeballs | [`eyeball`] |
//! | §2.2 relay selection at colos (5-filter funnel) | [`colo`] |
//! | §2.3 PlanetLab / RIPE Atlas relays | [`relays`] |
//! | §2.4 feasibility filter | [`feasibility`], [`plan`] |
//! | §2.5 measurement framework | [`workflow`], [`plan`], [`backend`], [`stitch`], [`measure`] |
//! | §3 results | [`analysis`] (one submodule per figure/table/claim) |
//!
//! [`world::World`] bundles the full simulated environment (topology,
//! datasets, platforms, hosts) so a campaign is two calls:
//!
//! ```
//! use shortcuts_core::world::{World, WorldConfig};
//! use shortcuts_core::workflow::{Campaign, CampaignConfig};
//!
//! let world = World::build(&WorldConfig::small(), 42);
//! let mut campaign_cfg = CampaignConfig::small();
//! campaign_cfg.rounds = 2;
//! let results = Campaign::new(&world, campaign_cfg).run();
//! assert!(!results.cases.is_empty());
//! ```

pub mod analysis;
pub mod backend;
pub mod colo;
pub mod eyeball;
pub mod feasibility;
pub mod measure;
pub mod plan;
pub mod relays;
pub mod report;
pub mod shard;
pub mod stitch;
pub mod sweep;
pub mod workflow;
pub mod world;

pub use backend::{ExecMode, MeasureTask, MeasurementBackend, NetsimBackend, TaskKind};
pub use plan::{OverlayPlan, RoundPlan};
pub use relays::{Relay, RelayType};
pub use stitch::ResultsBuilder;
pub use sweep::{Sweep, SweepConfig, SweepReport, SweepScenario};
pub use workflow::{Campaign, CampaignConfig, CampaignResults, CaseRecord, RoundSummary};
pub use world::{SharedWorld, World, WorldConfig};
