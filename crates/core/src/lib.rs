//! # shortcuts-core
//!
//! The paper itself: *Shortcuts through Colocation Facilities* (IMC
//! 2017) — endpoint and relay selection, the measurement workflow, and
//! every analysis behind the paper's figures, table and in-text numbers.
//!
//! The crate is organized to follow the paper's structure:
//!
//! | paper section | module |
//! |---|---|
//! | §2.1 endpoint selection at eyeballs | [`eyeball`] |
//! | §2.2 relay selection at colos (5-filter funnel) | [`colo`] |
//! | §2.3 PlanetLab / RIPE Atlas relays | [`relays`] |
//! | §2.4 feasibility filter | [`feasibility`] |
//! | §2.5 measurement framework (rounds, medians, stitching) | [`workflow`], [`measure`] |
//! | §3 results | [`analysis`] (one submodule per figure/table/claim) |
//!
//! [`world::World`] bundles the full simulated environment (topology,
//! datasets, platforms, hosts) so a campaign is two calls:
//!
//! ```
//! use shortcuts_core::world::{World, WorldConfig};
//! use shortcuts_core::workflow::{Campaign, CampaignConfig};
//!
//! let world = World::build(&WorldConfig::small(), 42);
//! let mut campaign_cfg = CampaignConfig::small();
//! campaign_cfg.rounds = 2;
//! let results = Campaign::new(&world, campaign_cfg).run();
//! assert!(!results.cases.is_empty());
//! ```

pub mod analysis;
pub mod colo;
pub mod eyeball;
pub mod feasibility;
pub mod measure;
pub mod relays;
pub mod report;
pub mod world;
pub mod workflow;

pub use relays::{Relay, RelayType};
pub use workflow::{Campaign, CampaignConfig, CampaignResults, CaseRecord};
pub use world::{World, WorldConfig};
