//! Synthetic PeeringDB snapshot.
//!
//! PeeringDB is the industry registry of facilities, networks and IXPs.
//! The paper uses it for: (a) checking that a candidate facility still
//! exists ("active PeeringDB presence"), (b) checking that an AS is
//! still a member of a facility, (c) extracting the facility's city, and
//! (d) enriching Table 1 (#networks, #IXPs, cloud services, and whether
//! the facility is in PeeringDB's global top-10 by colocated networks).
//!
//! The snapshot here is simply a *view over the current topology* — by
//! construction it is up to date, which is exactly the property the
//! paper relies on when using PeeringDB to filter the stale 2015
//! facility dataset.

use shortcuts_geo::{CityId, CountryCode};
use shortcuts_topology::{Asn, FacilityId, IxpId, Topology};
use std::collections::HashSet;

/// A facility as listed in PeeringDB.
#[derive(Debug, Clone)]
pub struct PdbFacility {
    /// Facility id (same id space as the topology).
    pub id: FacilityId,
    /// Listed name.
    pub name: String,
    /// City of the facility.
    pub city: CityId,
    /// Country of the facility.
    pub country: CountryCode,
    /// Number of colocated networks.
    pub net_count: usize,
    /// Number of IXPs present.
    pub ixp_count: usize,
    /// Whether cloud/VM services are available on site.
    pub offers_cloud: bool,
}

/// The PeeringDB snapshot.
#[derive(Debug)]
pub struct PeeringDb {
    facilities: Vec<PdbFacility>,
    top10: HashSet<FacilityId>,
}

impl PeeringDb {
    /// Takes the current snapshot from the topology.
    pub fn snapshot(topo: &Topology) -> Self {
        let facilities: Vec<PdbFacility> = topo
            .facilities()
            .iter()
            .map(|f| PdbFacility {
                id: f.id,
                name: f.name.clone(),
                city: f.city,
                country: topo.cities.get(f.city).country,
                net_count: f.member_count(),
                ixp_count: f.ixps.len(),
                offers_cloud: f.offers_cloud
                    || f.members.iter().any(|&m| topo.expect_as(m).offers_cloud),
            })
            .collect();
        // Global top-10 facilities by colocated network count.
        let mut ranked: Vec<&PdbFacility> = facilities.iter().collect();
        ranked.sort_by(|a, b| b.net_count.cmp(&a.net_count).then(a.id.0.cmp(&b.id.0)));
        let top10 = ranked.iter().take(10).map(|f| f.id).collect();
        PeeringDb { facilities, top10 }
    }

    /// Whether the facility is (still) listed.
    pub fn has_facility(&self, id: FacilityId) -> bool {
        (id.0 as usize) < self.facilities.len()
    }

    /// Facility record, if listed.
    pub fn facility(&self, id: FacilityId) -> Option<&PdbFacility> {
        self.facilities.get(id.0 as usize)
    }

    /// All listed facilities.
    pub fn facilities(&self) -> &[PdbFacility] {
        &self.facilities
    }

    /// Whether `asn` is currently a member of `facility` (queried live
    /// against the topology, as PeeringDB mirrors reality here).
    pub fn is_member(&self, topo: &Topology, facility: FacilityId, asn: Asn) -> bool {
        self.has_facility(facility) && topo.facility(facility).has_member(asn)
    }

    /// Whether the facility is in the global top-10 by colocated
    /// networks (the Table 1 "PDB top-10" column).
    pub fn is_top10(&self, id: FacilityId) -> bool {
        self.top10.contains(&id)
    }

    /// IXP ids present at a facility.
    pub fn ixps_at(&self, topo: &Topology, id: FacilityId) -> Vec<IxpId> {
        if self.has_facility(id) {
            topo.facility(id).ixps.clone()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn snap() -> (Topology, PeeringDb) {
        let topo = Topology::generate(&TopologyConfig::small(), 17);
        let pdb = PeeringDb::snapshot(&topo);
        (topo, pdb)
    }

    #[test]
    fn snapshot_mirrors_topology() {
        let (topo, pdb) = snap();
        assert_eq!(pdb.facilities().len(), topo.facilities().len());
        for f in topo.facilities() {
            let rec = pdb.facility(f.id).expect("listed");
            assert_eq!(rec.net_count, f.member_count());
            assert_eq!(rec.city, f.city);
        }
    }

    #[test]
    fn phantom_facilities_are_unlisted() {
        let (topo, pdb) = snap();
        let phantom = FacilityId(topo.facilities().len() as u32 + 5);
        assert!(!pdb.has_facility(phantom));
        assert!(pdb.facility(phantom).is_none());
        assert!(pdb.ixps_at(&topo, phantom).is_empty());
    }

    #[test]
    fn top10_are_the_largest() {
        let (_, pdb) = snap();
        let top_counts: Vec<usize> = pdb
            .facilities()
            .iter()
            .filter(|f| pdb.is_top10(f.id))
            .map(|f| f.net_count)
            .collect();
        let max_other = pdb
            .facilities()
            .iter()
            .filter(|f| !pdb.is_top10(f.id))
            .map(|f| f.net_count)
            .max()
            .unwrap_or(0);
        assert_eq!(top_counts.len(), 10.min(pdb.facilities().len()));
        assert!(top_counts.iter().all(|&c| c >= max_other));
    }

    #[test]
    fn membership_checks_against_topology() {
        let (topo, pdb) = snap();
        let f = topo
            .facilities()
            .iter()
            .find(|f| f.member_count() > 0)
            .expect("populated facility");
        let member = f.members[0];
        assert!(pdb.is_member(&topo, f.id, member));
        assert!(!pdb.is_member(&topo, f.id, Asn(999_999)));
    }

    #[test]
    fn cloud_flag_includes_resident_providers() {
        let (topo, pdb) = snap();
        for f in topo.facilities() {
            if f.offers_cloud {
                assert!(pdb.facility(f.id).unwrap().offers_cloud);
            }
        }
    }
}
