//! Synthetic CAIDA prefix→origin-AS table.
//!
//! The §2.2 "same IP-ownership" filter maps each candidate IP to its
//! origin AS(es) and requires that (a) the mapping matches the ASN
//! recorded in the 2015 dataset and (b) the prefix is not MOAS
//! (advertised by multiple origins). The table is built from the
//! topology's prefix originations, with a configurable fraction of MOAS
//! noise injected to give filter (b) something to catch.

use rand::prelude::*;
use rand::rngs::StdRng;
use shortcuts_topology::{Asn, Prefix, Topology};
use std::net::Ipv4Addr;

/// One table entry: a prefix and its origin AS(es).
#[derive(Debug, Clone)]
pub struct PrefixOrigin {
    /// The routed prefix.
    pub prefix: Prefix,
    /// Origin ASes (more than one = MOAS).
    pub origins: Vec<Asn>,
}

/// The prefix→AS table.
#[derive(Debug)]
pub struct Prefix2As {
    entries: Vec<PrefixOrigin>,
}

impl Prefix2As {
    /// Builds the table from topology originations, marking roughly
    /// `moas_fraction` of prefixes as MOAS (a second, random origin is
    /// added — modeling route leaks, transfers and anycast).
    pub fn from_topology(topo: &Topology, moas_fraction: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let all_asns: Vec<Asn> = topo.ases().iter().map(|a| a.asn).collect();
        let mut entries = Vec::new();
        for info in topo.ases() {
            for &prefix in &info.prefixes {
                let mut origins = vec![info.asn];
                if rng.gen_bool(moas_fraction) {
                    let other = *all_asns.choose(&mut rng).expect("non-empty");
                    if other != info.asn {
                        origins.push(other);
                    }
                }
                entries.push(PrefixOrigin { prefix, origins });
            }
        }
        Prefix2As { entries }
    }

    /// All entries.
    pub fn entries(&self) -> &[PrefixOrigin] {
        &self.entries
    }

    /// Origins of the longest (here: only) matching prefix for `ip`.
    /// Empty if the address is unrouted.
    pub fn lookup(&self, ip: Ipv4Addr) -> &[Asn] {
        // Prefixes are disjoint by construction, so first match wins.
        self.entries
            .iter()
            .find(|e| e.prefix.contains(ip))
            .map(|e| e.origins.as_slice())
            .unwrap_or(&[])
    }

    /// Whether `ip` maps to exactly `asn` and is not MOAS — the §2.2
    /// ownership check as a single predicate.
    pub fn owned_solely_by(&self, ip: Ipv4Addr, asn: Asn) -> bool {
        let origins = self.lookup(ip);
        origins.len() == 1 && origins[0] == asn
    }

    /// Number of MOAS entries (diagnostics).
    pub fn moas_count(&self) -> usize {
        self.entries.iter().filter(|e| e.origins.len() > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn table(moas: f64) -> (Topology, Prefix2As) {
        let topo = Topology::generate(&TopologyConfig::small(), 23);
        let t = Prefix2As::from_topology(&topo, moas, 5);
        (topo, t)
    }

    #[test]
    fn lookup_finds_owning_as() {
        let (topo, t) = table(0.0);
        for info in topo.ases().iter().take(20) {
            for p in &info.prefixes {
                let ip = p.nth(7).expect("prefix has >7 addresses");
                assert_eq!(t.lookup(ip), &[info.asn]);
                assert!(t.owned_solely_by(ip, info.asn));
            }
        }
    }

    #[test]
    fn unrouted_space_is_empty() {
        let (_, t) = table(0.0);
        // 1.0.0.0 is below the allocator's 16.0.0.0 start.
        assert!(t.lookup(Ipv4Addr::new(1, 0, 0, 1)).is_empty());
        assert!(!t.owned_solely_by(Ipv4Addr::new(1, 0, 0, 1), Asn(100)));
    }

    #[test]
    fn moas_fraction_injected() {
        let (_, t) = table(0.3);
        let frac = t.moas_count() as f64 / t.entries().len() as f64;
        assert!((0.15..0.45).contains(&frac), "moas fraction {frac}");
    }

    #[test]
    fn moas_fails_sole_ownership() {
        let (_, t) = table(1.0);
        let moas_entry = t
            .entries()
            .iter()
            .find(|e| e.origins.len() > 1)
            .expect("all entries MOAS at fraction 1.0");
        let ip = moas_entry.prefix.nth(1).unwrap();
        assert!(!t.owned_solely_by(ip, moas_entry.origins[0]));
    }

    #[test]
    fn zero_moas_means_all_single_origin() {
        let (_, t) = table(0.0);
        assert_eq!(t.moas_count(), 0);
    }
}
