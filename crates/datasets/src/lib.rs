//! # shortcuts-datasets
//!
//! Synthetic equivalents of the third-party datasets the paper consumes,
//! generated *consistently from the same topology* so that cross-dataset
//! joins behave like the real ones:
//!
//! - [`apnic`] — the APNIC per-(AS, country) Internet-user-coverage
//!   table driving eyeball selection (§2.1, Fig. 1).
//! - [`peeringdb`] — the current PeeringDB snapshot: facilities,
//!   networks, IXPs, memberships, and the "top-10 facilities by
//!   colocated networks" ranking used in Table 1.
//! - [`prefix2as`] — the CAIDA prefix→origin-AS table, including MOAS
//!   (multi-origin) noise, used by the §2.2 "same IP-ownership" filter.
//! - [`facility_dataset`] — the 2015 Giotsas et al. facility-mapping
//!   dataset **with two years of staleness baked in**: multi-facility
//!   candidate sets, dead IPs, changed prefix ownership, facilities that
//!   have since closed, and interfaces that moved city. The §2.2 filter
//!   funnel (2675 → 1008 → 764 → 725 → 725 → 356 in the paper) only
//!   reproduces if the staleness is really there to be filtered out.

pub mod apnic;
pub mod facility_dataset;
pub mod peeringdb;
pub mod prefix2as;

pub use apnic::{ApnicDataset, CoveragePoint};
pub use facility_dataset::{FacilityDataset, FacilityIpRecord, GroundTruth};
pub use peeringdb::PeeringDb;
pub use prefix2as::Prefix2As;
