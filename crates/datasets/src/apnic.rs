//! Synthetic APNIC per-AS user-coverage dataset.
//!
//! APNIC estimates, for every (AS, country) pair, the percentage of the
//! country's Internet users served by that AS. The paper (§2.1) sweeps a
//! *cutoff coverage* over this table to decide which ASes qualify as
//! eyeballs (Fig. 1) and settles on a 10 % threshold.
//!
//! The synthetic table is derived from the topology: eyeball ASes
//! contribute their real user share in their home country; enterprise
//! ASes contribute low-coverage noise rows (the "measured but not
//! actually an eyeball" population that makes the manual verification
//! step meaningful); eyeballs with PoPs abroad get small secondary rows
//! (a single AS can appear in several countries, as the paper notes).

use rand::prelude::*;
use rand::rngs::StdRng;
use shortcuts_geo::CountryCode;
use shortcuts_topology::{AsType, Asn, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// One (AS, country, coverage%) row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageRow {
    /// The measured AS.
    pub asn: Asn,
    /// Country of the user population.
    pub country: CountryCode,
    /// Percentage (0–100) of the country's users served by the AS.
    pub coverage_pct: f64,
}

/// A point of the Fig. 1 curve: at `cutoff_pct`, how many ASes and
/// countries remain covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// The cutoff (x-axis of Fig. 1).
    pub cutoff_pct: f64,
    /// Number of ASes with coverage >= cutoff anywhere.
    pub n_ases: usize,
    /// Number of countries hosting at least one such AS.
    pub n_countries: usize,
}

/// The synthetic APNIC dataset.
#[derive(Debug, Clone)]
pub struct ApnicDataset {
    rows: Vec<CoverageRow>,
}

impl ApnicDataset {
    /// Derives the dataset from a topology.
    ///
    /// `seed` controls only the noise rows (secondary-country presence
    /// and enterprise coverage jitter), not the primary eyeball shares,
    /// which come from the topology itself.
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for info in topo.ases() {
            match info.as_type {
                AsType::Eyeball => {
                    rows.push(CoverageRow {
                        asn: info.asn,
                        country: info.home_country,
                        coverage_pct: info.user_share * 100.0,
                    });
                    // Secondary presence rows: an eyeball with foreign
                    // PoPs shows a little measured traffic there.
                    for &cc in &info.countries {
                        if cc != info.home_country && rng.gen_bool(0.5) {
                            rows.push(CoverageRow {
                                asn: info.asn,
                                country: cc,
                                coverage_pct: rng.gen_range(0.01..2.0),
                            });
                        }
                    }
                }
                AsType::Enterprise if info.user_share > 0.0 => {
                    rows.push(CoverageRow {
                        asn: info.asn,
                        country: info.home_country,
                        coverage_pct: info.user_share * 100.0,
                    });
                }
                // Transit/content/research networks face no browsing
                // users in the APNIC methodology.
                _ => {}
            }
        }
        ApnicDataset { rows }
    }

    /// All rows.
    pub fn rows(&self) -> &[CoverageRow] {
        &self.rows
    }

    /// (AS, country) tuples with coverage at or above `cutoff_pct`.
    pub fn tuples_above(&self, cutoff_pct: f64) -> Vec<(Asn, CountryCode)> {
        self.rows
            .iter()
            .filter(|r| r.coverage_pct >= cutoff_pct)
            .map(|r| (r.asn, r.country))
            .collect()
    }

    /// Distinct ASes with any row at or above the cutoff.
    pub fn ases_above(&self, cutoff_pct: f64) -> BTreeSet<Asn> {
        self.rows
            .iter()
            .filter(|r| r.coverage_pct >= cutoff_pct)
            .map(|r| r.asn)
            .collect()
    }

    /// Distinct countries with at least one AS at or above the cutoff.
    pub fn countries_above(&self, cutoff_pct: f64) -> BTreeSet<CountryCode> {
        self.rows
            .iter()
            .filter(|r| r.coverage_pct >= cutoff_pct)
            .map(|r| r.country)
            .collect()
    }

    /// The Fig. 1 curve: ASes and countries covered per cutoff value.
    pub fn coverage_curve(&self, cutoffs: &[f64]) -> Vec<CoveragePoint> {
        cutoffs
            .iter()
            .map(|&c| CoveragePoint {
                cutoff_pct: c,
                n_ases: self.ases_above(c).len(),
                n_countries: self.countries_above(c).len(),
            })
            .collect()
    }

    /// Per-country count of ASes above the cutoff (diagnostic for the
    /// "above ~30% only one AS per country survives" observation).
    pub fn ases_per_country(&self, cutoff_pct: f64) -> BTreeMap<CountryCode, usize> {
        let mut m = BTreeMap::new();
        for r in &self.rows {
            if r.coverage_pct >= cutoff_pct {
                *m.entry(r.country).or_insert(0) += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn dataset() -> (Topology, ApnicDataset) {
        let topo = Topology::generate(&TopologyConfig::small(), 3);
        let ds = ApnicDataset::from_topology(&topo, 1);
        (topo, ds)
    }

    #[test]
    fn every_eyeball_has_a_home_row() {
        let (topo, ds) = dataset();
        for &asn in topo.eyeball_asns() {
            let info = topo.expect_as(asn);
            assert!(
                ds.rows()
                    .iter()
                    .any(|r| r.asn == asn && r.country == info.home_country),
                "{asn} missing home row"
            );
        }
    }

    #[test]
    fn curve_is_monotonically_decreasing() {
        let (_, ds) = dataset();
        let cutoffs: Vec<f64> = (0..=20).map(|i| i as f64 * 5.0).collect();
        let curve = ds.coverage_curve(&cutoffs);
        for w in curve.windows(2) {
            assert!(w[1].n_ases <= w[0].n_ases);
            assert!(w[1].n_countries <= w[0].n_countries);
        }
    }

    #[test]
    fn low_cutoff_keeps_most_countries() {
        let (topo, ds) = dataset();
        let n_countries = topo.cities.countries().len();
        let at10 = ds.countries_above(10.0).len();
        // Like the paper (223/225 countries at 10%), nearly all countries
        // should keep at least one >=10% AS.
        assert!(
            at10 as f64 > n_countries as f64 * 0.8,
            "{at10}/{n_countries}"
        );
    }

    #[test]
    fn high_cutoff_approaches_one_as_per_country() {
        let (_, ds) = dataset();
        // Where an AS survives a 40% cutoff, it should usually be alone
        // in its country.
        let per_country = ds.ases_per_country(40.0);
        if !per_country.is_empty() {
            let multi = per_country.values().filter(|&&n| n > 1).count();
            assert!(
                (multi as f64) < per_country.len() as f64 * 0.4,
                "{multi}/{} countries with >1 AS at 40%",
                per_country.len()
            );
        }
    }

    #[test]
    fn transit_ases_never_appear() {
        let (topo, ds) = dataset();
        use shortcuts_topology::AsType;
        for r in ds.rows() {
            let t = topo.expect_as(r.asn).as_type;
            assert!(
                matches!(t, AsType::Eyeball | AsType::Enterprise),
                "unexpected {t:?} in APNIC table"
            );
        }
    }

    #[test]
    fn tuples_above_matches_rows() {
        let (_, ds) = dataset();
        for (asn, cc) in ds.tuples_above(10.0) {
            assert!(ds
                .rows()
                .iter()
                .any(|r| r.asn == asn && r.country == cc && r.coverage_pct >= 10.0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::generate(&TopologyConfig::small(), 3);
        let a = ApnicDataset::from_topology(&topo, 7);
        let b = ApnicDataset::from_topology(&topo, 7);
        assert_eq!(a.rows().len(), b.rows().len());
    }
}
