//! The 2015 Giotsas et al. facility-mapping dataset, two years stale.
//!
//! The original dataset maps router/server interface IPs to the
//! colocation facility they were inferred to be in (constrained facility
//! search over traceroutes), along with the owning ASN and neighboring
//! IXPs. The paper uses it as the **candidate pool for COR relays**, but
//! must first scrub two years of staleness through five filters (§2.2).
//!
//! This generator produces records with that staleness *explicitly
//! injected*, each mode keyed to the filter that is supposed to catch
//! it:
//!
//! | staleness mode        | caught by filter                      |
//! |-----------------------|---------------------------------------|
//! | multi-facility candidate set (CFS didn't converge) | 1. single-facility |
//! | facility closed since 2015 (phantom id)            | 1. active PeeringDB presence |
//! | interface decommissioned                           | 2. pingability |
//! | prefix transferred to another AS                   | 3. same IP-ownership |
//! | prefix now MOAS (see [`crate::prefix2as`])         | 3. same IP-ownership |
//! | AS left the facility                               | 4. active facility presence |
//! | interface moved to another city                    | 5. RTT-based geolocation |
//!
//! Ground truth is carried on every record so tests can verify that the
//! filter pipeline keeps exactly what it should.

use rand::prelude::*;
use rand::rngs::StdRng;
use shortcuts_netsim::{HostId, HostKind, HostRegistry};
use shortcuts_topology::{Asn, FacilityId, IxpId, Topology};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What is *actually* true about a recorded IP today.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundTruth {
    /// Interface is alive and really at the recorded facility.
    AliveAtFacility {
        /// The live host.
        host: HostId,
    },
    /// Interface is alive but physically somewhere else now.
    AliveElsewhere {
        /// The live host (registered at its actual location).
        host: HostId,
    },
    /// Interface no longer exists; the address does not respond.
    Dead,
}

/// One record of the (stale) facility dataset.
#[derive(Debug, Clone)]
pub struct FacilityIpRecord {
    /// The interface address as recorded in 2015.
    pub ip: Ipv4Addr,
    /// Owning ASN as recorded in 2015 (may no longer be accurate).
    pub recorded_asn: Asn,
    /// Candidate facilities from constrained facility search; one entry
    /// when the algorithm converged, several otherwise. Ids may refer to
    /// facilities that have since closed (absent from PeeringDB).
    pub candidate_facilities: Vec<FacilityId>,
    /// Neighboring IXPs recorded with the interface.
    pub ixps: Vec<IxpId>,
    /// What is actually true today (ground truth for validation; a real
    /// pipeline discovers this only through the filters).
    pub truth: GroundTruth,
}

impl FacilityIpRecord {
    /// Convenience: the single candidate facility if the set has exactly
    /// one entry.
    pub fn single_candidate(&self) -> Option<FacilityId> {
        if self.candidate_facilities.len() == 1 {
            Some(self.candidate_facilities[0])
        } else {
            None
        }
    }
}

/// Staleness injection knobs. Defaults are tuned so the §2.2 funnel has
/// roughly the paper's pass rates per stage (0.38 → 0.76 → 0.95 → 1.0 →
/// 0.49).
#[derive(Debug, Clone)]
pub struct FacilityDatasetConfig {
    /// Number of records to produce (paper: 2675).
    pub n_records: usize,
    /// Probability the candidate set has >1 facility.
    pub multi_facility_prob: f64,
    /// Probability the recorded facility has closed since 2015.
    pub phantom_facility_prob: f64,
    /// Probability the interface is dead.
    pub dead_prob: f64,
    /// Probability the prefix moved to another AS.
    pub changed_owner_prob: f64,
    /// Probability the AS left the facility (but the IP is alive there —
    /// e.g. the router was sold with the cage).
    pub left_facility_prob: f64,
    /// Probability an alive interface moved to another city.
    pub moved_prob: f64,
}

impl Default for FacilityDatasetConfig {
    fn default() -> Self {
        FacilityDatasetConfig {
            n_records: 2675,
            multi_facility_prob: 0.50,
            phantom_facility_prob: 0.14,
            dead_prob: 0.24,
            changed_owner_prob: 0.04,
            left_facility_prob: 0.005,
            moved_prob: 0.30,
        }
    }
}

impl FacilityDatasetConfig {
    /// A small dataset for fast tests.
    pub fn small() -> Self {
        FacilityDatasetConfig {
            n_records: 300,
            ..Self::default()
        }
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct FacilityDataset {
    records: Vec<FacilityIpRecord>,
}

impl FacilityDataset {
    /// Generates the dataset over `topo`, registering live interfaces as
    /// hosts in `hosts`.
    ///
    /// Records are weighted toward large facilities (more members → more
    /// recorded interfaces), matching the original data where big colos
    /// dominate.
    pub fn generate(
        topo: &Topology,
        hosts: &mut HostRegistry,
        cfg: &FacilityDatasetConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let populated: Vec<FacilityId> = topo
            .facilities()
            .iter()
            .filter(|f| f.member_count() > 0)
            .map(|f| f.id)
            .collect();
        assert!(
            !populated.is_empty(),
            "topology has no populated facilities"
        );
        let weights: Vec<usize> = populated
            .iter()
            .map(|&f| topo.facility(f).member_count())
            .collect();
        let dist = rand::distributions::WeightedIndex::new(&weights).expect("positive weights");

        // Tail-end address allocation for dead interfaces, so they can
        // never collide with live host registrations (which allocate
        // from the front of each prefix).
        let mut dead_counters: HashMap<Asn, u64> = HashMap::new();
        let mut dead_ip = |topo: &Topology, asn: Asn| -> Ipv4Addr {
            let info = topo.expect_as(asn);
            let counter = dead_counters.entry(asn).or_insert(2);
            let p = info.prefixes.last().expect("AS has prefixes");
            let ip = p.nth(p.size() - *counter).expect("tail address in range");
            *counter += 1;
            ip
        };

        let phantom_base = topo.facilities().len() as u32;
        let mut records = Vec::with_capacity(cfg.n_records);
        while records.len() < cfg.n_records {
            let fid = populated[dist.sample(&mut rng)];
            let facility = topo.facility(fid);
            let &member = facility.members.choose(&mut rng).expect("has members");
            let ixps = facility.ixps.clone();

            // Candidate facility set (dimension 1: convergence/closure).
            let mut candidates = if rng.gen_bool(cfg.phantom_facility_prob) {
                // The facility closed; the old id no longer resolves.
                vec![FacilityId(phantom_base + rng.gen_range(0..50))]
            } else {
                vec![fid]
            };
            if rng.gen_bool(cfg.multi_facility_prob) {
                let extra = 1 + usize::from(rng.gen_bool(0.3));
                for _ in 0..extra {
                    let other = if rng.gen_bool(0.2) {
                        FacilityId(phantom_base + rng.gen_range(0..50))
                    } else {
                        *populated.choose(&mut rng).expect("non-empty")
                    };
                    if !candidates.contains(&other) {
                        candidates.push(other);
                    }
                }
            }

            // Liveness / ownership (dimension 2).
            let (ip, recorded_asn, truth) = if rng.gen_bool(cfg.dead_prob) {
                (dead_ip(topo, member), member, GroundTruth::Dead)
            } else if rng.gen_bool(cfg.changed_owner_prob) && facility.members.len() > 1 {
                // Prefix transferred: IP now belongs to another member's
                // space, record still says `member`.
                let new_owner = *facility
                    .members
                    .iter()
                    .find(|&&m| m != member)
                    .expect("len > 1");
                match hosts.add_host(
                    topo,
                    new_owner,
                    Some(facility.city),
                    HostKind::ColoInterface,
                ) {
                    Ok(host) => {
                        let ip = hosts.get(host).ip;
                        (ip, member, GroundTruth::AliveAtFacility { host })
                    }
                    Err(_) => (dead_ip(topo, member), member, GroundTruth::Dead),
                }
            } else if rng.gen_bool(cfg.left_facility_prob) {
                // Owner AS left the facility: pick an AS with a PoP in
                // the city that is NOT a member today.
                let non_member = topo
                    .ases()
                    .iter()
                    .find(|a| {
                        topo.pop_cities(a.asn).contains(&facility.city)
                            && !facility.has_member(a.asn)
                    })
                    .map(|a| a.asn);
                match non_member {
                    Some(asn) => {
                        match hosts.add_host(
                            topo,
                            asn,
                            Some(facility.city),
                            HostKind::ColoInterface,
                        ) {
                            Ok(host) => {
                                let ip = hosts.get(host).ip;
                                (ip, asn, GroundTruth::AliveAtFacility { host })
                            }
                            Err(_) => (dead_ip(topo, member), member, GroundTruth::Dead),
                        }
                    }
                    None => (dead_ip(topo, member), member, GroundTruth::Dead),
                }
            } else if rng.gen_bool(cfg.moved_prob) {
                // Interface moved to another PoP city of the same AS.
                let other_city = topo
                    .pop_cities(member)
                    .iter()
                    .copied()
                    .find(|&c| c != facility.city);
                match other_city {
                    Some(city) => {
                        match hosts.add_host(topo, member, Some(city), HostKind::ColoInterface) {
                            Ok(host) => {
                                let ip = hosts.get(host).ip;
                                (ip, member, GroundTruth::AliveElsewhere { host })
                            }
                            Err(_) => (dead_ip(topo, member), member, GroundTruth::Dead),
                        }
                    }
                    // Single-city AS can't move; fall through to alive.
                    None => match hosts.add_host(
                        topo,
                        member,
                        Some(facility.city),
                        HostKind::ColoInterface,
                    ) {
                        Ok(host) => {
                            let ip = hosts.get(host).ip;
                            (ip, member, GroundTruth::AliveAtFacility { host })
                        }
                        Err(_) => (dead_ip(topo, member), member, GroundTruth::Dead),
                    },
                }
            } else {
                match hosts.add_host(topo, member, Some(facility.city), HostKind::ColoInterface) {
                    Ok(host) => {
                        let ip = hosts.get(host).ip;
                        (ip, member, GroundTruth::AliveAtFacility { host })
                    }
                    Err(_) => (dead_ip(topo, member), member, GroundTruth::Dead),
                }
            };

            records.push(FacilityIpRecord {
                ip,
                recorded_asn,
                candidate_facilities: candidates,
                ixps,
                truth,
            });
        }

        FacilityDataset { records }
    }

    /// All records.
    pub fn records(&self) -> &[FacilityIpRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn dataset() -> (Topology, FacilityDataset, HostRegistry) {
        let topo = Topology::generate(&TopologyConfig::small(), 31);
        let mut hosts = HostRegistry::new();
        let ds = FacilityDataset::generate(&topo, &mut hosts, &FacilityDatasetConfig::small(), 4);
        (topo, ds, hosts)
    }

    #[test]
    fn record_count_matches_config() {
        let (_, ds, _) = dataset();
        assert_eq!(ds.len(), 300);
        assert!(!ds.is_empty());
    }

    #[test]
    fn alive_records_have_registered_hosts() {
        let (_, ds, hosts) = dataset();
        for r in ds.records() {
            match &r.truth {
                GroundTruth::AliveAtFacility { host } | GroundTruth::AliveElsewhere { host } => {
                    let h = hosts.get(*host);
                    assert_eq!(h.ip, r.ip, "record IP must match host IP");
                }
                GroundTruth::Dead => {
                    assert!(hosts.by_ip(r.ip).is_none(), "dead IP must not resolve");
                }
            }
        }
    }

    #[test]
    fn staleness_modes_all_present() {
        let (_, ds, _) = dataset();
        let dead = ds
            .records()
            .iter()
            .filter(|r| r.truth == GroundTruth::Dead)
            .count();
        let moved = ds
            .records()
            .iter()
            .filter(|r| matches!(r.truth, GroundTruth::AliveElsewhere { .. }))
            .count();
        let multi = ds
            .records()
            .iter()
            .filter(|r| r.candidate_facilities.len() > 1)
            .count();
        assert!(dead > 0, "no dead records");
        assert!(moved > 0, "no moved records");
        assert!(multi > 0, "no multi-facility records");
        // Rough proportions from the default config.
        let n = ds.len() as f64;
        assert!((dead as f64 / n) > 0.1 && (dead as f64 / n) < 0.45);
        assert!((multi as f64 / n) > 0.3 && (multi as f64 / n) < 0.7);
    }

    #[test]
    fn phantom_candidates_exist_and_exceed_real_ids() {
        let (topo, ds, _) = dataset();
        let n_real = topo.facilities().len() as u32;
        let phantom_records = ds
            .records()
            .iter()
            .filter(|r| r.candidate_facilities.iter().any(|f| f.0 >= n_real))
            .count();
        assert!(phantom_records > 0, "no phantom facility references");
    }

    #[test]
    fn at_facility_records_are_really_there() {
        let (topo, ds, hosts) = dataset();
        let n_real = topo.facilities().len() as u32;
        for r in ds.records() {
            if let GroundTruth::AliveAtFacility { host } = &r.truth {
                // The first real candidate facility should match the
                // host's city.
                if let Some(fid) = r
                    .candidate_facilities
                    .iter()
                    .find(|f| f.0 < n_real)
                    .copied()
                {
                    // Only guaranteed when the record's own facility is
                    // in the candidate set (not a phantom-only record).
                    if r.candidate_facilities.len() == 1 {
                        assert_eq!(hosts.get(*host).city, topo.facility(fid).city);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let topo = Topology::generate(&TopologyConfig::small(), 31);
        let mut h1 = HostRegistry::new();
        let mut h2 = HostRegistry::new();
        let cfg = FacilityDatasetConfig::small();
        let a = FacilityDataset::generate(&topo, &mut h1, &cfg, 4);
        let b = FacilityDataset::generate(&topo, &mut h2, &cfg, 4);
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.recorded_asn, y.recorded_asn);
            assert_eq!(x.candidate_facilities, y.candidate_facilities);
        }
    }

    #[test]
    fn dead_ips_never_collide_with_live_hosts() {
        let (topo, ds, mut hosts) = dataset();
        // Register a pile of additional hosts and confirm no dead IP got
        // handed out.
        let dead_ips: std::collections::HashSet<_> = ds
            .records()
            .iter()
            .filter(|r| r.truth == GroundTruth::Dead)
            .map(|r| r.ip)
            .collect();
        for &asn in topo.eyeball_asns().iter().take(20) {
            for _ in 0..5 {
                if let Ok(id) = hosts.add_host_in_as(&topo, asn, None) {
                    assert!(!dead_ips.contains(&hosts.get(id).ip));
                }
            }
        }
    }
}
