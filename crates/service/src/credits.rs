//! Credit-based admission: RIPE-Atlas-style budgets per client.
//!
//! A flat `max_sessions` gate cannot tell a `STATS` probe from a
//! 64-scenario sweep, so one greedy client can starve everyone.
//! Credits price the *work*: each measurement request costs
//! `rounds × scenarios` credits from a per-client (per source IP)
//! token bucket that refills continuously. Cheap requests (`STATS`,
//! `CSV`, `HELLO`, tapping an existing broadcast) cost little or
//! nothing, so they are never queued behind heavy sweeps; a client
//! that outruns its refill gets `ERR credits` with a `retry-after-ms`
//! hint and an intact session.
//!
//! The bucket is lazy: credits accrue on the clock, materialized only
//! when the client next asks. One `Mutex` over the ledger is plenty —
//! a charge is a handful of float ops, and sessions charge once per
//! request, not per round.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;
use std::time::{Duration, Instant};

/// Credit policy: bucket capacity and refill rate, shared by every
/// client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditConfig {
    /// Bucket capacity (burst budget). A fresh client starts full.
    pub capacity: f64,
    /// Credits refilled per second.
    pub refill_per_sec: f64,
}

impl CreditConfig {
    /// A policy from capacity and refill rate.
    pub fn new(capacity: f64, refill_per_sec: f64) -> CreditConfig {
        CreditConfig {
            capacity,
            refill_per_sec,
        }
    }

    /// Effectively unmetered admission (load harnesses, benches).
    pub fn generous() -> CreditConfig {
        CreditConfig::new(1e12, 1e9)
    }
}

impl Default for CreditConfig {
    /// Roomy enough that tests and casual use never notice the meter:
    /// a full bucket covers a 1024-round-scenario burst, refilling 64
    /// round-scenarios per second.
    fn default() -> CreditConfig {
        CreditConfig::new(4096.0, 64.0)
    }
}

/// Outcome of a charge attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Charge {
    /// Paid; `remaining` is the balance left.
    Ok {
        /// Credits left after the charge.
        remaining: f64,
    },
    /// Insufficient balance; nothing was deducted.
    Denied {
        /// The cost that was asked.
        need: f64,
        /// The balance at denial time.
        have: f64,
        /// How long until the bucket covers `need` at the refill rate.
        retry_after: Duration,
    },
}

struct Bucket {
    credits: f64,
    last_refill: Instant,
}

/// Per-client token buckets, keyed by source IP.
pub struct CreditLedger {
    cfg: CreditConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl CreditLedger {
    /// A ledger under the given policy.
    pub fn new(cfg: CreditConfig) -> CreditLedger {
        CreditLedger {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The policy this ledger enforces.
    pub fn config(&self) -> CreditConfig {
        self.cfg
    }

    /// Tries to deduct `cost` from `who`'s bucket, refilling first.
    /// Zero-cost requests always pass without touching the ledger.
    pub fn try_charge(&self, who: IpAddr, cost: f64) -> Charge {
        if cost <= 0.0 {
            return Charge::Ok {
                remaining: f64::INFINITY,
            };
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(who).or_insert(Bucket {
            credits: self.cfg.capacity,
            last_refill: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last_refill);
        bucket.credits = (bucket.credits + elapsed.as_secs_f64() * self.cfg.refill_per_sec)
            .min(self.cfg.capacity);
        bucket.last_refill = now;
        if bucket.credits >= cost {
            bucket.credits -= cost;
            Charge::Ok {
                remaining: bucket.credits,
            }
        } else {
            let need = cost - bucket.credits;
            let retry_after = if self.cfg.refill_per_sec > 0.0 && cost <= self.cfg.capacity {
                Duration::from_secs_f64(need / self.cfg.refill_per_sec)
            } else {
                // Never affordable (cost above capacity, or no refill):
                // an honest "come back much later".
                Duration::from_secs(3600)
            };
            Charge::Denied {
                need: cost,
                have: bucket.credits,
                retry_after,
            }
        }
    }

    /// Every client's current balance, refilled to now and sorted by
    /// IP (so `STATS` output is stable). Zero-cost requests never
    /// create buckets, so only clients that have paid for work appear.
    pub fn balances(&self) -> Vec<(IpAddr, f64)> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let mut out: Vec<(IpAddr, f64)> = buckets
            .iter_mut()
            .map(|(ip, bucket)| {
                let elapsed = now.saturating_duration_since(bucket.last_refill);
                bucket.credits = (bucket.credits + elapsed.as_secs_f64() * self.cfg.refill_per_sec)
                    .min(self.cfg.capacity);
                bucket.last_refill = now;
                (*ip, bucket.credits)
            })
            .collect();
        out.sort_by_key(|(ip, _)| *ip);
        out
    }
}

/// Credit cost of a measurement request: `rounds × scenarios`. (The
/// ISSUE's `rounds × pairs` is this up to a world-wide constant — the
/// per-round pair plan is a property of the world, identical across
/// scenarios — so scenarios is the dimension a client controls.)
pub fn request_cost(rounds: u32, scenarios: usize) -> f64 {
    rounds as f64 * scenarios as f64
}

/// Cost of tapping an existing broadcast: a flat 1 credit — the tap
/// consumes fan-out bandwidth, not measurement.
pub const TAP_COST: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    #[test]
    fn fresh_clients_start_with_a_full_bucket() {
        let ledger = CreditLedger::new(CreditConfig::new(10.0, 0.0));
        match ledger.try_charge(ip(1), 10.0) {
            Charge::Ok { remaining } => assert!(remaining.abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn denial_reports_need_have_and_retry_after() {
        let ledger = CreditLedger::new(CreditConfig::new(8.0, 4.0));
        assert!(matches!(ledger.try_charge(ip(1), 8.0), Charge::Ok { .. }));
        match ledger.try_charge(ip(1), 6.0) {
            Charge::Denied {
                need,
                have,
                retry_after,
            } => {
                assert_eq!(need, 6.0);
                assert!(have < 6.0);
                // ~6 missing credits at 4/s: about 1.5 s, minus any
                // refill between the two charges.
                assert!(retry_after <= Duration::from_secs_f64(1.5));
                assert!(retry_after >= Duration::from_millis(100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn denied_charges_deduct_nothing() {
        let ledger = CreditLedger::new(CreditConfig::new(10.0, 0.0));
        assert!(matches!(ledger.try_charge(ip(1), 6.0), Charge::Ok { .. }));
        assert!(matches!(
            ledger.try_charge(ip(1), 6.0),
            Charge::Denied { .. }
        ));
        // The 4 remaining credits are still there.
        assert!(matches!(ledger.try_charge(ip(1), 4.0), Charge::Ok { .. }));
    }

    #[test]
    fn buckets_refill_over_time_up_to_capacity() {
        let ledger = CreditLedger::new(CreditConfig::new(4.0, 1000.0));
        assert!(matches!(ledger.try_charge(ip(1), 4.0), Charge::Ok { .. }));
        assert!(matches!(
            ledger.try_charge(ip(1), 4.0),
            Charge::Denied { .. }
        ));
        std::thread::sleep(Duration::from_millis(20));
        // 20 ms at 1000/s refills to the 4-credit cap.
        match ledger.try_charge(ip(1), 4.0) {
            Charge::Ok { remaining } => assert!(remaining < 4.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clients_are_metered_independently() {
        let ledger = CreditLedger::new(CreditConfig::new(5.0, 0.0));
        assert!(matches!(ledger.try_charge(ip(1), 5.0), Charge::Ok { .. }));
        assert!(matches!(
            ledger.try_charge(ip(1), 1.0),
            Charge::Denied { .. }
        ));
        assert!(matches!(ledger.try_charge(ip(2), 5.0), Charge::Ok { .. }));
    }

    #[test]
    fn zero_cost_requests_never_touch_the_meter() {
        let ledger = CreditLedger::new(CreditConfig::new(1.0, 0.0));
        assert!(matches!(ledger.try_charge(ip(1), 1.0), Charge::Ok { .. }));
        for _ in 0..100 {
            assert!(matches!(ledger.try_charge(ip(1), 0.0), Charge::Ok { .. }));
        }
        assert!(matches!(
            ledger.try_charge(ip(1), 1.0),
            Charge::Denied { .. }
        ));
    }

    #[test]
    fn impossible_costs_get_a_long_retry_hint() {
        let ledger = CreditLedger::new(CreditConfig::new(2.0, 1.0));
        match ledger.try_charge(ip(1), 100.0) {
            Charge::Denied { retry_after, .. } => {
                assert_eq!(retry_after, Duration::from_secs(3600));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn balances_refill_and_sort_by_ip() {
        let ledger = CreditLedger::new(CreditConfig::new(10.0, 1000.0));
        assert!(ledger.balances().is_empty(), "no charges, no buckets");
        assert!(matches!(ledger.try_charge(ip(9), 10.0), Charge::Ok { .. }));
        assert!(matches!(ledger.try_charge(ip(1), 4.0), Charge::Ok { .. }));
        std::thread::sleep(Duration::from_millis(20));
        let balances = ledger.balances();
        assert_eq!(balances.len(), 2);
        assert_eq!(balances[0].0, ip(1), "sorted by IP");
        assert_eq!(balances[1].0, ip(9));
        // 20 ms at 1000/s refills both buckets to the 10-credit cap.
        assert!(balances.iter().all(|(_, b)| (b - 10.0).abs() < 1e-9));
    }

    #[test]
    fn request_cost_scales_with_rounds_and_scenarios() {
        assert_eq!(request_cost(4, 1), 4.0);
        assert_eq!(request_cost(2, 8), 16.0);
        assert_eq!(request_cost(0, 8), 0.0);
    }
}
