//! The TCP front door: bind, admit, thread-per-connection.
//!
//! No async runtime — the build is fully vendored and the workload is
//! compute-bound simulation, not massive fan-in I/O. A plain
//! [`std::net::TcpListener`] with one OS thread per admitted session
//! is simple, debuggable, and saturates the machine anyway: inside a
//! session every run fans out over the sharded `(campaign, round)`
//! worker pool, so session threads mostly sit in `read_line` waiting
//! for the next request.
//!
//! Panic containment: each session runs under `catch_unwind`. A
//! panicking request (a bug, a poisoned assumption) kills only its own
//! session — the admission permit is released by its drop guard, the
//! world pool's non-poisoning locks stay usable, a producing session's
//! broadcast is failed by its guard so taps never hang, and the accept
//! loop keeps serving everyone else.
//!
//! Admission here is only the *connection* bound (`max_sessions`,
//! `ERR busy` with a retry hint); the *work* bound is the per-client
//! credit ledger enforced inside the session loop (`ERR credits`), so
//! a connected client issuing cheap `STATS` probes is never refused
//! just because heavy sweeps are running.

use crate::session::{run_session, ServiceConfig, SessionManager};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running service: the bound listener plus its accept thread.
pub struct Server {
    addr: SocketAddr,
    mgr: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port)
    /// and starts accepting sessions on a background thread.
    pub fn start(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> std::io::Result<Server> {
        // A server is an observability surface: turn telemetry on so
        // `METRICS` serves live stage histograms and scheduler gauges.
        // Record-path overhead is a few relaxed atomics per *stage*,
        // and the e2e suite proves streamed CSVs stay byte-identical.
        shortcuts_telemetry::global().set_enabled(true);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mgr = Arc::new(SessionManager::new(cfg));
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_mgr = Arc::clone(&mgr);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("shortcuts-service-accept".into())
            .spawn(move || accept_loop(listener, accept_mgr, accept_shutdown))?;

        Ok(Server {
            addr,
            mgr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager (pool stats, active-session count).
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.mgr
    }

    /// Stops accepting new sessions and joins the accept thread.
    /// Sessions already running finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection; the
        // loop re-checks the flag before admitting it.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(listener: TcpListener, mgr: Arc<SessionManager>, shutdown: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else {
            // Transient accept failures (fd exhaustion, aborted
            // handshakes) must not melt into a 100%-CPU retry spin —
            // back off briefly; the listener queue holds the backlog.
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        };
        match mgr.try_admit() {
            Some(permit) => {
                let session_mgr = Arc::clone(&mgr);
                let spawned = std::thread::Builder::new()
                    .name("shortcuts-service-session".into())
                    .spawn(move || {
                        // The permit lives (and dies) with the session
                        // thread; catch_unwind keeps a panicking
                        // request from tearing down the process.
                        let _permit = permit;
                        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let _ = run_session(&session_mgr, stream);
                        }));
                    });
                // Spawn failure (fd/thread exhaustion): the permit
                // was moved into the failed closure and is already
                // dropped; nothing to clean up.
                let _ = spawned;
            }
            None => {
                // Over capacity: refuse loudly and hang up. The
                // client sees ERR instead of the greeting; the hint
                // feeds the client-side backoff.
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "ERR busy: {} sessions active (max {}) retry-after-ms=100",
                    mgr.active_sessions(),
                    mgr.config().max_sessions
                );
            }
        }
    }
}
