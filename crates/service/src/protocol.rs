//! The wire protocol: a small, line-oriented request/response language.
//!
//! Every request is one text line; every response is one or more text
//! lines, except CSV payloads which are length-prefixed raw bytes. The
//! protocol is deliberately telnet-friendly — you can drive a server
//! by hand with `nc` — and trivially scriptable, which is all a
//! measurement front end needs.
//!
//! ## Requests
//!
//! ```text
//! HELLO [framing=text|binary] [credits=on|off]
//! RUN seed=<u64> [rounds=<u32>] [world-seed=<u64>] [policy=<p>]
//!     [label=<name>] [rounds-in-flight=<n>] [churn=<spec>]
//! SWEEP seeds=<u64,u64,..> [rounds=<u32>] [world-seed=<u64>]
//!     [policy=<p>] [jobs-in-flight=<n>] [churn=<spec>]
//! SUBSCRIBE seed=<u64>|seeds=<u64,u64,..> [rounds=<u32>]
//!     [world-seed=<u64>] [policy=<p>] [jobs-in-flight=<n>]
//! CSV cases [<label>]
//! CSV sweep
//! STATS
//! METRICS
//! QUIT
//! ```
//!
//! `HELLO` negotiates response framing: the reply is always the text
//! line `OK hello framing=<f>`, after which every response uses the
//! negotiated framing (see [`crate::frame`] for the binary layout).
//! Requests stay text in both framings. `credits=on` additionally opts
//! this session into credit-spend feedback: each metered request's
//! terminating `OK` gains a ` credits=<remaining>` suffix. The suffix
//! is session-local — it is appended after broadcast fan-out, so taps
//! of the same batch still receive byte-identical streams.
//!
//! `SUBSCRIBE` asks for the *bytes* of a batch rather than an
//! execution: if a RUN/SWEEP/SUBSCRIBE with the same
//! `(world-seed, policy, seeds, rounds)` key is in flight (or recently
//! finished), the session taps its broadcast and receives the
//! identical stream without re-executing; otherwise the session
//! becomes the producer and executes normally. Options that change
//! the stream bytes (`label`, `churn`) are rejected — a relabelled or
//! churning batch is not shareable. `jobs-in-flight` is accepted but
//! excluded from the key (scheduling never changes bytes). A tap that
//! falls too far behind the producer is shed with `ERR lagged`.
//!
//! `policy` is `valley-free` (default) or `shortest-path`. `world-seed`
//! defaults to the server's configured default world. `rounds` defaults
//! to 4. Labels default to `seed-<seed>`. `churn` is a comma-separated
//! [`ChurnSchedule`] spec — e.g.
//! `churn=link-down:AS1-AS2@round3,as-down:AS5@7` — applying topology
//! deltas at round boundaries; churn requests run on a **private**
//! engine stack (deltas permanently advance an engine's epoch, so the
//! pooled stacks never see them).
//!
//! ## Responses
//!
//! - `OK <detail>` — request finished.
//! - `ERR <message>` — request rejected; the session stays usable
//!   (except the admission `ERR busy`, after which the server closes
//!   the connection).
//! - `ROUND <label> <round> endpoints=<e> pairs=<p> cases=<c>
//!   unresponsive=<u> links=<measured>/<planned> symmetry=<s>` — one
//!   per completed round, **per scenario in round order**, streamed
//!   while later rounds are still measuring.
//! - `END <label> seed=<s> cases=<n> pings=<n> unresponsive=<n>` — one
//!   per scenario once the whole batch finishes.
//! - `CSV <name> <len>` followed by exactly `<len>` raw bytes — a CSV
//!   payload.
//! - `STATS world=<seed> policy=<p> <EngineStats summary>` — one per
//!   pooled engine stack. The engine summary includes the byte-budget
//!   gauges: `tables_bytes`/`table_evictions`/`table_recomputes` for
//!   the router's destination-table cache and
//!   `pair_bytes`/`pair_evictions` for the sharded pair cache.
//! - `STATS pool worlds=<n> engines=<n> bytes=<b> stack_evictions=<n>
//!   budget=<b|unbounded>` — one aggregate line after the per-engine
//!   lines: whole-stack residency against the service's memory budget
//!   (`--memory-budget` on `serve`).
//! - `STATS service subscribers=<n> broadcasts=<n>
//!   rounds_fanned_out=<n> subscribers_shed=<n> credits_denied=<n>` —
//!   the fan-out and admission counters, one line after the pool line.
//! - `STATS credits ip=<addr> balance=<n>` — one per client that has
//!   paid for metered work (free probes never create a bucket), sorted
//!   by IP, refilled to now. The count in `OK stats <n>` includes the
//!   pool, service and credits lines.
//! - `METRICS <len>` followed by exactly `<len>` raw bytes — a
//!   Prometheus-style text exposition (`name{label="v"} value` lines):
//!   process-wide telemetry (per-stage `colo_stage_duration_ns`
//!   latency histograms, `colo_shard_queue_depth` /
//!   `colo_shard_jobs_in_flight` scheduler gauges) plus
//!   `colo_engine_*{world=..,policy=..}`, `colo_pool_*`,
//!   `colo_service_*` and `colo_credits_balance{ip=..}` samples
//!   rendered from the same field lists as the `STATS` lines, so the
//!   two surfaces cannot disagree.
//! - `ERR credits need=<n> have=<n> retry-after-ms=<ms>` — the request
//!   exceeded the client's credit balance; the session stays usable
//!   and the hint says when the bucket will cover the cost.
//! - `ERR lagged ...` — this subscriber fell behind the broadcast and
//!   was shed; re-request to resubscribe.

use crate::frame::Framing;
use shortcuts_topology::routing::RoutingPolicy;
use shortcuts_topology::ChurnSchedule;

/// Greeting the server sends on every admitted connection.
pub const GREETING: &str = "OK shortcuts-service ready";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run one campaign, streaming its rounds.
    Run {
        /// Campaign seed.
        seed: u64,
        /// Number of rounds.
        rounds: u32,
        /// World to run against (server default when absent).
        world_seed: Option<u64>,
        /// Routing policy.
        policy: RoutingPolicy,
        /// Scenario label (default `seed-<seed>`).
        label: Option<String>,
        /// Rounds kept in flight (server-clamped).
        rounds_in_flight: Option<usize>,
        /// Topology churn schedule (empty = none). Non-empty schedules
        /// run the campaign on a private engine stack.
        churn: ChurnSchedule,
    },
    /// Run a multi-scenario sweep, streaming all scenarios' rounds.
    Sweep {
        /// One campaign seed per scenario; duplicates are rejected.
        seeds: Vec<u64>,
        /// Rounds per scenario.
        rounds: u32,
        /// World to run against (server default when absent).
        world_seed: Option<u64>,
        /// Routing policy (shared by all scenarios).
        policy: RoutingPolicy,
        /// `(campaign, round)` jobs kept in flight (server-clamped).
        jobs_in_flight: Option<usize>,
        /// Sweep-level topology churn, seen by every scenario at the
        /// same rounds (empty = none). Non-empty schedules run the
        /// sweep on a private engine stack.
        churn: ChurnSchedule,
    },
    /// Attach to the broadcast of a batch: tap an in-flight (or
    /// recently finished) identical batch, or become its producer.
    Subscribe {
        /// One campaign seed per scenario; duplicates are rejected.
        seeds: Vec<u64>,
        /// Rounds per scenario.
        rounds: u32,
        /// World to run against (server default when absent).
        world_seed: Option<u64>,
        /// Routing policy (part of the broadcast key).
        policy: RoutingPolicy,
        /// Scheduling bound if this session ends up producing; never
        /// part of the broadcast key.
        jobs_in_flight: Option<usize>,
    },
    /// Negotiate response framing for the rest of the session.
    Hello {
        /// Requested framing.
        framing: Framing,
        /// Opt into per-request credit-spend feedback: metered `OK`
        /// terminators gain a session-local ` credits=<remaining>`
        /// suffix.
        credits: bool,
    },
    /// Fetch the cases CSV of the session's last run — of scenario
    /// `label`, or of the only/first scenario when `None`.
    CsvCases {
        /// Scenario label to fetch.
        label: Option<String>,
    },
    /// Fetch the cross-scenario comparison CSV of the last run.
    CsvSweep,
    /// Engine-stack health of every pooled `(world, policy)` engine,
    /// plus one aggregate pool-residency line.
    Stats,
    /// Prometheus-style exposition of every metric the server holds:
    /// process-wide telemetry (per-stage latency histograms, scheduler
    /// gauges) plus per-engine, pool, service and credit samples
    /// derived from the same field lists `STATS` renders.
    Metrics,
    /// Close the session.
    Quit,
}

/// Splits `key=value` with a protocol-grade error.
fn split_kv(tok: &str) -> Result<(&str, &str), String> {
    tok.split_once('=')
        .ok_or_else(|| format!("expected key=value, got {tok:?}"))
}

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
    val.parse()
        .map_err(|_| format!("{key} takes a number, got {val:?}"))
}

fn parse_seeds(val: &str) -> Result<Vec<u64>, String> {
    let seeds: Vec<u64> = val
        .split(',')
        .map(|s| parse_num("seeds", s.trim()))
        .collect::<Result<_, _>>()?;
    if seeds.is_empty() {
        return Err("seeds must name at least one seed".into());
    }
    let mut seen = std::collections::BTreeSet::new();
    for s in &seeds {
        if !seen.insert(*s) {
            return Err(format!(
                "duplicate seed {s}: scenario labels derive from the seed, \
                 so its results would overwrite each other"
            ));
        }
    }
    Ok(seeds)
}

impl Request {
    /// Parses one request line. Errors are protocol `ERR` payloads:
    /// human-readable, single-line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut toks = line.split_whitespace();
        let cmd = toks.next().ok_or("empty request")?;
        let rest: Vec<&str> = toks.collect();
        match cmd.to_ascii_uppercase().as_str() {
            "RUN" => {
                let mut seed = None;
                let mut rounds = 4u32;
                let mut world_seed = None;
                let mut policy = RoutingPolicy::default();
                let mut label = None;
                let mut rounds_in_flight = None;
                let mut churn = ChurnSchedule::none();
                for tok in rest {
                    let (k, v) = split_kv(tok)?;
                    match k {
                        "seed" => seed = Some(parse_num("seed", v)?),
                        "rounds" => rounds = parse_num("rounds", v)?,
                        "world-seed" => world_seed = Some(parse_num("world-seed", v)?),
                        "policy" => {
                            policy = RoutingPolicy::parse(v)
                                .ok_or_else(|| format!("unknown policy {v:?}"))?;
                        }
                        "label" => label = Some(v.to_string()),
                        "rounds-in-flight" => {
                            rounds_in_flight = Some(parse_num("rounds-in-flight", v)?);
                        }
                        "churn" => churn = ChurnSchedule::parse(v)?,
                        other => return Err(format!("unknown RUN option {other:?}")),
                    }
                }
                Ok(Request::Run {
                    seed: seed.ok_or("RUN requires seed=<u64>")?,
                    rounds,
                    world_seed,
                    policy,
                    label,
                    rounds_in_flight,
                    churn,
                })
            }
            "SWEEP" => {
                let mut seeds = None;
                let mut rounds = 4u32;
                let mut world_seed = None;
                let mut policy = RoutingPolicy::default();
                let mut jobs_in_flight = None;
                let mut churn = ChurnSchedule::none();
                for tok in rest {
                    let (k, v) = split_kv(tok)?;
                    match k {
                        "seeds" => seeds = Some(parse_seeds(v)?),
                        "rounds" => rounds = parse_num("rounds", v)?,
                        "world-seed" => world_seed = Some(parse_num("world-seed", v)?),
                        "policy" => {
                            policy = RoutingPolicy::parse(v)
                                .ok_or_else(|| format!("unknown policy {v:?}"))?;
                        }
                        "jobs-in-flight" => {
                            jobs_in_flight = Some(parse_num("jobs-in-flight", v)?);
                        }
                        "churn" => churn = ChurnSchedule::parse(v)?,
                        other => return Err(format!("unknown SWEEP option {other:?}")),
                    }
                }
                Ok(Request::Sweep {
                    seeds: seeds.ok_or("SWEEP requires seeds=<u64,u64,..>")?,
                    rounds,
                    world_seed,
                    policy,
                    jobs_in_flight,
                    churn,
                })
            }
            "SUBSCRIBE" => {
                let mut seeds = None;
                let mut rounds = 4u32;
                let mut world_seed = None;
                let mut policy = RoutingPolicy::default();
                let mut jobs_in_flight = None;
                for tok in rest {
                    let (k, v) = split_kv(tok)?;
                    match k {
                        "seed" => seeds = Some(vec![parse_num("seed", v)?]),
                        "seeds" => seeds = Some(parse_seeds(v)?),
                        "rounds" => rounds = parse_num("rounds", v)?,
                        "world-seed" => world_seed = Some(parse_num("world-seed", v)?),
                        "policy" => {
                            policy = RoutingPolicy::parse(v)
                                .ok_or_else(|| format!("unknown policy {v:?}"))?;
                        }
                        "jobs-in-flight" => {
                            jobs_in_flight = Some(parse_num("jobs-in-flight", v)?);
                        }
                        "label" | "churn" => {
                            return Err(format!(
                                "SUBSCRIBE does not take {k}: it changes the stream \
                                 bytes, so the batch would not be shareable"
                            ));
                        }
                        other => return Err(format!("unknown SUBSCRIBE option {other:?}")),
                    }
                }
                Ok(Request::Subscribe {
                    seeds: seeds.ok_or("SUBSCRIBE requires seed=<u64> or seeds=<u64,u64,..>")?,
                    rounds,
                    world_seed,
                    policy,
                    jobs_in_flight,
                })
            }
            "HELLO" => {
                let mut framing = Framing::Text;
                let mut credits = false;
                for tok in rest {
                    let (k, v) = split_kv(tok)?;
                    match k {
                        "framing" => {
                            framing = Framing::parse(v)
                                .ok_or_else(|| format!("unknown framing {v:?} (text|binary)"))?;
                        }
                        "credits" => {
                            credits = match v {
                                "on" => true,
                                "off" => false,
                                other => {
                                    return Err(format!("credits takes on|off, got {other:?}"))
                                }
                            };
                        }
                        other => return Err(format!("unknown HELLO option {other:?}")),
                    }
                }
                Ok(Request::Hello { framing, credits })
            }
            "CSV" => match rest.as_slice() {
                ["cases"] => Ok(Request::CsvCases { label: None }),
                ["cases", label] => Ok(Request::CsvCases {
                    label: Some((*label).to_string()),
                }),
                ["sweep"] => Ok(Request::CsvSweep),
                _ => Err("CSV takes `cases [label]` or `sweep`".into()),
            },
            "STATS" => {
                if rest.is_empty() {
                    Ok(Request::Stats)
                } else {
                    Err("STATS takes no options".into())
                }
            }
            "METRICS" => {
                if rest.is_empty() {
                    Ok(Request::Metrics)
                } else {
                    Err("METRICS takes no options".into())
                }
            }
            "QUIT" => Ok(Request::Quit),
            other => Err(format!(
                "unknown command {other:?} \
                 (try HELLO, RUN, SWEEP, SUBSCRIBE, CSV, STATS, METRICS, QUIT)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parses_with_defaults() {
        let r = Request::parse("RUN seed=2017").unwrap();
        assert_eq!(
            r,
            Request::Run {
                seed: 2017,
                rounds: 4,
                world_seed: None,
                policy: RoutingPolicy::ValleyFree,
                label: None,
                rounds_in_flight: None,
                churn: ChurnSchedule::none(),
            }
        );
    }

    #[test]
    fn run_parses_every_option() {
        let r = Request::parse(
            "RUN seed=1 rounds=9 world-seed=7 policy=shortest-path label=x rounds-in-flight=3",
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Run {
                seed: 1,
                rounds: 9,
                world_seed: Some(7),
                policy: RoutingPolicy::ShortestPath,
                label: Some("x".into()),
                rounds_in_flight: Some(3),
                churn: ChurnSchedule::none(),
            }
        );
    }

    #[test]
    fn churn_specs_parse_on_run_and_sweep() {
        let r = Request::parse("RUN seed=1 churn=link-down:AS1-AS2@round3,as-down:AS5@7").unwrap();
        match r {
            Request::Run { churn, .. } => {
                assert!(!churn.is_empty());
                let batches: Vec<_> = churn.batches().collect();
                assert_eq!(batches.len(), 2);
                assert_eq!(batches[0].0, 3);
                assert_eq!(batches[1].0, 7);
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse("SWEEP seeds=1,2 churn=as-down:AS9@2").unwrap();
        match r {
            Request::Sweep { churn, .. } => assert!(!churn.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_parses_seed_lists() {
        let r = Request::parse("SWEEP seeds=1,2,3 rounds=2 jobs-in-flight=5").unwrap();
        match r {
            Request::Sweep {
                seeds,
                rounds,
                jobs_in_flight,
                ..
            } => {
                assert_eq!(seeds, vec![1, 2, 3]);
                assert_eq!(rounds, 2);
                assert_eq!(jobs_in_flight, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscribe_parses_seed_and_seed_lists() {
        let r = Request::parse("SUBSCRIBE seed=7 rounds=2").unwrap();
        assert_eq!(
            r,
            Request::Subscribe {
                seeds: vec![7],
                rounds: 2,
                world_seed: None,
                policy: RoutingPolicy::ValleyFree,
                jobs_in_flight: None,
            }
        );
        let r = Request::parse("SUBSCRIBE seeds=1,2 world-seed=9 policy=shortest-path").unwrap();
        assert_eq!(
            r,
            Request::Subscribe {
                seeds: vec![1, 2],
                rounds: 4,
                world_seed: Some(9),
                policy: RoutingPolicy::ShortestPath,
                jobs_in_flight: None,
            }
        );
    }

    #[test]
    fn subscribe_rejects_stream_changing_options() {
        for bad in [
            "SUBSCRIBE",
            "SUBSCRIBE seed=1 label=x",
            "SUBSCRIBE seed=1 churn=as-down:AS9@2",
            "SUBSCRIBE seeds=1,1",
            "SUBSCRIBE seed=1 bogus=2",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn hello_negotiates_framing() {
        assert_eq!(
            Request::parse("HELLO").unwrap(),
            Request::Hello {
                framing: Framing::Text,
                credits: false,
            }
        );
        assert_eq!(
            Request::parse("HELLO framing=binary").unwrap(),
            Request::Hello {
                framing: Framing::Binary,
                credits: false,
            }
        );
        assert!(Request::parse("HELLO framing=morse").is_err());
        assert!(Request::parse("HELLO compression=zstd").is_err());
    }

    #[test]
    fn hello_opts_into_credit_feedback() {
        assert_eq!(
            Request::parse("HELLO credits=on").unwrap(),
            Request::Hello {
                framing: Framing::Text,
                credits: true,
            }
        );
        assert_eq!(
            Request::parse("HELLO framing=binary credits=off").unwrap(),
            Request::Hello {
                framing: Framing::Binary,
                credits: false,
            }
        );
        assert!(Request::parse("HELLO credits=maybe").is_err());
    }

    #[test]
    fn malformed_requests_error_without_panicking() {
        for bad in [
            "",
            "FROBNICATE",
            "RUN",
            "RUN seed=abc",
            "RUN bogus=1",
            "RUN seed",
            "SWEEP",
            "SWEEP seeds=",
            "SWEEP seeds=1,1",
            "SWEEP seeds=1 policy=teleport",
            "CSV",
            "CSV nonsense",
            "STATS now",
            "RUN seed=1 churn=bogus",
            "RUN seed=1 churn=link-down:AS1-AS2",
            "SWEEP seeds=1 churn=teleport:AS1@2",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn commands_are_case_insensitive() {
        assert_eq!(Request::parse("quit").unwrap(), Request::Quit);
        assert_eq!(Request::parse("stats").unwrap(), Request::Stats);
    }
}
