//! The world pool: one warmed engine stack per `(world seed, policy)`.
//!
//! Building a [`World`] and warming an engine's caches is the
//! expensive part of a measurement run — routing tables and pair
//! expansions dwarf the pings themselves for short campaigns. A
//! long-lived service therefore never rebuilds them per request:
//! the pool caches
//!
//! - **worlds** by seed (`Arc<World>` — topology, hosts, datasets), and
//! - **engine stacks** by `(world seed, routing policy)`
//!   (`Arc<PingEngine>` — router with its destination-table cache plus
//!   the sharded pair cache),
//!
//! so every session touching the same world measures through the same
//! warmed caches. Sharing is sound because the engine holds only
//! deterministic world facts (the sweep determinism contract); faults
//! and accounting stay on per-campaign `PingHandle`s.
//!
//! Locks are `parking_lot` mutexes: they do not poison, so a session
//! thread that panics mid-request can never wedge the pool for every
//! other session — the service's panic-safety story leans on this.

use parking_lot::Mutex;
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_netsim::{EngineStats, PingEngine};
use shortcuts_topology::routing::RoutingPolicy;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-seed world slot: lets a build synchronize its duplicates
/// without blocking the pool-wide map.
type WorldSlot = Arc<std::sync::OnceLock<Arc<World>>>;

/// Caches worlds by seed and engine stacks by `(world seed, policy)`.
pub struct WorldPool {
    cfg: WorldConfig,
    worlds: Mutex<HashMap<u64, WorldSlot>>,
    engines: Mutex<HashMap<(u64, RoutingPolicy), Arc<PingEngine>>>,
}

impl WorldPool {
    /// A pool building worlds from `cfg` (each seed still produces its
    /// own deterministic world).
    pub fn new(cfg: WorldConfig) -> Self {
        WorldPool {
            cfg,
            worlds: Mutex::new(HashMap::new()),
            engines: Mutex::new(HashMap::new()),
        }
    }

    /// The world for `seed`, built on first use.
    ///
    /// The pool-wide lock covers only the slot lookup; the (expensive)
    /// build runs under the *seed's* `OnceLock`. Concurrent sessions
    /// asking for the same new seed wait for one build instead of
    /// racing N duplicates, while sessions on other — already cached —
    /// worlds sail past untouched.
    pub fn world(&self, seed: u64) -> Arc<World> {
        let slot: WorldSlot = {
            let mut worlds = self.worlds.lock();
            Arc::clone(worlds.entry(seed).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(World::build(&self.cfg, seed))))
    }

    /// The shared engine stack for `(world seed, policy)`, created on
    /// first use. Every later caller gets the same engine — same
    /// router tables, same pair cache — however many sessions run on
    /// it concurrently.
    pub fn engine(&self, seed: u64, policy: RoutingPolicy) -> Arc<PingEngine> {
        let world = self.world(seed);
        let mut engines = self.engines.lock();
        Arc::clone(
            engines
                .entry((seed, policy))
                .or_insert_with(|| world.shared().engine(policy)),
        )
    }

    /// Number of worlds currently resident (builds in flight on other
    /// threads do not count until they finish).
    pub fn worlds_resident(&self) -> usize {
        self.worlds
            .lock()
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Health snapshot of every pooled engine stack, sorted by
    /// `(world seed, policy)` for stable output.
    pub fn stats(&self) -> Vec<(u64, RoutingPolicy, EngineStats)> {
        let engines = self.engines.lock();
        let mut out: Vec<_> = engines
            .iter()
            .map(|(&(seed, policy), engine)| (seed, policy, engine.engine_stats()))
            .collect();
        drop(engines);
        out.sort_by_key(|&(seed, policy, _)| (seed, policy.label()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WorldPool {
        WorldPool::new(WorldConfig::small())
    }

    #[test]
    fn worlds_are_cached_by_seed() {
        let p = pool();
        let a = p.world(5);
        let b = p.world(5);
        assert!(Arc::ptr_eq(&a, &b));
        let c = p.world(6);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(p.worlds_resident(), 2);
    }

    #[test]
    fn engines_are_cached_by_seed_and_policy() {
        let p = pool();
        let a = p.engine(5, RoutingPolicy::ValleyFree);
        let b = p.engine(5, RoutingPolicy::ValleyFree);
        assert!(Arc::ptr_eq(&a, &b), "same key must reuse the stack");
        let c = p.engine(5, RoutingPolicy::ShortestPath);
        assert!(!Arc::ptr_eq(&a, &c), "policies get separate routers");
        // Both engines route over the one cached world's topology.
        assert!(std::ptr::eq(a.topology(), c.topology()));
        assert_eq!(p.worlds_resident(), 1);
    }

    #[test]
    fn stats_cover_every_pooled_engine() {
        let p = pool();
        p.engine(1, RoutingPolicy::ValleyFree);
        p.engine(2, RoutingPolicy::ValleyFree);
        p.engine(1, RoutingPolicy::ShortestPath);
        let stats = p.stats();
        assert_eq!(stats.len(), 3);
        // Sorted by (seed, policy label).
        assert_eq!(stats[0].0, 1);
        assert_eq!(stats[1].0, 1);
        assert_eq!(stats[2].0, 2);
    }
}
