//! The world pool: one warmed engine stack per `(world seed, policy)`,
//! kept under a pool-level byte budget.
//!
//! Building a [`World`] and warming an engine's caches is the
//! expensive part of a measurement run — routing tables and pair
//! expansions dwarf the pings themselves for short campaigns. A
//! long-lived service therefore never rebuilds them per request:
//! the pool caches
//!
//! - **worlds** by seed (`Arc<World>` — topology, hosts, datasets), and
//! - **engine stacks** by `(world seed, routing policy)`
//!   (`Arc<PingEngine>` — router with its destination-table cache plus
//!   the sharded pair cache),
//!
//! so every session touching the same world measures through the same
//! warmed caches. Sharing is sound because the engine holds only
//! deterministic world facts (the sweep determinism contract); faults
//! and accounting stay on per-campaign `PingHandle`s.
//!
//! # Pool budget
//!
//! A service that outlives its clients accretes worlds: every distinct
//! `world-seed` a client ever pinned stays resident forever without a
//! bound. Under a [`MemoryBudget`] the pool therefore:
//!
//! - builds every pooled engine **budgeted** (`engine_budgeted`), so
//!   each stack's router and pair caches evict internally, and
//! - evicts **whole idle stacks** — the world plus all its engines —
//!   least-recently-*detached* first, whenever aggregate residency
//!   (substrate `SharedWorld::approx_bytes` plus each engine's
//!   resident cache bytes) exceeds the budget total.
//!
//! "Idle" is tracked by [`checkout`](WorldPool::checkout) leases: a
//! session holds a [`PoolLease`] for the duration of a batch, and only
//! worlds with zero live leases are eviction candidates. Evicting a
//! stack is transparent for results — a re-request rebuilds the same
//! deterministic world from its seed and re-warms caches — it only
//! costs the rebuild time, which is exactly the byte/time trade the
//! budget expresses.
//!
//! Locks are `parking_lot` mutexes: they do not poison, so a session
//! thread that panics mid-request can never wedge the pool for every
//! other session — the service's panic-safety story leans on this.

use parking_lot::Mutex;
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_netsim::{EngineStats, PingEngine};
use shortcuts_telemetry::Field;
use shortcuts_topology::routing::RoutingPolicy;
use shortcuts_topology::MemoryBudget;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-seed world slot: lets a build synchronize its duplicates
/// without blocking the pool-wide map.
type WorldSlot = Arc<std::sync::OnceLock<Arc<World>>>;

/// Per-seed pool bookkeeping: the build slot plus the lease state the
/// evictor ranks by. Mutated only under the pool's `worlds` lock.
#[derive(Default)]
struct WorldEntry {
    slot: WorldSlot,
    /// Live [`PoolLease`]s on this seed; never evicted while > 0.
    attached: u64,
    /// Pool tick of the most recent lease drop — the LRU key.
    last_detach: u64,
}

/// Aggregate pool health for `STATS` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worlds currently resident (finished builds).
    pub worlds_resident: usize,
    /// Engine stacks currently resident.
    pub engines_resident: usize,
    /// Approximate resident bytes across all stacks (substrate plus
    /// engine cache bytes).
    pub resident_bytes: u64,
    /// Whole stacks evicted since the pool was created.
    pub stack_evictions: u64,
    /// The pool budget in bytes, `None` when unbounded.
    pub budget_bytes: Option<u64>,
}

impl PoolStats {
    /// The numeric stats as a flat field list — the single source for
    /// both the `STATS pool` line and the `METRICS` exposition. The
    /// budget is excluded: it renders as `unbounded` in the summary
    /// and as an optional dedicated gauge in the exposition.
    pub fn fields(&self) -> Vec<Field> {
        vec![
            Field::int("worlds", self.worlds_resident as u64),
            Field::int("engines", self.engines_resident as u64),
            Field::int("bytes", self.resident_bytes),
            Field::int("stack_evictions", self.stack_evictions),
        ]
    }

    /// One-line summary, mirroring `EngineStats::summary` style.
    pub fn summary(&self) -> String {
        format!(
            "{} budget={}",
            shortcuts_telemetry::kv_summary(&self.fields()),
            match self.budget_bytes {
                Some(b) => b.to_string(),
                None => "unbounded".into(),
            }
        )
    }
}

/// Caches worlds by seed and engine stacks by `(world seed, policy)`,
/// evicting whole idle stacks under a pool-level [`MemoryBudget`].
pub struct WorldPool {
    cfg: WorldConfig,
    memory: MemoryBudget,
    worlds: Mutex<HashMap<u64, WorldEntry>>,
    engines: Mutex<HashMap<(u64, RoutingPolicy), Arc<PingEngine>>>,
    /// Monotone detach clock; orders lease drops for LRU eviction.
    tick: AtomicU64,
    stack_evictions: AtomicU64,
}

impl WorldPool {
    /// An unbounded pool building worlds from `cfg` (each seed still
    /// produces its own deterministic world).
    pub fn new(cfg: WorldConfig) -> Self {
        Self::with_budget(cfg, MemoryBudget::unbounded())
    }

    /// A pool whose engines are cache-budgeted by `memory` and whose
    /// aggregate residency is bounded by `memory`'s total: idle stacks
    /// are evicted least-recently-detached-first once the total is
    /// exceeded.
    pub fn with_budget(cfg: WorldConfig, memory: MemoryBudget) -> Self {
        WorldPool {
            cfg,
            memory,
            worlds: Mutex::new(HashMap::new()),
            engines: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            stack_evictions: AtomicU64::new(0),
        }
    }

    /// The pool's memory budget.
    pub fn memory(&self) -> MemoryBudget {
        self.memory
    }

    /// The world for `seed`, built on first use.
    ///
    /// The pool-wide lock covers only the slot lookup; the (expensive)
    /// build runs under the *seed's* `OnceLock`. Concurrent sessions
    /// asking for the same new seed wait for one build instead of
    /// racing N duplicates, while sessions on other — already cached —
    /// worlds sail past untouched.
    pub fn world(&self, seed: u64) -> Arc<World> {
        let slot: WorldSlot = {
            let mut worlds = self.worlds.lock();
            Arc::clone(&worlds.entry(seed).or_default().slot)
        };
        Arc::clone(slot.get_or_init(|| Arc::new(World::build(&self.cfg, seed))))
    }

    /// The shared engine stack for `(world seed, policy)`, created on
    /// first use. Every later caller gets the same engine — same
    /// router tables, same pair cache — however many sessions run on
    /// it concurrently. Under a pool budget the engine's own caches
    /// are budget-bounded too.
    pub fn engine(&self, seed: u64, policy: RoutingPolicy) -> Arc<PingEngine> {
        let world = self.world(seed);
        let mut engines = self.engines.lock();
        Arc::clone(
            engines
                .entry((seed, policy))
                .or_insert_with(|| world.shared().engine_budgeted(policy, self.memory)),
        )
    }

    /// Leases the engine stack for `(seed, policy)` to a session.
    ///
    /// While the returned [`PoolCheckout`] lives, the seed's whole
    /// stack is pinned — the evictor skips it no matter how far over
    /// budget the pool runs (a batch mid-flight must never lose its
    /// tables). Dropping the checkout stamps the seed's detach tick
    /// and runs one eviction pass, so residency converges back under
    /// the budget as soon as traffic quiets down.
    pub fn checkout(&self, seed: u64, policy: RoutingPolicy) -> PoolCheckout<'_> {
        {
            let mut worlds = self.worlds.lock();
            worlds.entry(seed).or_default().attached += 1;
        }
        let world = self.world(seed);
        let engine = self.engine(seed, policy);
        PoolCheckout {
            world,
            engine,
            lease: PoolLease { pool: self, seed },
        }
    }

    /// Number of worlds currently resident (builds in flight on other
    /// threads do not count until they finish).
    pub fn worlds_resident(&self) -> usize {
        self.worlds
            .lock()
            .values()
            .filter(|e| e.slot.get().is_some())
            .count()
    }

    /// Health snapshot of every pooled engine stack, sorted by
    /// `(world seed, policy)` for stable output.
    pub fn stats(&self) -> Vec<(u64, RoutingPolicy, EngineStats)> {
        let engines = self.engines.lock();
        let mut out: Vec<_> = engines
            .iter()
            .map(|(&(seed, policy), engine)| (seed, policy, engine.engine_stats()))
            .collect();
        drop(engines);
        out.sort_by_key(|&(seed, policy, _)| (seed, policy.label()));
        out
    }

    /// Aggregate pool health: residency, stack evictions, budget.
    pub fn pool_stats(&self) -> PoolStats {
        let worlds = self.worlds.lock();
        let engines = self.engines.lock();
        PoolStats {
            worlds_resident: worlds.values().filter(|e| e.slot.get().is_some()).count(),
            engines_resident: engines.len(),
            resident_bytes: Self::resident_bytes(&worlds, &engines),
            stack_evictions: self.stack_evictions.load(Ordering::Relaxed),
            budget_bytes: self.memory.total_bytes(),
        }
    }

    /// Approximate bytes the pool keeps resident: every finished
    /// world's substrate plus every engine's cache bytes. Callers hold
    /// both maps' locks.
    fn resident_bytes(
        worlds: &HashMap<u64, WorldEntry>,
        engines: &HashMap<(u64, RoutingPolicy), Arc<PingEngine>>,
    ) -> u64 {
        let substrate: u64 = worlds
            .values()
            .filter_map(|e| e.slot.get())
            .map(|w| w.shared().approx_bytes())
            .sum();
        let caches: u64 = engines
            .values()
            .map(|eng| {
                let s = eng.engine_stats();
                s.router_resident_bytes + s.pair_resident_bytes
            })
            .sum();
        substrate + caches
    }

    /// One eviction pass: while aggregate residency exceeds the budget
    /// total, drop the least-recently-detached **idle** stack (world
    /// plus all its engines). Stops when under budget or when only
    /// leased stacks remain — live batches are never interrupted.
    fn enforce_budget(&self) {
        let Some(budget) = self.memory.total_bytes() else {
            return;
        };
        let mut worlds = self.worlds.lock();
        let mut engines = self.engines.lock();
        while Self::resident_bytes(&worlds, &engines) > budget {
            let victim = worlds
                .iter()
                .filter(|(_, e)| e.attached == 0 && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_detach)
                .map(|(&seed, _)| seed);
            let Some(seed) = victim else {
                break; // everything resident is leased
            };
            worlds.remove(&seed);
            engines.retain(|&(s, _), _| s != seed);
            self.stack_evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A leased engine stack: the world, its engine, and the lease pinning
/// both in the pool. Keep it for the duration of the batch.
pub struct PoolCheckout<'p> {
    /// The leased world.
    pub world: Arc<World>,
    /// The leased engine stack.
    pub engine: Arc<PingEngine>,
    /// The pin; dropped with the checkout, detaching the seed.
    pub lease: PoolLease<'p>,
}

/// Pins one world seed in the pool. Dropping the lease — normally or
/// during a session thread's unwinding — records the detach tick and
/// lets the evictor reclaim the stack if the pool is over budget.
pub struct PoolLease<'p> {
    pool: &'p WorldPool,
    seed: u64,
}

impl Drop for PoolLease<'_> {
    fn drop(&mut self) {
        {
            let mut worlds = self.pool.worlds.lock();
            if let Some(entry) = worlds.get_mut(&self.seed) {
                entry.attached = entry.attached.saturating_sub(1);
                entry.last_detach = self.pool.tick.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.pool.enforce_budget();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WorldPool {
        WorldPool::new(WorldConfig::small())
    }

    /// A budget smaller than one small-world substrate: every detach
    /// leaves the pool over budget, so only leased stacks survive.
    fn starved_pool() -> WorldPool {
        WorldPool::with_budget(WorldConfig::small(), MemoryBudget::bytes(1))
    }

    #[test]
    fn worlds_are_cached_by_seed() {
        let p = pool();
        let a = p.world(5);
        let b = p.world(5);
        assert!(Arc::ptr_eq(&a, &b));
        let c = p.world(6);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(p.worlds_resident(), 2);
    }

    #[test]
    fn engines_are_cached_by_seed_and_policy() {
        let p = pool();
        let a = p.engine(5, RoutingPolicy::ValleyFree);
        let b = p.engine(5, RoutingPolicy::ValleyFree);
        assert!(Arc::ptr_eq(&a, &b), "same key must reuse the stack");
        let c = p.engine(5, RoutingPolicy::ShortestPath);
        assert!(!Arc::ptr_eq(&a, &c), "policies get separate routers");
        // Both engines route over the one cached world's topology.
        assert!(std::ptr::eq(a.topology(), c.topology()));
        assert_eq!(p.worlds_resident(), 1);
    }

    #[test]
    fn stats_cover_every_pooled_engine() {
        let p = pool();
        p.engine(1, RoutingPolicy::ValleyFree);
        p.engine(2, RoutingPolicy::ValleyFree);
        p.engine(1, RoutingPolicy::ShortestPath);
        let stats = p.stats();
        assert_eq!(stats.len(), 3);
        // Sorted by (seed, policy label).
        assert_eq!(stats[0].0, 1);
        assert_eq!(stats[1].0, 1);
        assert_eq!(stats[2].0, 2);
    }

    #[test]
    fn unbounded_pool_never_evicts() {
        let p = pool();
        for seed in 0..4 {
            let co = p.checkout(seed, RoutingPolicy::ValleyFree);
            drop(co);
        }
        assert_eq!(p.worlds_resident(), 4);
        let ps = p.pool_stats();
        assert_eq!(ps.stack_evictions, 0);
        assert_eq!(ps.budget_bytes, None);
        assert!(ps.resident_bytes > 0);
    }

    #[test]
    fn leased_stacks_are_pinned_and_idle_stacks_evict_lru() {
        let p = starved_pool();
        let held = p.checkout(1, RoutingPolicy::ValleyFree);
        // Two more stacks come and go; each detach leaves the pool
        // over its 1-byte budget, so each idle stack is reclaimed —
        // but never the leased seed 1.
        for seed in [2, 3] {
            let co = p.checkout(seed, RoutingPolicy::ValleyFree);
            drop(co);
        }
        assert_eq!(p.worlds_resident(), 1, "only the leased world stays");
        assert!(p.pool_stats().stack_evictions >= 2);
        // The leased engine is still the live stack (never torn down
        // under the session).
        assert_eq!(held.engine.engine_stats().pair_cache_entries, 0);
        drop(held);
        // Now seed 1 is idle too and the next pass reclaims it.
        let co = p.checkout(4, RoutingPolicy::ValleyFree);
        drop(co);
        assert_eq!(p.worlds_resident(), 0, "all idle stacks reclaimed");
    }

    #[test]
    fn evicted_stack_rebuilds_deterministically() {
        let p = starved_pool();
        let first = p.checkout(7, RoutingPolicy::ValleyFree);
        let topo_fact = first.world.topo.as_count();
        drop(first);
        assert_eq!(p.worlds_resident(), 0, "idle stack evicted");
        // Re-checkout rebuilds the same deterministic world.
        let again = p.checkout(7, RoutingPolicy::ValleyFree);
        assert_eq!(again.world.topo.as_count(), topo_fact);
        assert_eq!(p.pool_stats().worlds_resident, 1);
    }

    #[test]
    fn pool_stats_summary_names_every_field() {
        let p = starved_pool();
        drop(p.checkout(1, RoutingPolicy::ValleyFree));
        let s = p.pool_stats().summary();
        for key in [
            "worlds=",
            "engines=",
            "bytes=",
            "stack_evictions=",
            "budget=1",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        let unbounded = pool().pool_stats().summary();
        assert!(unbounded.contains("budget=unbounded"));
    }
}
