//! Sessions: bounded admission plus the per-connection request loop.
//!
//! A session is one TCP connection driven by one thread. The
//! [`SessionManager`] owns what sessions share — the [`WorldPool`],
//! the admission counter, the [`BroadcastHub`] and the
//! [`CreditLedger`] — while everything request-scoped (the last run's
//! results, the half-parsed line, the negotiated framing) lives on the
//! session thread's stack, so a dying session takes nothing shared
//! down with it:
//!
//! - admission is released by a [`SessionPermit`] drop guard, which
//!   runs during unwinding too;
//! - the pool's locks are non-poisoning (`parking_lot`), so a panic
//!   mid-`world()` cannot wedge other sessions;
//! - a producing session that dies fails its broadcast via
//!   [`ProducerGuard`]'s drop, so taps report `ERR broadcast aborted`
//!   instead of hanging;
//! - the measurement scheduler ([`shortcuts_core::shard`]) already
//!   propagates worker panics as a panic of the calling (session)
//!   thread instead of deadlocking the pool.
//!
//! Requests execute synchronously on the session thread; concurrency
//! across sessions comes from the thread-per-connection server,
//! concurrency *within* a request from the sharded `(campaign, round)`
//! scheduler every run uses, and *deduplication* across sessions from
//! the broadcast hub: identical batches execute once and fan out.
//!
//! Admission is two-tier. `max_sessions` still bounds concurrent
//! connections (`ERR busy` at accept), but *work* is priced by
//! credits: each RUN/SWEEP costs `rounds × scenarios` from the
//! client's bucket, a SUBSCRIBE tap costs a flat 1, and
//! STATS/CSV/HELLO are free — so cheap probes never starve behind
//! heavy sweeps and one greedy client cannot monopolize the engines.
//! Spend is observable: `STATS` lists every metered client's refilled
//! balance, and a session that opted in with `HELLO credits=on` gets a
//! ` credits=<remaining>` suffix on each metered `OK` (appended after
//! broadcast fan-out, so shared streams stay byte-identical).

use crate::broadcast::{Attach, BroadcastHub, BroadcastKey, ProducerGuard, ServiceCounters};
use crate::credits::{request_cost, Charge, CreditConfig, CreditLedger, TAP_COST};
use crate::frame::{ResponseWriter, RoundLine};
use crate::pool::WorldPool;
use crate::protocol::{Request, GREETING};
use shortcuts_core::report::cases_csv;
use shortcuts_core::sweep::{Sweep, SweepConfig, SweepReport};
use shortcuts_core::workflow::CampaignConfig;
use shortcuts_core::world::WorldConfig;
use shortcuts_telemetry as telemetry;
use shortcuts_topology::{ChurnSchedule, MemoryBudget};
use std::io::{BufRead, BufReader};
use std::net::{IpAddr, Ipv4Addr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum concurrent sessions; further connections are refused
    /// with `ERR busy` at accept time.
    pub max_sessions: usize,
    /// Upper bound a session's `jobs-in-flight` / `rounds-in-flight`
    /// request options are clamped to (bounds live plans and partial
    /// results per session).
    pub max_jobs_in_flight: usize,
    /// World generator configuration for pooled worlds.
    pub world: WorldConfig,
    /// World seed used when a request does not pin `world-seed`.
    pub default_world_seed: u64,
    /// Base campaign configuration requests specialize (seed, rounds,
    /// policy and scheduling are overridden per request).
    pub base_campaign: CampaignConfig,
    /// Service-wide memory budget: bounds each pooled engine's caches
    /// *and* the pool's aggregate stack residency. Unbounded by
    /// default.
    pub memory: MemoryBudget,
    /// Live-event headroom per broadcast subscriber: a tap more than
    /// this many events behind the producer is shed with `ERR lagged`.
    pub subscriber_lag: usize,
    /// Finished broadcasts kept for SUBSCRIBE replay (0 disables).
    pub broadcast_cache: usize,
    /// Per-client credit admission policy.
    pub credits: CreditConfig,
}

impl ServiceConfig {
    /// Paper-scale worlds, 8 sessions, the paper's campaign shape.
    pub fn paper_scale() -> Self {
        ServiceConfig {
            max_sessions: 8,
            max_jobs_in_flight: 32,
            world: WorldConfig::paper_scale(),
            default_world_seed: 2017,
            base_campaign: CampaignConfig::paper(),
            memory: MemoryBudget::unbounded(),
            subscriber_lag: 256,
            broadcast_cache: 2,
            credits: CreditConfig::default(),
        }
    }

    /// Small worlds and small campaigns — tests and benches.
    pub fn small() -> Self {
        ServiceConfig {
            world: WorldConfig::small(),
            base_campaign: CampaignConfig::small(),
            ..Self::paper_scale()
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Shared session state: the pool, the admission counter, the
/// broadcast hub and the credit ledger.
pub struct SessionManager {
    cfg: ServiceConfig,
    pool: WorldPool,
    active: AtomicUsize,
    hub: BroadcastHub,
    credits: CreditLedger,
    counters: Arc<ServiceCounters>,
}

impl SessionManager {
    /// Creates a manager (and its world pool) from a config.
    pub fn new(cfg: ServiceConfig) -> Self {
        let pool = WorldPool::with_budget(cfg.world.clone(), cfg.memory);
        let counters = Arc::new(ServiceCounters::default());
        let hub = BroadcastHub::new(
            cfg.subscriber_lag,
            cfg.broadcast_cache,
            Arc::clone(&counters),
        );
        let credits = CreditLedger::new(cfg.credits);
        SessionManager {
            cfg,
            pool,
            active: AtomicUsize::new(0),
            hub,
            credits,
            counters,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shared world pool.
    pub fn pool(&self) -> &WorldPool {
        &self.pool
    }

    /// The broadcast hub (tests attach through it directly).
    pub fn hub(&self) -> &BroadcastHub {
        &self.hub
    }

    /// The credit ledger.
    pub fn credits(&self) -> &CreditLedger {
        &self.credits
    }

    /// The service-wide fan-out and admission counters.
    pub fn counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// Sessions currently admitted.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Tries to admit one more session; `None` when the service is at
    /// `max_sessions`. The returned permit releases the slot on drop —
    /// including the drop that runs while a session thread unwinds
    /// from a panic.
    pub fn try_admit(self: &Arc<Self>) -> Option<SessionPermit> {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if current >= self.cfg.max_sessions {
                return None;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(SessionPermit {
                        mgr: Arc::clone(self),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII admission slot; dropping it (normally or during unwinding)
/// frees the slot for the next client.
pub struct SessionPermit {
    mgr: Arc<SessionManager>,
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.mgr.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Charges the client's bucket; returns `Some(remaining)` on success.
/// On denial writes `ERR credits` with a retry hint and returns `None`
/// (the session stays usable).
fn charge(
    mgr: &SessionManager,
    w: &mut ResponseWriter,
    who: IpAddr,
    cost: f64,
) -> std::io::Result<Option<f64>> {
    match mgr.credits.try_charge(who, cost) {
        Charge::Ok { remaining } => Ok(Some(remaining)),
        Charge::Denied {
            need,
            have,
            retry_after,
        } => {
            mgr.counters.credit_denied();
            w.err(&format!(
                "credits need={need:.0} have={have:.0} retry-after-ms={}",
                retry_after.as_millis().max(1)
            ))?;
            w.flush()?;
            Ok(None)
        }
    }
}

/// The session-local ` credits=<remaining>` suffix for a metered `OK`
/// terminator. Empty unless the session opted in with
/// `HELLO credits=on`; zero-cost charges report an infinite balance,
/// which is no information — they get no suffix either.
fn credit_suffix(show: bool, remaining: f64) -> String {
    if show && remaining.is_finite() {
        format!(" credits={remaining:.0}")
    } else {
        String::new()
    }
}

/// Runs one session to completion: greeting, then the request loop
/// until the client quits or disconnects. IO errors (client went away)
/// end the session silently; protocol errors are reported as `ERR`
/// lines and the loop continues.
pub fn run_session(mgr: &SessionManager, stream: TcpStream) -> std::io::Result<()> {
    // Credit buckets key on the peer IP; a socket without one (already
    // disconnected) gets the loopback bucket and will error on first
    // write anyway.
    let peer = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::LOCALHOST));
    let mut w = ResponseWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    w.text_line(GREETING)?;
    w.flush()?;

    let mut last: Option<Arc<SweepReport>> = None;
    let mut show_credits = false;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // clean disconnect
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = match Request::parse(trimmed) {
            Ok(r) => r,
            Err(msg) => {
                w.err(&msg)?;
                w.flush()?;
                continue;
            }
        };
        match request {
            Request::Quit => {
                w.ok("bye")?;
                return w.flush();
            }
            Request::Hello { framing, credits } => {
                // The reply is always text so a client can negotiate
                // before it has to speak frames; everything after it
                // uses the new framing.
                w.text_line(&format!("OK hello framing={}", framing.label()))?;
                w.flush()?;
                w.set_framing(framing);
                show_credits = credits;
            }
            Request::Stats => {
                let stats = mgr.pool.stats();
                for (seed, policy, s) in &stats {
                    w.stats(&format!(
                        "world={seed} policy={} {}",
                        policy.label(),
                        s.summary()
                    ))?;
                }
                // Aggregate pool residency, the service-wide fan-out /
                // admission counters, then one balance line per
                // metered client.
                w.stats(&format!("pool {}", mgr.pool.pool_stats().summary()))?;
                w.stats(&format!("service {}", mgr.counters.snapshot().summary()))?;
                let balances = mgr.credits.balances();
                for (ip, balance) in &balances {
                    w.stats(&format!("credits ip={ip} balance={balance:.0}"))?;
                }
                w.ok(&format!("stats {}", stats.len() + 2 + balances.len()))?;
                w.flush()?;
            }
            Request::Metrics => {
                // Prometheus-style exposition. Process-wide telemetry
                // first (stage latency histograms, scheduler gauges),
                // then per-engine / pool / service / credit samples
                // rendered from the *same* `fields()` lists the STATS
                // arm formats — one source, two surfaces.
                let mut out = String::new();
                telemetry::global().render_into(&mut out);
                for (seed, policy, s) in &mgr.pool.stats() {
                    let world = seed.to_string();
                    telemetry::prom_fields(
                        &mut out,
                        "colo_engine",
                        &[("world", world.as_str()), ("policy", policy.label())],
                        &s.fields(),
                    );
                }
                let pool = mgr.pool.pool_stats();
                telemetry::prom_fields(&mut out, "colo_pool", &[], &pool.fields());
                if let Some(budget) = pool.budget_bytes {
                    telemetry::prom_line(
                        &mut out,
                        "colo_pool_budget_bytes",
                        &[],
                        telemetry::FieldValue::Int(budget),
                    );
                }
                telemetry::prom_fields(
                    &mut out,
                    "colo_service",
                    &[],
                    &mgr.counters.snapshot().fields(),
                );
                for (ip, balance) in &mgr.credits.balances() {
                    let ip = ip.to_string();
                    telemetry::prom_line(
                        &mut out,
                        "colo_credits_balance",
                        &[("ip", ip.as_str())],
                        telemetry::FieldValue::Rate(*balance),
                    );
                }
                w.metrics(out.as_bytes())?;
                w.flush()?;
            }
            Request::CsvCases { label } => {
                let Some(report) = &last else {
                    w.err("no finished run in this session")?;
                    w.flush()?;
                    continue;
                };
                let scenario = match &label {
                    Some(l) => report.scenarios.iter().find(|s| &s.label == l),
                    None => report.scenarios.first(),
                };
                match scenario {
                    Some(sc) => {
                        w.csv(
                            &format!("cases_{}.csv", sc.label),
                            cases_csv(&sc.results).as_bytes(),
                        )?;
                        w.flush()?;
                    }
                    None => {
                        w.err(&format!("no scenario labelled {:?}", label.unwrap()))?;
                        w.flush()?;
                    }
                }
            }
            Request::CsvSweep => match &last {
                Some(report) => {
                    w.csv("sweep.csv", report.comparison_csv().as_bytes())?;
                    w.flush()?;
                }
                None => {
                    w.err("no finished run in this session")?;
                    w.flush()?;
                }
            },
            Request::Run {
                seed,
                rounds,
                world_seed,
                policy,
                label,
                rounds_in_flight,
                churn,
            } => {
                let Some(remaining) = charge(mgr, &mut w, peer, request_cost(rounds, 1))? else {
                    continue;
                };
                let mut cfg = sweep_config(mgr, &[seed], rounds, policy, rounds_in_flight, churn);
                let relabelled = label.is_some();
                if let Some(label) = label {
                    cfg.scenarios[0].label = label;
                }
                // Register the execution as a broadcast when the key
                // is free and the stream is shareable (default label,
                // no churn), so concurrent SUBSCRIBEs ride it.
                let producer = if !relabelled && cfg.churn.is_empty() {
                    mgr.hub
                        .try_produce(batch_key(mgr, world_seed, policy, &cfg))
                } else {
                    None
                };
                let suffix = credit_suffix(show_credits, remaining);
                if let Some(report) =
                    stream_batch(mgr, &mut w, world_seed, cfg, "run 1", &suffix, producer)?
                {
                    last = Some(report);
                }
            }
            Request::Sweep {
                seeds,
                rounds,
                world_seed,
                policy,
                jobs_in_flight,
                churn,
            } => {
                let n = seeds.len();
                let Some(remaining) = charge(mgr, &mut w, peer, request_cost(rounds, n))? else {
                    continue;
                };
                let cfg = sweep_config(mgr, &seeds, rounds, policy, jobs_in_flight, churn);
                let producer = if cfg.churn.is_empty() {
                    mgr.hub
                        .try_produce(batch_key(mgr, world_seed, policy, &cfg))
                } else {
                    None
                };
                let ok = format!("sweep {n}");
                let suffix = credit_suffix(show_credits, remaining);
                if let Some(report) =
                    stream_batch(mgr, &mut w, world_seed, cfg, &ok, &suffix, producer)?
                {
                    last = Some(report);
                }
            }
            Request::Subscribe {
                seeds,
                rounds,
                world_seed,
                policy,
                jobs_in_flight,
            } => {
                let n = seeds.len();
                let cfg = sweep_config(
                    mgr,
                    &seeds,
                    rounds,
                    policy,
                    jobs_in_flight,
                    ChurnSchedule::none(),
                );
                let key = batch_key(mgr, world_seed, policy, &cfg);
                let ok = if n == 1 {
                    "run 1".to_string()
                } else {
                    format!("sweep {n}")
                };
                match mgr.hub.attach(key) {
                    Attach::Producer(producer) => {
                        // First subscriber executes and pays the full
                        // measurement cost. Denial drops the guard,
                        // which aborts the broadcast for any tap that
                        // raced in behind us.
                        let Some(remaining) = charge(mgr, &mut w, peer, request_cost(rounds, n))?
                        else {
                            continue;
                        };
                        let suffix = credit_suffix(show_credits, remaining);
                        if let Some(report) = stream_batch(
                            mgr,
                            &mut w,
                            world_seed,
                            cfg,
                            &ok,
                            &suffix,
                            Some(producer),
                        )? {
                            last = Some(report);
                        }
                    }
                    Attach::Tap(sub) => {
                        // Tapping consumes fan-out bandwidth, not
                        // measurement: a flat 1 credit.
                        let Some(remaining) = charge(mgr, &mut w, peer, TAP_COST)? else {
                            continue;
                        };
                        let suffix = credit_suffix(show_credits, remaining);
                        if let Some(report) = serve_subscription(&mut w, &sub, &suffix)? {
                            last = Some(report);
                        }
                    }
                }
            }
        }
    }
}

/// Builds the scenario batch for a request from the service's base
/// campaign, clamping the in-flight bound to the service limit.
fn sweep_config(
    mgr: &SessionManager,
    seeds: &[u64],
    rounds: u32,
    policy: shortcuts_topology::routing::RoutingPolicy,
    jobs_in_flight: Option<usize>,
    churn: ChurnSchedule,
) -> SweepConfig {
    let mut base = mgr.cfg.base_campaign.clone();
    base.rounds = rounds;
    base.routing = policy;
    // Engines come budgeted from the pool; recording the budget here
    // keeps the config honest for anyone inspecting it.
    base.memory = mgr.cfg.memory;
    let mut cfg = SweepConfig::from_seeds(&base, seeds.iter().copied());
    cfg.jobs_in_flight = jobs_in_flight
        .unwrap_or(cfg.jobs_in_flight)
        .clamp(1, mgr.cfg.max_jobs_in_flight);
    cfg.churn = churn;
    cfg
}

/// The broadcast identity of a batch: resolved world seed, policy,
/// campaign seeds and rounds. Scheduling knobs are excluded — they
/// never change the stream bytes.
fn batch_key(
    mgr: &SessionManager,
    world_seed: Option<u64>,
    policy: shortcuts_topology::routing::RoutingPolicy,
    cfg: &SweepConfig,
) -> BroadcastKey {
    BroadcastKey {
        world_seed: world_seed.unwrap_or(mgr.cfg.default_world_seed),
        policy,
        seeds: cfg.scenarios.iter().map(|s| s.config.seed).collect(),
        rounds: cfg.scenarios.first().map(|s| s.config.rounds).unwrap_or(0),
    }
}

/// Runs one batch on the pooled engine stack, streaming `ROUND` events
/// as rounds complete and `END` events per scenario at the end,
/// terminated by `OK <ok_detail>`. When `producer` is set, every event
/// is also published to the broadcast so taps receive the identical
/// stream. `ok_suffix` (credit-spend feedback) is appended only to the
/// session-local `OK` write, never to the broadcast's terminal event —
/// balances are per-client, streams are shared.
///
/// A client that disconnects mid-stream stops receiving events but the
/// batch runs to completion — the shared engine and scheduler are
/// never interrupted mid-flight, and the broadcast still finishes for
/// its taps — and the session ends right after with the write error.
fn stream_batch(
    mgr: &SessionManager,
    w: &mut ResponseWriter,
    world_seed: Option<u64>,
    cfg: SweepConfig,
    ok_detail: &str,
    ok_suffix: &str,
    mut producer: Option<ProducerGuard<'_>>,
) -> std::io::Result<Option<Arc<SweepReport>>> {
    let world_seed = world_seed.unwrap_or(mgr.cfg.default_world_seed);
    let policy = cfg
        .scenarios
        .first()
        .map(|s| s.config.routing)
        .unwrap_or_default();
    // Lease the stack for the whole batch: the pool's evictor never
    // reclaims a leased world, and the lease drop at the end of this
    // function is what stamps the LRU detach tick.
    let lease = mgr.pool.checkout(world_seed, policy);
    let (world, engine) = (Arc::clone(&lease.world), Arc::clone(&lease.engine));
    let engine = if cfg.churn.is_empty() {
        engine
    } else {
        // Reject bad schedules with a protocol error before any round
        // runs, not a mid-batch panic.
        if let Err(msg) = cfg.churn.validate(&world.topo) {
            if let Some(p) = producer.as_mut() {
                p.finish_err(&msg);
            }
            w.err(&msg)?;
            w.flush()?;
            return Ok(None);
        }
        // Churn permanently advances an engine's epoch, so a churning
        // batch measures on a PRIVATE engine stack over the pooled
        // (immutable) world — the pooled engine never sees a delta.
        world.shared().engine_budgeted(policy, mgr.cfg.memory)
    };
    let labels: Vec<String> = cfg.scenarios.iter().map(|s| s.label.clone()).collect();

    // Stream rounds as they complete: one buffered write + one flush
    // per round. Write failures (the client went away) are remembered
    // rather than propagated mid-run: the scheduler finishes the
    // batch — and the broadcast keeps publishing for its taps — then
    // the error ends the session.
    let mut write_err: Option<std::io::Error> = None;
    let report = Sweep::with_engine(world, engine, cfg).run_streaming(|scenario, s| {
        let round = RoundLine::from_summary(&labels[scenario], s);
        if let Some(p) = &producer {
            p.publish_round(&round);
        }
        if write_err.is_some() {
            return;
        }
        if let Err(e) = w.round(&round).and_then(|()| w.flush()) {
            write_err = Some(e);
        }
    });
    let report = Arc::new(report);
    // END lines batch into one flush with the OK terminator.
    for sc in &report.scenarios {
        let payload = format!(
            "{} seed={} cases={} pings={} unresponsive={}",
            sc.label,
            sc.seed,
            sc.results.total_cases(),
            sc.results.pings_sent,
            sc.results.unresponsive_pairs,
        );
        if let Some(p) = &producer {
            p.publish_end(&payload);
        }
        if write_err.is_none() {
            if let Err(e) = w.end(&payload) {
                write_err = Some(e);
            }
        }
    }
    if let Some(p) = producer.as_mut() {
        p.finish_ok(ok_detail, Arc::clone(&report));
    }
    if let Some(e) = write_err {
        return Err(e);
    }
    w.ok(&format!("{ok_detail}{ok_suffix}"))?;
    w.flush()?;
    Ok(Some(report))
}

/// Rides an existing broadcast: replays the backlog, then streams live
/// events until the terminal one. Returns the shared report so `CSV`
/// fetches work identically to a solo run. `ok_suffix` carries the
/// *tap's own* credit feedback — appended locally, the broadcast bytes
/// stay shared.
fn serve_subscription(
    w: &mut ResponseWriter,
    sub: &crate::broadcast::Subscription,
    ok_suffix: &str,
) -> std::io::Result<Option<Arc<SweepReport>>> {
    use crate::broadcast::BroadcastEvent;
    loop {
        match sub.recv() {
            Some(BroadcastEvent::Round(r)) => {
                w.round(&r)?;
                w.flush()?;
            }
            Some(BroadcastEvent::End(payload)) => {
                // END events batch; the terminal event flushes them.
                w.end(&payload)?;
            }
            Some(BroadcastEvent::Done { ok, report }) => {
                w.ok(&format!("{ok}{ok_suffix}"))?;
                w.flush()?;
                return Ok(Some(report));
            }
            Some(BroadcastEvent::Failed(msg)) => {
                w.err(&msg)?;
                w.flush()?;
                return Ok(None);
            }
            None => {
                let msg = if sub.was_shed() {
                    "lagged: subscriber fell behind the broadcast and was shed; \
                     re-request to resubscribe"
                } else {
                    "broadcast aborted: producer session died"
                };
                w.err(msg)?;
                w.flush()?;
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_bounded_and_released_on_drop() {
        let mut cfg = ServiceConfig::small();
        cfg.max_sessions = 2;
        let mgr = Arc::new(SessionManager::new(cfg));
        let a = mgr.try_admit().expect("slot 1");
        let _b = mgr.try_admit().expect("slot 2");
        assert!(mgr.try_admit().is_none(), "third session must be refused");
        assert_eq!(mgr.active_sessions(), 2);
        drop(a);
        assert_eq!(mgr.active_sessions(), 1);
        assert!(mgr.try_admit().is_some(), "freed slot must be reusable");
    }

    #[test]
    fn permit_is_released_during_unwinding() {
        let mut cfg = ServiceConfig::small();
        cfg.max_sessions = 1;
        let mgr = Arc::new(SessionManager::new(cfg));
        let mgr2 = Arc::clone(&mgr);
        let _ = std::panic::catch_unwind(move || {
            let _permit = mgr2.try_admit().expect("slot");
            panic!("session died");
        });
        assert_eq!(mgr.active_sessions(), 0, "panicked session must release");
        assert!(mgr.try_admit().is_some());
    }

    #[test]
    fn jobs_in_flight_is_clamped_to_the_service_limit() {
        let mut service_cfg = ServiceConfig::small();
        service_cfg.max_jobs_in_flight = 4;
        let mgr = SessionManager::new(service_cfg);
        let churn = ChurnSchedule::none;
        let cfg = sweep_config(&mgr, &[1, 2], 1, Default::default(), Some(1000), churn());
        assert_eq!(cfg.jobs_in_flight, 4);
        let cfg = sweep_config(&mgr, &[1, 2], 1, Default::default(), Some(0), churn());
        assert_eq!(cfg.jobs_in_flight, 1);
        let cfg = sweep_config(&mgr, &[1, 2], 1, Default::default(), Some(3), churn());
        assert_eq!(cfg.jobs_in_flight, 3);
    }

    #[test]
    fn batch_keys_resolve_defaults_and_ignore_scheduling() {
        let mgr = SessionManager::new(ServiceConfig::small());
        let policy = Default::default();
        let a = sweep_config(&mgr, &[1, 2], 3, policy, Some(2), ChurnSchedule::none());
        let b = sweep_config(&mgr, &[1, 2], 3, policy, Some(16), ChurnSchedule::none());
        let default_seed = mgr.config().default_world_seed;
        let ka = batch_key(&mgr, None, policy, &a);
        let kb = batch_key(&mgr, Some(default_seed), policy, &b);
        assert_eq!(
            ka, kb,
            "elided default world seed and jobs-in-flight must not split keys"
        );
        let kc = batch_key(&mgr, Some(default_seed + 1), policy, &a);
        assert_ne!(ka, kc);
    }
}
