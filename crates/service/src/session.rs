//! Sessions: bounded admission plus the per-connection request loop.
//!
//! A session is one TCP connection driven by one thread. The
//! [`SessionManager`] owns what sessions share — the [`WorldPool`] and
//! the admission counter — while everything request-scoped (the last
//! run's results, the half-parsed line) lives on the session thread's
//! stack, so a dying session takes nothing shared down with it:
//!
//! - admission is released by a [`SessionPermit`] drop guard, which
//!   runs during unwinding too;
//! - the pool's locks are non-poisoning (`parking_lot`), so a panic
//!   mid-`world()` cannot wedge other sessions;
//! - the measurement scheduler ([`shortcuts_core::shard`]) already
//!   propagates worker panics as a panic of the calling (session)
//!   thread instead of deadlocking the pool.
//!
//! Requests execute synchronously on the session thread; concurrency
//! across sessions comes from the thread-per-connection server, and
//! concurrency *within* a request from the sharded
//! `(campaign, round)` scheduler every run uses.

use crate::pool::WorldPool;
use crate::protocol::{Request, GREETING};
use shortcuts_core::report::cases_csv;
use shortcuts_core::sweep::{Sweep, SweepConfig, SweepReport};
use shortcuts_core::workflow::CampaignConfig;
use shortcuts_core::world::WorldConfig;
use shortcuts_topology::{ChurnSchedule, MemoryBudget};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum concurrent sessions; further connections are refused
    /// with `ERR busy` at accept time.
    pub max_sessions: usize,
    /// Upper bound a session's `jobs-in-flight` / `rounds-in-flight`
    /// request options are clamped to (bounds live plans and partial
    /// results per session).
    pub max_jobs_in_flight: usize,
    /// World generator configuration for pooled worlds.
    pub world: WorldConfig,
    /// World seed used when a request does not pin `world-seed`.
    pub default_world_seed: u64,
    /// Base campaign configuration requests specialize (seed, rounds,
    /// policy and scheduling are overridden per request).
    pub base_campaign: CampaignConfig,
    /// Service-wide memory budget: bounds each pooled engine's caches
    /// *and* the pool's aggregate stack residency. Unbounded by
    /// default.
    pub memory: MemoryBudget,
}

impl ServiceConfig {
    /// Paper-scale worlds, 8 sessions, the paper's campaign shape.
    pub fn paper_scale() -> Self {
        ServiceConfig {
            max_sessions: 8,
            max_jobs_in_flight: 32,
            world: WorldConfig::paper_scale(),
            default_world_seed: 2017,
            base_campaign: CampaignConfig::paper(),
            memory: MemoryBudget::unbounded(),
        }
    }

    /// Small worlds and small campaigns — tests and benches.
    pub fn small() -> Self {
        ServiceConfig {
            world: WorldConfig::small(),
            base_campaign: CampaignConfig::small(),
            ..Self::paper_scale()
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Shared session state: the pool and the admission counter.
pub struct SessionManager {
    cfg: ServiceConfig,
    pool: WorldPool,
    active: AtomicUsize,
}

impl SessionManager {
    /// Creates a manager (and its world pool) from a config.
    pub fn new(cfg: ServiceConfig) -> Self {
        let pool = WorldPool::with_budget(cfg.world.clone(), cfg.memory);
        SessionManager {
            cfg,
            pool,
            active: AtomicUsize::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shared world pool.
    pub fn pool(&self) -> &WorldPool {
        &self.pool
    }

    /// Sessions currently admitted.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Tries to admit one more session; `None` when the service is at
    /// `max_sessions`. The returned permit releases the slot on drop —
    /// including the drop that runs while a session thread unwinds
    /// from a panic.
    pub fn try_admit(self: &Arc<Self>) -> Option<SessionPermit> {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if current >= self.cfg.max_sessions {
                return None;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(SessionPermit {
                        mgr: Arc::clone(self),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII admission slot; dropping it (normally or during unwinding)
/// frees the slot for the next client.
pub struct SessionPermit {
    mgr: Arc<SessionManager>,
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.mgr.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The session's memory of its last finished batch, for `CSV` fetches.
struct LastRun {
    report: SweepReport,
}

/// Runs one session to completion: greeting, then the request loop
/// until the client quits or disconnects. IO errors (client went away)
/// end the session silently; protocol errors are reported as `ERR`
/// lines and the loop continues.
pub fn run_session(mgr: &SessionManager, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{GREETING}")?;
    writer.flush()?;

    let mut last: Option<LastRun> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // clean disconnect
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = match Request::parse(trimmed) {
            Ok(r) => r,
            Err(msg) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
                continue;
            }
        };
        match request {
            Request::Quit => {
                writeln!(writer, "OK bye")?;
                return writer.flush();
            }
            Request::Stats => {
                let stats = mgr.pool.stats();
                for (seed, policy, s) in &stats {
                    writeln!(
                        writer,
                        "STATS world={seed} policy={} {}",
                        policy.label(),
                        s.summary()
                    )?;
                }
                // One aggregate pool line after the per-engine lines:
                // residency, stack evictions and the budget itself.
                writeln!(writer, "STATS pool {}", mgr.pool.pool_stats().summary())?;
                writeln!(writer, "OK stats {}", stats.len() + 1)?;
                writer.flush()?;
            }
            Request::CsvCases { label } => {
                let Some(run) = &last else {
                    writeln!(writer, "ERR no finished run in this session")?;
                    writer.flush()?;
                    continue;
                };
                let scenario = match &label {
                    Some(l) => run.report.scenarios.iter().find(|s| &s.label == l),
                    None => run.report.scenarios.first(),
                };
                match scenario {
                    Some(sc) => {
                        send_csv(&mut writer, &format!("cases_{}.csv", sc.label), {
                            cases_csv(&sc.results).as_bytes()
                        })?;
                    }
                    None => {
                        writeln!(writer, "ERR no scenario labelled {:?}", label.unwrap())?;
                        writer.flush()?;
                    }
                }
            }
            Request::CsvSweep => match &last {
                Some(run) => {
                    send_csv(&mut writer, "sweep.csv", {
                        run.report.comparison_csv().as_bytes()
                    })?;
                }
                None => {
                    writeln!(writer, "ERR no finished run in this session")?;
                    writer.flush()?;
                }
            },
            Request::Run {
                seed,
                rounds,
                world_seed,
                policy,
                label,
                rounds_in_flight,
                churn,
            } => {
                let mut cfg = sweep_config(mgr, &[seed], rounds, policy, rounds_in_flight, churn);
                if let Some(label) = label {
                    cfg.scenarios[0].label = label;
                }
                if let Some(report) = stream_batch(mgr, &mut writer, world_seed, policy, cfg)? {
                    last = Some(LastRun { report });
                    writeln!(writer, "OK run 1")?;
                }
                writer.flush()?;
            }
            Request::Sweep {
                seeds,
                rounds,
                world_seed,
                policy,
                jobs_in_flight,
                churn,
            } => {
                let n = seeds.len();
                let cfg = sweep_config(mgr, &seeds, rounds, policy, jobs_in_flight, churn);
                if let Some(report) = stream_batch(mgr, &mut writer, world_seed, policy, cfg)? {
                    last = Some(LastRun { report });
                    writeln!(writer, "OK sweep {n}")?;
                }
                writer.flush()?;
            }
        }
    }
}

/// Builds the scenario batch for a request from the service's base
/// campaign, clamping the in-flight bound to the service limit.
fn sweep_config(
    mgr: &SessionManager,
    seeds: &[u64],
    rounds: u32,
    policy: shortcuts_topology::routing::RoutingPolicy,
    jobs_in_flight: Option<usize>,
    churn: ChurnSchedule,
) -> SweepConfig {
    let mut base = mgr.cfg.base_campaign.clone();
    base.rounds = rounds;
    base.routing = policy;
    // Engines come budgeted from the pool; recording the budget here
    // keeps the config honest for anyone inspecting it.
    base.memory = mgr.cfg.memory;
    let mut cfg = SweepConfig::from_seeds(&base, seeds.iter().copied());
    cfg.jobs_in_flight = jobs_in_flight
        .unwrap_or(cfg.jobs_in_flight)
        .clamp(1, mgr.cfg.max_jobs_in_flight);
    cfg.churn = churn;
    cfg
}

/// Runs one batch on the pooled engine stack, streaming `ROUND` lines
/// as rounds complete and `END` lines per scenario at the end.
///
/// A client that disconnects mid-stream stops receiving lines but the
/// batch runs to completion — the shared engine and scheduler are
/// never interrupted mid-flight — and the session ends right after
/// with the write error.
fn stream_batch(
    mgr: &SessionManager,
    writer: &mut TcpStream,
    world_seed: Option<u64>,
    policy: shortcuts_topology::routing::RoutingPolicy,
    cfg: SweepConfig,
) -> std::io::Result<Option<SweepReport>> {
    let world_seed = world_seed.unwrap_or(mgr.cfg.default_world_seed);
    // Lease the stack for the whole batch: the pool's evictor never
    // reclaims a leased world, and the lease drop at the end of this
    // function is what stamps the LRU detach tick.
    let lease = mgr.pool.checkout(world_seed, policy);
    let (world, engine) = (Arc::clone(&lease.world), Arc::clone(&lease.engine));
    let engine = if cfg.churn.is_empty() {
        engine
    } else {
        // Reject bad schedules with a protocol error before any round
        // runs, not a mid-batch panic.
        if let Err(msg) = cfg.churn.validate(&world.topo) {
            writeln!(writer, "ERR {msg}")?;
            writer.flush()?;
            return Ok(None);
        }
        // Churn permanently advances an engine's epoch, so a churning
        // batch measures on a PRIVATE engine stack over the pooled
        // (immutable) world — the pooled engine never sees a delta.
        world.shared().engine_budgeted(policy, mgr.cfg.memory)
    };
    let labels: Vec<String> = cfg.scenarios.iter().map(|s| s.label.clone()).collect();

    // Stream rounds as they complete. Write failures (the client went
    // away) are remembered rather than propagated mid-run: the
    // scheduler finishes the batch, then the error ends the session.
    let mut write_err: Option<std::io::Error> = None;
    let report = Sweep::with_engine(world, engine, cfg).run_streaming(|scenario, s| {
        if write_err.is_some() {
            return;
        }
        let outcome = writeln!(
            writer,
            "ROUND {} {} endpoints={} pairs={} cases={} unresponsive={} links={}/{} symmetry={}",
            labels[scenario],
            s.round,
            s.endpoints,
            s.pairs,
            s.cases,
            s.unresponsive_pairs,
            s.links_measured,
            s.links_planned,
            s.symmetry_samples,
        )
        .and_then(|()| writer.flush());
        if let Err(e) = outcome {
            write_err = Some(e);
        }
    });
    if let Some(e) = write_err {
        return Err(e);
    }
    for sc in &report.scenarios {
        writeln!(
            writer,
            "END {} seed={} cases={} pings={} unresponsive={}",
            sc.label,
            sc.seed,
            sc.results.total_cases(),
            sc.results.pings_sent,
            sc.results.unresponsive_pairs,
        )?;
    }
    writer.flush()?;
    Ok(Some(report))
}

/// Sends one length-prefixed CSV payload: `CSV <name> <len>` then the
/// raw bytes.
fn send_csv(writer: &mut TcpStream, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    writeln!(writer, "CSV {name} {}", bytes.len())?;
    writer.write_all(bytes)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_bounded_and_released_on_drop() {
        let mut cfg = ServiceConfig::small();
        cfg.max_sessions = 2;
        let mgr = Arc::new(SessionManager::new(cfg));
        let a = mgr.try_admit().expect("slot 1");
        let _b = mgr.try_admit().expect("slot 2");
        assert!(mgr.try_admit().is_none(), "third session must be refused");
        assert_eq!(mgr.active_sessions(), 2);
        drop(a);
        assert_eq!(mgr.active_sessions(), 1);
        assert!(mgr.try_admit().is_some(), "freed slot must be reusable");
    }

    #[test]
    fn permit_is_released_during_unwinding() {
        let mut cfg = ServiceConfig::small();
        cfg.max_sessions = 1;
        let mgr = Arc::new(SessionManager::new(cfg));
        let mgr2 = Arc::clone(&mgr);
        let _ = std::panic::catch_unwind(move || {
            let _permit = mgr2.try_admit().expect("slot");
            panic!("session died");
        });
        assert_eq!(mgr.active_sessions(), 0, "panicked session must release");
        assert!(mgr.try_admit().is_some());
    }

    #[test]
    fn jobs_in_flight_is_clamped_to_the_service_limit() {
        let mut service_cfg = ServiceConfig::small();
        service_cfg.max_jobs_in_flight = 4;
        let mgr = SessionManager::new(service_cfg);
        let churn = ChurnSchedule::none;
        let cfg = sweep_config(&mgr, &[1, 2], 1, Default::default(), Some(1000), churn());
        assert_eq!(cfg.jobs_in_flight, 4);
        let cfg = sweep_config(&mgr, &[1, 2], 1, Default::default(), Some(0), churn());
        assert_eq!(cfg.jobs_in_flight, 1);
        let cfg = sweep_config(&mgr, &[1, 2], 1, Default::default(), Some(3), churn());
        assert_eq!(cfg.jobs_in_flight, 3);
    }
}
