//! # shortcuts-service
//!
//! The measurement platform the ROADMAP's north star asks for: a
//! **long-lived session server** on top of the core engine, turning
//! the paper's one-shot relay-measurement workflow into an always-on
//! service — the same shift the real RIPE Atlas infrastructure makes
//! from single experiments to a shared, credit-budgeted platform.
//!
//! Clients connect over TCP, submit campaign or sweep configurations
//! in a small line-oriented language ([`protocol`]), watch `ROUND`
//! lines stream back per completed round **while later rounds are
//! still measuring**, and fetch the final figure-ready CSVs. Many
//! clients run concurrently; sessions touching the same world share
//! one warmed engine stack.
//!
//! ## Architecture
//!
//! ```text
//!            TcpListener (server)            SessionManager
//!  client ──► accept ── admission? ──► session thread (1 per client)
//!  client ──► accept ── ERR busy          │  parse → run → stream
//!                                         ▼
//!                                   WorldPool
//!                    (world seed) ──► Arc<World>
//!            (world seed, policy) ──► Arc<PingEngine>   ← shared by
//!                                         │                sessions
//!                                         ▼
//!                     core::sweep::Sweep::with_engine
//!                     shard::run_interleaved worker pool
//! ```
//!
//! - [`pool::WorldPool`] caches `Arc<World>` per world seed and one
//!   engine stack — router with destination-table cache plus the
//!   sharded pair cache — per `(world seed, policy)`. The first
//!   session pays world construction and cache warmup; every later
//!   session on that world measures through hot caches. Sound because
//!   the engine holds only deterministic world facts (the sweep
//!   determinism contract proved by `sweep_equivalence`): **the CSV a
//!   session streams back is byte-identical to a solo
//!   `Campaign::run` at the same seeds**, however many sessions share
//!   the engine (enforced end-to-end in `tests/service_e2e.rs`).
//!   Under a [`ServiceConfig`] memory budget the pool also bounds
//!   *itself*: engines run with budgeted caches, sessions lease
//!   stacks via [`pool::WorldPool::checkout`], and idle stacks are
//!   evicted least-recently-detached-first once aggregate residency
//!   exceeds the budget — byte-identical results either way, because
//!   every evicted stack rebuilds deterministically from its seed.
//! - [`session::SessionManager`] bounds admission (`max_sessions`,
//!   per-session `jobs-in-flight` clamps) and keeps cleanup
//!   panic-safe: permits are drop guards, pool locks never poison, and
//!   `catch_unwind` walls each session off, so a dying session never
//!   takes the shared engine — or the server — with it.
//! - [`server::Server`] is thread-per-connection over
//!   `std::net::TcpListener` — no async runtime (the build is fully
//!   vendored); within a request the existing
//!   `shard::run_interleaved` pool provides all the parallelism the
//!   hardware has.
//! - [`broadcast::BroadcastHub`] deduplicates identical batches: the
//!   first session asking for a `(world seed, policy, seeds, rounds)`
//!   key executes and **publishes** every `ROUND`/`END` event; later
//!   `SUBSCRIBE` sessions tap the broadcast through bounded
//!   per-subscriber queues and receive a byte-identical stream without
//!   re-executing anything. A tap that falls behind is shed with
//!   `ERR lagged` — the producer never blocks on a slow consumer.
//! - [`credits::CreditLedger`] prices work per client IP
//!   (`rounds × scenarios` per request, taps cost 1, probes cost 0)
//!   with continuously refilling token buckets — `ERR credits` plus a
//!   `retry-after-ms` hint instead of queueing cheap requests behind
//!   heavy ones.
//! - `METRICS` is the machine-readable twin of `STATS`: a
//!   Prometheus-style text exposition of the process-wide telemetry
//!   (per-stage latency histograms and scheduler gauges from
//!   `shortcuts_telemetry`, which a server always enables) plus
//!   per-engine, pool, service and credit samples. Both surfaces
//!   render the same `fields()` lists, so they cannot drift — pinned
//!   by `tests/metrics_e2e.rs`.
//! - [`frame`] is the negotiated response framing: text lines by
//!   default, length-prefixed binary frames after
//!   `HELLO framing=binary`, both fed through one `BufWriter` per
//!   session with per-round (not per-line) flushes.
//! - [`client::Client`] is the blocking client the CLI `client`
//!   subcommand, the e2e tests, the `service_throughput` /
//!   `service_capacity` benches and the `loadgen` harness use; it
//!   retries `ERR busy` / `ERR credits` with jittered exponential
//!   backoff ([`client::RetryPolicy`]).
//!
//! ## Example
//!
//! ```
//! use shortcuts_service::{Client, Server, ServiceConfig, StreamEvent};
//!
//! let mut cfg = ServiceConfig::small();
//! cfg.default_world_seed = 11;
//! let server = Server::start("127.0.0.1:0", cfg).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let mut rounds = 0;
//! client
//!     .run_streaming("RUN seed=2017 rounds=1", |e| {
//!         if matches!(e, StreamEvent::Round(_)) {
//!             rounds += 1;
//!         }
//!     })
//!     .unwrap();
//! assert_eq!(rounds, 1);
//! let (name, bytes) = client.fetch_csv("cases").unwrap();
//! assert_eq!(name, "cases_seed-2017.csv");
//! assert!(!bytes.is_empty());
//! client.quit();
//! server.shutdown();
//! ```

pub mod broadcast;
pub mod client;
pub mod credits;
pub mod frame;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;

pub use broadcast::{BroadcastHub, BroadcastKey, ServiceStats};
pub use client::{Client, RetryPolicy, StreamEvent};
pub use credits::{CreditConfig, CreditLedger};
pub use frame::Framing;
pub use pool::{PoolStats, WorldPool};
pub use protocol::Request;
pub use server::Server;
pub use session::{ServiceConfig, SessionManager};
