//! A minimal blocking client for the service protocol.
//!
//! Wraps one TCP connection: send a request line, stream the response
//! lines, fetch length-prefixed CSV payloads. Used by the
//! `colo-shortcuts client` subcommand, the end-to-end tests and the
//! `service_throughput` bench; scripts can just as well speak the
//! protocol over `nc`.

use crate::protocol::GREETING;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One line streamed while a batch runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A `ROUND <label> <round> …` progress line (raw payload).
    Round(String),
    /// An `END <label> …` scenario-summary line (raw payload).
    End(String),
}

fn protocol_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// A connected session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and consumes the greeting. A server over capacity
    /// answers `ERR busy …` instead; that surfaces as an error of kind
    /// [`std::io::ErrorKind::ConnectionRefused`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        let greeting = client.read_response_line()?;
        if greeting.starts_with("ERR") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                greeting,
            ));
        }
        if greeting != GREETING {
            return Err(protocol_err(format!("unexpected greeting {greeting:?}")));
        }
        Ok(client)
    }

    /// Sends one request line.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn read_response_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Sends a `RUN`/`SWEEP` request and streams its `ROUND`/`END`
    /// lines into `on_event` until the terminating `OK` (returned) or
    /// `ERR` (an [`std::io::ErrorKind::InvalidData`] error).
    pub fn run_streaming<F: FnMut(StreamEvent)>(
        &mut self,
        request: &str,
        mut on_event: F,
    ) -> std::io::Result<String> {
        self.send(request)?;
        loop {
            let line = self.read_response_line()?;
            if let Some(rest) = line.strip_prefix("ROUND ") {
                on_event(StreamEvent::Round(rest.to_string()));
            } else if let Some(rest) = line.strip_prefix("END ") {
                on_event(StreamEvent::End(rest.to_string()));
            } else if let Some(rest) = line.strip_prefix("OK ") {
                return Ok(rest.to_string());
            } else if line.starts_with("ERR") {
                return Err(protocol_err(line));
            } else {
                return Err(protocol_err(format!("unexpected line {line:?}")));
            }
        }
    }

    /// Fetches one CSV payload: `what` is the argument part of the
    /// `CSV` request (`"cases"`, `"cases <label>"`, `"sweep"`).
    /// Returns `(name, bytes)`.
    pub fn fetch_csv(&mut self, what: &str) -> std::io::Result<(String, Vec<u8>)> {
        self.send(&format!("CSV {what}"))?;
        let header = self.read_response_line()?;
        if header.starts_with("ERR") {
            return Err(protocol_err(header));
        }
        let mut parts = header.split_whitespace();
        let (tag, name, len) = (parts.next(), parts.next(), parts.next());
        if tag != Some("CSV") {
            return Err(protocol_err(format!("unexpected CSV header {header:?}")));
        }
        let name = name.ok_or_else(|| protocol_err("CSV header missing name"))?;
        let len: usize = len
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| protocol_err("CSV header missing length"))?;
        let mut bytes = vec![0u8; len];
        self.reader.read_exact(&mut bytes)?;
        Ok((name.to_string(), bytes))
    }

    /// Fetches the engine-health lines of every pooled engine stack.
    pub fn stats(&mut self) -> std::io::Result<Vec<String>> {
        self.send("STATS")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_response_line()?;
            if let Some(rest) = line.strip_prefix("STATS ") {
                out.push(rest.to_string());
            } else if line.starts_with("OK ") {
                return Ok(out);
            } else {
                return Err(protocol_err(line));
            }
        }
    }

    /// Sends a raw request and returns the single `OK`/`ERR` response
    /// line (for protocol probing; streaming requests need
    /// [`Client::run_streaming`]).
    pub fn round_trip(&mut self, request: &str) -> std::io::Result<String> {
        self.send(request)?;
        self.read_response_line()
    }

    /// Polite goodbye (best-effort; the connection drops either way).
    pub fn quit(mut self) {
        let _ = self.send("QUIT");
        let _ = self.read_response_line();
    }
}
