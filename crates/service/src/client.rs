//! A minimal blocking client for the service protocol.
//!
//! Wraps one TCP connection: send a request line, stream the response
//! events, fetch CSV payloads. Speaks both framings — requests are
//! always text; after [`Client::negotiate`] the responses arrive as
//! length-prefixed binary frames ([`crate::frame`]) and are decoded
//! back into the same strings the text protocol would have produced,
//! so callers never observe the framing. Used by the
//! `colo-shortcuts client` subcommand, the end-to-end tests, the
//! `service_throughput` / `service_capacity` benches and the `loadgen`
//! harness; scripts can just as well speak the text protocol over
//! `nc`.
//!
//! Admission refusals are retryable by design: `ERR busy` (connection
//! bound) and `ERR credits` (work bound, with a `retry-after-ms`
//! hint) both leave the client a clean path to try again, and
//! [`Client::connect_with_retry`] / [`Client::run_streaming_with_retry`]
//! implement jittered exponential backoff around them.

use crate::frame::{read_frame, Frame, Framing};
use crate::protocol::GREETING;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One event streamed while a batch runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A `ROUND <label> <round> …` progress event (raw payload —
    /// identical bytes in both framings).
    Round(String),
    /// An `END <label> …` scenario-summary event (raw payload).
    End(String),
}

/// Retry policy for `ERR busy` / `ERR credits` refusals: exponential
/// backoff (doubling from `base_delay`) with uniform jitter, capped at
/// `attempts` retries.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub attempts: u32,
    /// First backoff step; later steps double it.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` retries and the default base delay.
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            ..Default::default()
        }
    }

    /// The jittered delay before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let step = self.base_delay.saturating_mul(1u32 << attempt.min(8));
        step + jitter(step)
    }
}

/// Cheap decorrelation jitter in `[0, cap)` — derived from the clock's
/// sub-millisecond noise, which is plenty to de-synchronize a retry
/// herd without pulling in an RNG.
fn jitter(cap: Duration) -> Duration {
    let cap_ns = cap.as_nanos().max(1) as u64;
    let noise = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    Duration::from_nanos(noise.wrapping_mul(0x9E37_79B9_7F4A_7C15) % cap_ns)
}

fn protocol_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// True for refusals worth retrying: admission (`ERR busy`, surfaced
/// as `ConnectionRefused`) and credit denials (`ERR credits`).
pub fn is_retryable(err: &std::io::Error) -> bool {
    err.kind() == std::io::ErrorKind::ConnectionRefused
        || err.to_string().contains("ERR credits")
        || err.to_string().contains("ERR busy")
}

/// Parses the server's `retry-after-ms=<n>` hint out of an error.
pub fn retry_after(err: &std::io::Error) -> Option<Duration> {
    let msg = err.to_string();
    let rest = msg.split("retry-after-ms=").nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok().map(Duration::from_millis)
}

/// A decoded server response, framing-agnostic.
enum Reply {
    Round(String),
    End(String),
    Ok(String),
    Err(String),
    Stats(String),
    Csv { name: String, bytes: Vec<u8> },
    Metrics(Vec<u8>),
}

/// A connected session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    framing: Framing,
}

impl Client {
    /// Connects and consumes the greeting. A server over capacity
    /// answers `ERR busy …` instead; that surfaces as an error of kind
    /// [`std::io::ErrorKind::ConnectionRefused`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            framing: Framing::Text,
        };
        let greeting = client.read_response_line()?;
        if greeting.starts_with("ERR") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                greeting,
            ));
        }
        if greeting != GREETING {
            return Err(protocol_err(format!("unexpected greeting {greeting:?}")));
        }
        Ok(client)
    }

    /// [`Client::connect`] with jittered exponential backoff around
    /// `ERR busy` (and plain connection-refused) refusals.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        policy: RetryPolicy,
    ) -> std::io::Result<Client> {
        let mut attempt = 0;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if attempt < policy.attempts && is_retryable(&e) => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The currently negotiated response framing.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Negotiates response framing via `HELLO framing=<f>`. The reply
    /// is always a text line; every later response uses the new
    /// framing.
    pub fn negotiate(&mut self, framing: Framing) -> std::io::Result<()> {
        self.send(&format!("HELLO framing={}", framing.label()))?;
        let line = self.read_response_line()?;
        if !line.starts_with("OK hello") {
            return Err(protocol_err(format!("HELLO rejected: {line}")));
        }
        self.framing = framing;
        Ok(())
    }

    /// Sends one request line (requests are text in both framings).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn read_response_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Reads one response in the negotiated framing, decoding binary
    /// frames into the exact strings text mode would have produced.
    fn read_reply(&mut self) -> std::io::Result<Reply> {
        match self.framing {
            Framing::Binary => Ok(match read_frame(&mut self.reader)? {
                Frame::Round(r) => Reply::Round(r.payload()),
                Frame::End(p) => Reply::End(p),
                Frame::Ok(p) => Reply::Ok(p),
                Frame::Err(p) => Reply::Err(p),
                Frame::Stats(p) => Reply::Stats(p),
                Frame::Csv { name, bytes } => Reply::Csv { name, bytes },
                Frame::Metrics(bytes) => Reply::Metrics(bytes),
            }),
            Framing::Text => {
                let line = self.read_response_line()?;
                if let Some(rest) = line.strip_prefix("ROUND ") {
                    Ok(Reply::Round(rest.to_string()))
                } else if let Some(rest) = line.strip_prefix("END ") {
                    Ok(Reply::End(rest.to_string()))
                } else if let Some(rest) = line.strip_prefix("OK ") {
                    Ok(Reply::Ok(rest.to_string()))
                } else if let Some(rest) = line.strip_prefix("ERR ") {
                    Ok(Reply::Err(rest.to_string()))
                } else if let Some(rest) = line.strip_prefix("STATS ") {
                    Ok(Reply::Stats(rest.to_string()))
                } else if let Some(rest) = line.strip_prefix("CSV ") {
                    let mut parts = rest.split_whitespace();
                    let name = parts
                        .next()
                        .ok_or_else(|| protocol_err("CSV header missing name"))?
                        .to_string();
                    let len: usize = parts
                        .next()
                        .and_then(|l| l.parse().ok())
                        .ok_or_else(|| protocol_err("CSV header missing length"))?;
                    let mut bytes = vec![0u8; len];
                    self.reader.read_exact(&mut bytes)?;
                    Ok(Reply::Csv { name, bytes })
                } else if let Some(rest) = line.strip_prefix("METRICS ") {
                    let len: usize = rest
                        .trim()
                        .parse()
                        .map_err(|_| protocol_err("METRICS header missing length"))?;
                    let mut bytes = vec![0u8; len];
                    self.reader.read_exact(&mut bytes)?;
                    Ok(Reply::Metrics(bytes))
                } else {
                    Err(protocol_err(format!("unexpected line {line:?}")))
                }
            }
        }
    }

    /// Sends a `RUN`/`SWEEP`/`SUBSCRIBE` request and streams its
    /// `ROUND`/`END` events into `on_event` until the terminating `OK`
    /// (returned) or `ERR` (an [`std::io::ErrorKind::InvalidData`]
    /// error).
    pub fn run_streaming<F: FnMut(StreamEvent)>(
        &mut self,
        request: &str,
        mut on_event: F,
    ) -> std::io::Result<String> {
        self.send(request)?;
        loop {
            match self.read_reply()? {
                Reply::Round(p) => on_event(StreamEvent::Round(p)),
                Reply::End(p) => on_event(StreamEvent::End(p)),
                Reply::Ok(detail) => return Ok(detail),
                Reply::Err(msg) => return Err(protocol_err(format!("ERR {msg}"))),
                _ => return Err(protocol_err("unexpected reply to a streaming request")),
            }
        }
    }

    /// [`Client::run_streaming`] with jittered exponential backoff
    /// around `ERR credits` / `ERR busy` refusals, honoring the
    /// server's `retry-after-ms` hint when present. Safe to retry
    /// because refusals happen before any event is streamed.
    pub fn run_streaming_with_retry<F: FnMut(StreamEvent)>(
        &mut self,
        request: &str,
        policy: RetryPolicy,
        mut on_event: F,
    ) -> std::io::Result<String> {
        let mut attempt = 0;
        loop {
            match self.run_streaming(request, &mut on_event) {
                Ok(detail) => return Ok(detail),
                Err(e) if attempt < policy.attempts && is_retryable(&e) => {
                    let wait = retry_after(&e)
                        .map(|hint| hint + jitter(policy.base_delay))
                        .unwrap_or_else(|| policy.backoff(attempt));
                    std::thread::sleep(wait);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches one CSV payload: `what` is the argument part of the
    /// `CSV` request (`"cases"`, `"cases <label>"`, `"sweep"`).
    /// Returns `(name, bytes)`.
    pub fn fetch_csv(&mut self, what: &str) -> std::io::Result<(String, Vec<u8>)> {
        self.send(&format!("CSV {what}"))?;
        match self.read_reply()? {
            Reply::Csv { name, bytes } => Ok((name, bytes)),
            Reply::Err(msg) => Err(protocol_err(format!("ERR {msg}"))),
            _ => Err(protocol_err("unexpected reply to a CSV request")),
        }
    }

    /// Fetches the `STATS` payloads: one per pooled engine stack, then
    /// the aggregate `pool …` line, the `service …` counters, and one
    /// `credits …` balance line per metered client.
    pub fn stats(&mut self) -> std::io::Result<Vec<String>> {
        self.send("STATS")?;
        let mut out = Vec::new();
        loop {
            match self.read_reply()? {
                Reply::Stats(p) => out.push(p),
                Reply::Ok(_) => return Ok(out),
                Reply::Err(msg) => return Err(protocol_err(format!("ERR {msg}"))),
                _ => return Err(protocol_err("unexpected reply to STATS")),
            }
        }
    }

    /// Fetches the `METRICS` exposition: Prometheus-style
    /// `name{label="v"} value` text covering engine, scheduler, pool,
    /// broadcast and credit metrics, including the per-stage latency
    /// histograms.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send("METRICS")?;
        match self.read_reply()? {
            Reply::Metrics(bytes) => {
                String::from_utf8(bytes).map_err(|_| protocol_err("METRICS payload is not UTF-8"))
            }
            Reply::Err(msg) => Err(protocol_err(format!("ERR {msg}"))),
            _ => Err(protocol_err("unexpected reply to METRICS")),
        }
    }

    /// Sends a raw request and returns the single `OK`/`ERR` response
    /// line (for protocol probing; streaming requests need
    /// [`Client::run_streaming`]). Text framing only.
    pub fn round_trip(&mut self, request: &str) -> std::io::Result<String> {
        self.send(request)?;
        match self.framing {
            Framing::Text => self.read_response_line(),
            Framing::Binary => match self.read_reply()? {
                Reply::Ok(p) => Ok(format!("OK {p}")),
                Reply::Err(p) => Ok(format!("ERR {p}")),
                _ => Err(protocol_err("unexpected reply")),
            },
        }
    }

    /// Polite goodbye (best-effort; the connection drops either way).
    pub fn quit(mut self) {
        let _ = self.send("QUIT");
        match self.framing {
            Framing::Text => {
                let _ = self.read_response_line();
            }
            Framing::Binary => {
                let _ = self.read_reply();
            }
        }
    }
}
