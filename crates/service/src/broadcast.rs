//! SUBSCRIBE fan-out: one execution, many byte-identical streams.
//!
//! The sweep determinism contract (a concurrent scenario is
//! bit-identical to a solo run) means two clients asking for the same
//! `(world_seed, policy, seeds, rounds)` batch are asking for the same
//! bytes — re-executing the campaign per client is pure waste. The
//! [`BroadcastHub`] deduplicates: the first session to ask becomes the
//! **producer** and executes normally, publishing every `ROUND`/`END`
//! event as it streams them to its own client; later sessions become
//! **taps** that replay the backlog and then ride the live stream,
//! paying none of the measurement cost.
//!
//! Fan-out must never slow the producer down, so each tap gets a
//! *bounded* queue sized `backlog + lag`: the producer's publish is a
//! `try_push`, and a tap that falls more than `lag` events behind is
//! **shed** — its queue is closed with a shed marker, the session
//! reports `ERR lagged` to its client, and the producer moves on
//! without ever blocking. (The queues are built on `std::sync`
//! `Mutex`/`Condvar` because the vendored `parking_lot` deliberately
//! exposes only locks; lock poisoning is neutralized by taking the
//! inner state on either side of a panic.)
//!
//! Finished broadcasts linger in a small done-cache so a SUBSCRIBE
//! that arrives just after the last round still gets a full replay —
//! the "pool-cached run" case — without re-executing anything.
//!
//! A producer that dies (client gone, panic unwound by the server's
//! `catch_unwind`) must not strand its taps: [`ProducerGuard`]'s drop
//! finishes the broadcast with a `Failed` terminal event, so every tap
//! wakes up and reports `ERR broadcast aborted` instead of hanging.

use crate::frame::RoundLine;
use parking_lot::Mutex;
use shortcuts_core::sweep::SweepReport;
use shortcuts_topology::routing::RoutingPolicy;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Identity of a broadcastable batch: requests with equal keys are
/// guaranteed byte-identical response streams by the determinism
/// contract. Scheduling knobs (`jobs-in-flight`) are deliberately NOT
/// part of the key — they change wall-clock, never bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BroadcastKey {
    /// Resolved world seed (the server default is applied before
    /// keying, so `world-seed=2017` and an elided default of 2017
    /// share a broadcast).
    pub world_seed: u64,
    /// Routing policy.
    pub policy: RoutingPolicy,
    /// Campaign seeds in request order.
    pub seeds: Vec<u64>,
    /// Rounds per scenario.
    pub rounds: u32,
}

/// One event of a broadcast stream, cheap to clone across N taps.
#[derive(Debug, Clone)]
pub enum BroadcastEvent {
    /// A completed round.
    Round(Arc<RoundLine>),
    /// An `END` payload for one scenario.
    End(Arc<str>),
    /// Terminal: the batch finished; `ok` is the `OK` detail and the
    /// report backs the taps' `CSV` fetches.
    Done {
        /// `OK` detail (`run 1` / `sweep <n>`).
        ok: Arc<str>,
        /// The finished report, shared by every tap.
        report: Arc<SweepReport>,
    },
    /// Terminal: the producer failed; taps report this as `ERR`.
    Failed(Arc<str>),
}

/// Service-wide fan-out and admission counters, surfaced on the
/// `STATS service` line.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    subscribers: AtomicU64,
    broadcasts: AtomicU64,
    rounds_fanned_out: AtomicU64,
    subscribers_shed: AtomicU64,
    credits_denied: AtomicU64,
}

impl ServiceCounters {
    /// Records one credit-admission denial.
    pub fn credit_denied(&self) {
        self.credits_denied.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            subscribers: self.subscribers.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            rounds_fanned_out: self.rounds_fanned_out.load(Ordering::Relaxed),
            subscribers_shed: self.subscribers_shed.load(Ordering::Relaxed),
            credits_denied: self.credits_denied.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`ServiceCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Taps currently attached (gauge).
    pub subscribers: u64,
    /// Broadcasts ever produced.
    pub broadcasts: u64,
    /// Round events delivered to taps (live + backlog replay).
    pub rounds_fanned_out: u64,
    /// Taps shed for falling behind.
    pub subscribers_shed: u64,
    /// Requests denied by credit admission.
    pub credits_denied: u64,
}

impl ServiceStats {
    /// The stats as a flat field list — the single source for both the
    /// `STATS service` line and the `METRICS` exposition.
    pub fn fields(&self) -> Vec<shortcuts_telemetry::Field> {
        use shortcuts_telemetry::Field;
        vec![
            Field::int("subscribers", self.subscribers),
            Field::int("broadcasts", self.broadcasts),
            Field::int("rounds_fanned_out", self.rounds_fanned_out),
            Field::int("subscribers_shed", self.subscribers_shed),
            Field::int("credits_denied", self.credits_denied),
        ]
    }

    /// The `STATS service` payload. Rendered from
    /// [`ServiceStats::fields`].
    pub fn summary(&self) -> String {
        shortcuts_telemetry::kv_summary(&self.fields())
    }
}

enum PushOutcome {
    Delivered,
    Full,
    Gone,
}

/// One tap's bounded queue. Strict capacity: a queue with capacity 0
/// rejects every live push (useful to force shedding deterministically
/// in tests and to disable lag entirely).
struct TapQueue {
    state: StdMutex<TapState>,
    ready: Condvar,
}

struct TapState {
    buf: VecDeque<BroadcastEvent>,
    cap: usize,
    closed: bool,
    shed: bool,
}

impl TapQueue {
    fn with_cap(cap: usize) -> TapQueue {
        TapQueue {
            state: StdMutex::new(TapState {
                buf: VecDeque::new(),
                cap,
                closed: false,
                shed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TapState> {
        // Non-poisoning by construction: no user code runs under this
        // lock, and a receiver that panicked mid-recv leaves the state
        // consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, ev: BroadcastEvent) -> PushOutcome {
        let mut st = self.lock();
        if st.closed {
            return PushOutcome::Gone;
        }
        if st.buf.len() >= st.cap {
            return PushOutcome::Full;
        }
        st.buf.push_back(ev);
        drop(st);
        self.ready.notify_one();
        PushOutcome::Delivered
    }

    /// Closes the queue marking the tap as shed; buffered events stay
    /// drainable so the tap's client sees everything up to the point
    /// it fell behind, then `ERR lagged`.
    fn shed(&self) {
        let mut st = self.lock();
        st.shed = true;
        st.closed = true;
        drop(st);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.ready.notify_one();
    }

    fn recv(&self) -> Option<BroadcastEvent> {
        let mut st = self.lock();
        loop {
            if let Some(ev) = st.buf.pop_front() {
                return Some(ev);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn was_shed(&self) -> bool {
        self.lock().shed
    }
}

/// A tap's receiving end. Dropping it closes the queue (the producer
/// stops cloning events for it) and releases the subscriber gauge.
pub struct Subscription {
    q: Arc<TapQueue>,
    counters: Arc<ServiceCounters>,
}

impl Subscription {
    /// Blocks for the next event; `None` once the queue is closed and
    /// drained — check [`Subscription::was_shed`] to distinguish a
    /// shed tap from a producer that never finished.
    pub fn recv(&self) -> Option<BroadcastEvent> {
        self.q.recv()
    }

    /// True when this tap was dropped by the producer for lagging.
    pub fn was_shed(&self) -> bool {
        self.q.was_shed()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.q.close();
        self.counters.subscribers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One in-flight (or finished-and-cached) broadcast: the event log so
/// far plus the live taps.
struct Broadcast {
    state: Mutex<BroadcastState>,
}

struct BroadcastState {
    log: Vec<BroadcastEvent>,
    terminal: Option<BroadcastEvent>,
    taps: Vec<Arc<TapQueue>>,
}

impl Broadcast {
    fn new() -> Broadcast {
        Broadcast {
            state: Mutex::new(BroadcastState {
                log: Vec::new(),
                terminal: None,
                taps: Vec::new(),
            }),
        }
    }

    /// Attaches a tap: the backlog (always delivered in full) plus up
    /// to `lag` live events of headroom. A finished broadcast yields a
    /// pure replay — the queue closes right after the terminal event.
    fn subscribe(&self, lag: usize, counters: &Arc<ServiceCounters>) -> Subscription {
        let mut st = self.state.lock();
        let backlog = st.log.len() + usize::from(st.terminal.is_some());
        let q = Arc::new(TapQueue::with_cap(backlog + lag));
        let mut replayed_rounds = 0u64;
        for ev in &st.log {
            if matches!(ev, BroadcastEvent::Round(_)) {
                replayed_rounds += 1;
            }
            // Sized to fit: these pushes cannot fail.
            let _ = q.push(ev.clone());
        }
        if let Some(t) = &st.terminal {
            let _ = q.push(t.clone());
            q.close();
        } else {
            st.taps.push(Arc::clone(&q));
        }
        drop(st);
        counters.subscribers.fetch_add(1, Ordering::Relaxed);
        counters
            .rounds_fanned_out
            .fetch_add(replayed_rounds, Ordering::Relaxed);
        Subscription {
            q,
            counters: Arc::clone(counters),
        }
    }

    /// Publishes one non-terminal event: appended to the log for late
    /// taps, try-pushed to every live tap. A full queue sheds its tap
    /// on the spot — the producer never blocks.
    fn publish(&self, ev: BroadcastEvent, counters: &ServiceCounters) {
        let is_round = matches!(ev, BroadcastEvent::Round(_));
        let mut st = self.state.lock();
        st.log.push(ev.clone());
        st.taps.retain(|q| match q.push(ev.clone()) {
            PushOutcome::Delivered => {
                if is_round {
                    counters.rounds_fanned_out.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            PushOutcome::Full => {
                q.shed();
                counters.subscribers_shed.fetch_add(1, Ordering::Relaxed);
                false
            }
            PushOutcome::Gone => false,
        });
    }

    /// Publishes the terminal event and closes every tap.
    fn finish(&self, terminal: BroadcastEvent, counters: &ServiceCounters) {
        let mut st = self.state.lock();
        st.terminal = Some(terminal.clone());
        for q in st.taps.drain(..) {
            if let PushOutcome::Full = q.push(terminal.clone()) {
                q.shed();
                counters.subscribers_shed.fetch_add(1, Ordering::Relaxed);
            }
            q.close();
        }
    }
}

/// The hub: live broadcasts by key, plus a bounded done-cache for
/// replay.
pub struct BroadcastHub {
    lag: usize,
    keep_done: usize,
    counters: Arc<ServiceCounters>,
    inner: Mutex<HubInner>,
}

struct HubInner {
    live: HashMap<BroadcastKey, Arc<Broadcast>>,
    done: VecDeque<(BroadcastKey, Arc<Broadcast>)>,
}

/// Result of [`BroadcastHub::attach`]: either this session executes
/// (and publishes), or it taps an existing execution.
pub enum Attach<'h> {
    /// No broadcast for the key: the caller is the producer.
    Producer(ProducerGuard<'h>),
    /// A live or cached broadcast exists: ride it.
    Tap(Subscription),
}

impl BroadcastHub {
    /// `lag` is each tap's live-event headroom; `keep_done` bounds the
    /// finished-broadcast replay cache (0 disables replay).
    pub fn new(lag: usize, keep_done: usize, counters: Arc<ServiceCounters>) -> BroadcastHub {
        BroadcastHub {
            lag,
            keep_done,
            counters,
            inner: Mutex::new(HubInner {
                live: HashMap::new(),
                done: VecDeque::new(),
            }),
        }
    }

    /// The shared counters (also surfaced via the session manager).
    pub fn counters(&self) -> &Arc<ServiceCounters> {
        &self.counters
    }

    /// SUBSCRIBE semantics: tap a live or cached broadcast when one
    /// exists, otherwise become the producer.
    pub fn attach(&self, key: BroadcastKey) -> Attach<'_> {
        let mut inner = self.inner.lock();
        if let Some(b) = inner.live.get(&key) {
            let b = Arc::clone(b);
            drop(inner);
            return Attach::Tap(b.subscribe(self.lag, &self.counters));
        }
        if let Some((_, b)) = inner.done.iter().find(|(k, _)| *k == key) {
            let b = Arc::clone(b);
            drop(inner);
            return Attach::Tap(b.subscribe(self.lag, &self.counters));
        }
        Attach::Producer(self.produce_locked(&mut inner, key))
    }

    /// RUN/SWEEP semantics: execute unconditionally, but register the
    /// execution as a broadcast when the key is free so concurrent
    /// SUBSCRIBEs can ride it. `None` means another producer holds the
    /// key — the caller just runs privately (it must not tap: the
    /// client asked for an execution, and deduplicating RUNs would
    /// skew any RUN-vs-SUBSCRIBE comparison).
    pub fn try_produce(&self, key: BroadcastKey) -> Option<ProducerGuard<'_>> {
        let mut inner = self.inner.lock();
        if inner.live.contains_key(&key) {
            return None;
        }
        // A fresh execution supersedes a cached finished one.
        inner.done.retain(|(k, _)| *k != key);
        Some(self.produce_locked(&mut inner, key))
    }

    fn produce_locked(&self, inner: &mut HubInner, key: BroadcastKey) -> ProducerGuard<'_> {
        let b = Arc::new(Broadcast::new());
        inner.live.insert(key.clone(), Arc::clone(&b));
        self.counters.broadcasts.fetch_add(1, Ordering::Relaxed);
        ProducerGuard {
            hub: self,
            key,
            b,
            finished: false,
        }
    }

    /// True while a producer holds `key` (tests use this to
    /// deterministically attach mid-flight).
    pub fn has_live(&self, key: &BroadcastKey) -> bool {
        self.inner.lock().live.contains_key(key)
    }

    fn complete(&self, key: &BroadcastKey, broadcast: &Arc<Broadcast>, cache: bool) {
        let mut inner = self.inner.lock();
        // Guard against a newer producer having reclaimed the key
        // after this one's entry was removed.
        if let Some(b) = inner.live.get(key) {
            if Arc::ptr_eq(b, broadcast) {
                let b = inner.live.remove(key).unwrap();
                if cache && self.keep_done > 0 {
                    inner.done.push_back((key.clone(), b));
                    while inner.done.len() > self.keep_done {
                        inner.done.pop_front();
                    }
                }
            }
        }
    }
}

/// Producer handle: publish events, then finish exactly once. Dropped
/// unfinished (client write error, panic unwinding), it fails the
/// broadcast so taps never hang.
pub struct ProducerGuard<'h> {
    hub: &'h BroadcastHub,
    key: BroadcastKey,
    b: Arc<Broadcast>,
    finished: bool,
}

impl ProducerGuard<'_> {
    /// Publishes one completed round.
    pub fn publish_round(&self, r: &RoundLine) {
        self.b.publish(
            BroadcastEvent::Round(Arc::new(r.clone())),
            &self.hub.counters,
        );
    }

    /// Publishes one scenario's `END` payload.
    pub fn publish_end(&self, payload: &str) {
        self.b
            .publish(BroadcastEvent::End(Arc::from(payload)), &self.hub.counters);
    }

    /// Finishes successfully: taps get the `OK` detail and the shared
    /// report, and the broadcast moves to the replay cache.
    pub fn finish_ok(&mut self, ok: &str, report: Arc<SweepReport>) {
        self.finished = true;
        self.b.finish(
            BroadcastEvent::Done {
                ok: Arc::from(ok),
                report,
            },
            &self.hub.counters,
        );
        self.hub.complete(&self.key, &self.b, true);
    }

    /// Finishes with an error: taps get `ERR <msg>`, nothing is
    /// cached.
    pub fn finish_err(&mut self, msg: &str) {
        self.finished = true;
        self.b
            .finish(BroadcastEvent::Failed(Arc::from(msg)), &self.hub.counters);
        self.hub.complete(&self.key, &self.b, false);
    }
}

impl Drop for ProducerGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish_err("broadcast aborted: producer session died");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> BroadcastKey {
        BroadcastKey {
            world_seed: 90,
            policy: RoutingPolicy::default(),
            seeds: vec![seed],
            rounds: 2,
        }
    }

    fn round(n: u32) -> RoundLine {
        RoundLine {
            label: "seed-1".into(),
            round: n,
            endpoints: 10,
            pairs: 45,
            cases: 40,
            unresponsive: 5,
            links_measured: 3,
            links_planned: 4,
            symmetry: 1,
        }
    }

    fn hub(lag: usize, keep_done: usize) -> BroadcastHub {
        BroadcastHub::new(lag, keep_done, Arc::new(ServiceCounters::default()))
    }

    fn drain(sub: &Subscription) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(ev) = sub.recv() {
            out.push(match ev {
                BroadcastEvent::Round(r) => format!("ROUND {}", r.payload()),
                BroadcastEvent::End(p) => format!("END {p}"),
                BroadcastEvent::Done { ok, .. } => format!("OK {ok}"),
                BroadcastEvent::Failed(msg) => format!("ERR {msg}"),
            });
        }
        out
    }

    #[test]
    fn taps_see_backlog_then_live_events_in_order() {
        let hub = hub(16, 2);
        let Attach::Producer(mut p) = hub.attach(key(1)) else {
            panic!("first attach must produce");
        };
        p.publish_round(&round(0));
        // Tap attaches mid-flight: backlog replay + live.
        let Attach::Tap(tap) = hub.attach(key(1)) else {
            panic!("second attach must tap");
        };
        p.publish_round(&round(1));
        p.publish_end("seed-1 seed=1 cases=2 pings=2 unresponsive=0");
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        let events = drain(&tap);
        assert_eq!(events.len(), 4);
        assert!(events[0].starts_with("ROUND seed-1 0 "));
        assert!(events[1].starts_with("ROUND seed-1 1 "));
        assert!(events[2].starts_with("END seed-1 "));
        assert_eq!(events[3], "OK run 1");
        assert!(!tap.was_shed());
    }

    #[test]
    fn finished_broadcasts_replay_from_the_done_cache() {
        let hub = hub(16, 2);
        let Attach::Producer(mut p) = hub.attach(key(1)) else {
            panic!()
        };
        p.publish_round(&round(0));
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        assert!(!hub.has_live(&key(1)));
        // Late subscriber: pure replay, no new execution.
        let Attach::Tap(tap) = hub.attach(key(1)) else {
            panic!("done-cache must serve a tap");
        };
        let events = drain(&tap);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1], "OK run 1");
        assert_eq!(hub.counters().snapshot().broadcasts, 1);
    }

    #[test]
    fn done_cache_is_bounded_and_evicts_oldest() {
        let hub = hub(16, 1);
        for seed in [1, 2] {
            let Attach::Producer(mut p) = hub.attach(key(seed)) else {
                panic!()
            };
            p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        }
        // Key 1 was evicted by key 2; attaching re-produces.
        assert!(matches!(hub.attach(key(1)), Attach::Producer(_)));
        assert!(matches!(hub.attach(key(2)), Attach::Tap(_)));
    }

    #[test]
    fn slow_taps_are_shed_and_the_producer_never_blocks() {
        let hub = hub(0, 2); // zero lag: any live push overflows
        let Attach::Producer(mut p) = hub.attach(key(1)) else {
            panic!()
        };
        let Attach::Tap(tap) = hub.attach(key(1)) else {
            panic!()
        };
        // Empty backlog + lag 0 = capacity 0: the first publish sheds.
        p.publish_round(&round(0));
        p.publish_round(&round(1));
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        assert_eq!(drain(&tap), Vec::<String>::new());
        assert!(tap.was_shed());
        let snap = hub.counters().snapshot();
        assert_eq!(snap.subscribers_shed, 1);
        assert_eq!(snap.rounds_fanned_out, 0);
    }

    #[test]
    fn shed_taps_keep_their_buffered_prefix() {
        let hub = hub(1, 2);
        let Attach::Producer(mut p) = hub.attach(key(1)) else {
            panic!()
        };
        let Attach::Tap(tap) = hub.attach(key(1)) else {
            panic!()
        };
        p.publish_round(&round(0)); // fits (cap 1)
        p.publish_round(&round(1)); // overflows: tap shed
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        let events = drain(&tap);
        assert_eq!(events.len(), 1, "the buffered prefix must survive");
        assert!(events[0].starts_with("ROUND seed-1 0 "));
        assert!(tap.was_shed());
    }

    #[test]
    fn dropped_producer_fails_its_taps_instead_of_hanging_them() {
        let hub = hub(16, 2);
        let Attach::Producer(p) = hub.attach(key(1)) else {
            panic!()
        };
        let Attach::Tap(tap) = hub.attach(key(1)) else {
            panic!()
        };
        drop(p); // producer died without finishing
        let events = drain(&tap);
        assert_eq!(events.len(), 1);
        assert!(events[0].starts_with("ERR broadcast aborted"));
        assert!(!tap.was_shed());
        assert!(!hub.has_live(&key(1)), "failed broadcasts are not cached");
        assert!(matches!(hub.attach(key(1)), Attach::Producer(_)));
    }

    #[test]
    fn try_produce_declines_while_the_key_is_held() {
        let hub = hub(16, 2);
        let p = hub.try_produce(key(1)).expect("free key");
        assert!(hub.try_produce(key(1)).is_none(), "key is held");
        drop(p);
        assert!(
            hub.try_produce(key(1)).is_some(),
            "aborted producer must free the key"
        );
    }

    #[test]
    fn try_produce_supersedes_the_done_cache() {
        let hub = hub(16, 2);
        let mut p = hub.try_produce(key(1)).expect("free key");
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        // A fresh RUN replaces the cached broadcast rather than being
        // deduplicated into it.
        assert!(hub.try_produce(key(1)).is_some());
    }

    #[test]
    fn dropped_subscription_stops_receiving_fanout() {
        let hub = hub(16, 2);
        let Attach::Producer(mut p) = hub.attach(key(1)) else {
            panic!()
        };
        let Attach::Tap(tap) = hub.attach(key(1)) else {
            panic!()
        };
        assert_eq!(hub.counters().snapshot().subscribers, 1);
        drop(tap);
        assert_eq!(hub.counters().snapshot().subscribers, 0);
        p.publish_round(&round(0));
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        // The dropped tap was pruned: only its own drop decremented
        // the gauge, and no round was fanned out to it.
        assert_eq!(hub.counters().snapshot().rounds_fanned_out, 0);
    }

    #[test]
    fn concurrent_taps_all_see_identical_streams() {
        let hub = Arc::new(hub(64, 2));
        let Attach::Producer(mut p) = hub.attach(key(1)) else {
            panic!()
        };
        let taps: Vec<_> = (0..4)
            .map(|_| match hub.attach(key(1)) {
                Attach::Tap(t) => t,
                Attach::Producer(_) => panic!("key is live"),
            })
            .collect();
        let handles: Vec<_> = taps
            .into_iter()
            .map(|t| std::thread::spawn(move || drain(&t)))
            .collect();
        for n in 0..8 {
            p.publish_round(&round(n));
        }
        p.publish_end("seed-1 seed=1 cases=8 pings=8 unresponsive=0");
        p.finish_ok("run 1", Arc::new(SweepReport { scenarios: vec![] }));
        let streams: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for s in &streams[1..] {
            assert_eq!(s, &streams[0], "every tap must see identical bytes");
        }
        assert_eq!(streams[0].len(), 10);
        let snap = hub.counters().snapshot();
        assert_eq!(snap.rounds_fanned_out, 32);
        assert_eq!(snap.subscribers_shed, 0);
    }
}
