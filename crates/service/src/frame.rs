//! Wire framing: the text protocol's hot-path twin.
//!
//! The line protocol ([`crate::protocol`]) is telnet-friendly but pays
//! for it on the serving hot path: every `ROUND` line is formatted
//! with `write!` and pushed through an unbuffered stream. A session
//! that negotiates `HELLO framing=binary` keeps sending **text
//! requests** (they are rare and tiny) but receives every response as
//! a length-prefixed binary frame:
//!
//! ```text
//! [kind: u8][len: u32 LE][payload: len bytes]
//! ```
//!
//! | kind | payload |
//! |---|---|
//! | `R` | round record: `round u32, endpoints u64, pairs u64, cases u64, unresponsive u64, links_measured u64, links_planned u64, symmetry u64` (all LE), then `label_len u16 LE` + label bytes |
//! | `E` | UTF-8 `END` payload (everything after `END ` in text mode) |
//! | `O` | UTF-8 `OK` detail |
//! | `X` | UTF-8 `ERR` message |
//! | `S` | UTF-8 `STATS` payload |
//! | `C` | `name_len u16 LE` + name bytes + raw CSV bytes |
//! | `M` | raw Prometheus-style `METRICS` exposition bytes |
//!
//! Both framings carry the same information: a binary `R` frame
//! decodes to exactly the text `ROUND` payload via
//! [`RoundLine::payload`], which is what lets the e2e suite assert the
//! two framings byte-identical at the event level.
//!
//! [`ResponseWriter`] is the server side: one `BufWriter` per session
//! (writes coalesce, **one flush per round** instead of one syscall
//! per protocol line) encoding into whichever framing the session
//! negotiated.

use shortcuts_core::workflow::RoundSummary;
use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;

/// Response framing a session negotiates via `HELLO framing=<f>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Framing {
    /// Line-oriented text (the default; `nc`-friendly).
    #[default]
    Text,
    /// Length-prefixed binary frames (responses only).
    Binary,
}

impl Framing {
    /// Parses the `HELLO framing=` value.
    pub fn parse(s: &str) -> Option<Framing> {
        match s {
            "text" => Some(Framing::Text),
            "binary" => Some(Framing::Binary),
            _ => None,
        }
    }

    /// The wire name (`text` / `binary`).
    pub fn label(self) -> &'static str {
        match self {
            Framing::Text => "text",
            Framing::Binary => "binary",
        }
    }
}

/// Frame kind bytes.
pub const KIND_ROUND: u8 = b'R';
pub const KIND_END: u8 = b'E';
pub const KIND_OK: u8 = b'O';
pub const KIND_ERR: u8 = b'X';
pub const KIND_STATS: u8 = b'S';
pub const KIND_CSV: u8 = b'C';
pub const KIND_METRICS: u8 = b'M';

/// Upper bound on a frame payload; a corrupt length prefix must not
/// become an allocation bomb.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// One `ROUND` record, framing-agnostic: the server encodes it as a
/// text line or a binary frame, the client decodes either back into
/// the same canonical payload string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLine {
    /// Scenario label (`seed-<n>` unless overridden).
    pub label: String,
    /// Round index.
    pub round: u32,
    /// Endpoints sampled this round.
    pub endpoints: u64,
    /// Direct pairs planned.
    pub pairs: u64,
    /// Cases emitted.
    pub cases: u64,
    /// Pairs without a valid direct median.
    pub unresponsive: u64,
    /// Overlay links measured.
    pub links_measured: u64,
    /// Overlay links planned.
    pub links_planned: u64,
    /// Symmetry samples recorded.
    pub symmetry: u64,
}

impl RoundLine {
    /// Builds the record from a streamed [`RoundSummary`].
    pub fn from_summary(label: &str, s: &RoundSummary) -> RoundLine {
        RoundLine {
            label: label.to_string(),
            round: s.round,
            endpoints: s.endpoints as u64,
            pairs: s.pairs as u64,
            cases: s.cases as u64,
            unresponsive: s.unresponsive_pairs,
            links_measured: s.links_measured as u64,
            links_planned: s.links_planned as u64,
            symmetry: s.symmetry_samples as u64,
        }
    }

    /// The canonical text payload — everything after `ROUND ` on a
    /// text-mode line. Binary-mode clients reconstruct exactly this
    /// string, so streams compare byte-for-byte across framings.
    pub fn payload(&self) -> String {
        format!(
            "{} {} endpoints={} pairs={} cases={} unresponsive={} links={}/{} symmetry={}",
            self.label,
            self.round,
            self.endpoints,
            self.pairs,
            self.cases,
            self.unresponsive,
            self.links_measured,
            self.links_planned,
            self.symmetry,
        )
    }

    fn encode(&self) -> Vec<u8> {
        let label = self.label.as_bytes();
        let mut out = Vec::with_capacity(4 + 7 * 8 + 2 + label.len());
        out.extend_from_slice(&self.round.to_le_bytes());
        for v in [
            self.endpoints,
            self.pairs,
            self.cases,
            self.unresponsive,
            self.links_measured,
            self.links_planned,
            self.symmetry,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(label.len() as u16).to_le_bytes());
        out.extend_from_slice(label);
        out
    }

    fn decode(payload: &[u8]) -> io::Result<RoundLine> {
        let fixed = 4 + 7 * 8 + 2;
        if payload.len() < fixed {
            return Err(bad_frame("truncated ROUND frame"));
        }
        let u32_at = |i: usize| u32::from_le_bytes(payload[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
        let label_len = u16::from_le_bytes(payload[fixed - 2..fixed].try_into().unwrap()) as usize;
        if payload.len() != fixed + label_len {
            return Err(bad_frame("ROUND frame label length mismatch"));
        }
        let label = std::str::from_utf8(&payload[fixed..])
            .map_err(|_| bad_frame("ROUND frame label is not UTF-8"))?
            .to_string();
        Ok(RoundLine {
            label,
            round: u32_at(0),
            endpoints: u64_at(4),
            pairs: u64_at(12),
            cases: u64_at(20),
            unresponsive: u64_at(28),
            links_measured: u64_at(36),
            links_planned: u64_at(44),
            symmetry: u64_at(52),
        })
    }
}

/// One decoded server→client frame (either framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A completed round.
    Round(RoundLine),
    /// An `END <payload>` scenario summary.
    End(String),
    /// An `OK <detail>` terminator.
    Ok(String),
    /// An `ERR <message>`.
    Err(String),
    /// A `STATS <payload>` line.
    Stats(String),
    /// A CSV payload.
    Csv {
        /// Server-chosen file name.
        name: String,
        /// Raw CSV bytes.
        bytes: Vec<u8>,
    },
    /// A `METRICS` exposition payload (Prometheus text format).
    Metrics(Vec<u8>),
}

fn bad_frame(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Writes one binary frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let (kind, payload): (u8, Vec<u8>) = match frame {
        Frame::Round(r) => (KIND_ROUND, r.encode()),
        Frame::End(s) => (KIND_END, s.as_bytes().to_vec()),
        Frame::Ok(s) => (KIND_OK, s.as_bytes().to_vec()),
        Frame::Err(s) => (KIND_ERR, s.as_bytes().to_vec()),
        Frame::Stats(s) => (KIND_STATS, s.as_bytes().to_vec()),
        Frame::Csv { name, bytes } => {
            let nb = name.as_bytes();
            let mut p = Vec::with_capacity(2 + nb.len() + bytes.len());
            p.extend_from_slice(&(nb.len() as u16).to_le_bytes());
            p.extend_from_slice(nb);
            p.extend_from_slice(bytes);
            (KIND_CSV, p)
        }
        Frame::Metrics(bytes) => (KIND_METRICS, bytes.clone()),
    };
    let mut header = [0u8; 5];
    header[0] = kind;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)
}

/// Reads one binary frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(bad_frame("frame length exceeds the 64 MiB cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text =
        |p: Vec<u8>| String::from_utf8(p).map_err(|_| bad_frame("frame payload is not UTF-8"));
    match kind {
        KIND_ROUND => Ok(Frame::Round(RoundLine::decode(&payload)?)),
        KIND_END => Ok(Frame::End(text(payload)?)),
        KIND_OK => Ok(Frame::Ok(text(payload)?)),
        KIND_ERR => Ok(Frame::Err(text(payload)?)),
        KIND_STATS => Ok(Frame::Stats(text(payload)?)),
        KIND_CSV => {
            if payload.len() < 2 {
                return Err(bad_frame("truncated CSV frame"));
            }
            let name_len = u16::from_le_bytes(payload[..2].try_into().unwrap()) as usize;
            if payload.len() < 2 + name_len {
                return Err(bad_frame("CSV frame name length mismatch"));
            }
            let name = std::str::from_utf8(&payload[2..2 + name_len])
                .map_err(|_| bad_frame("CSV frame name is not UTF-8"))?
                .to_string();
            let bytes = payload[2 + name_len..].to_vec();
            Ok(Frame::Csv { name, bytes })
        }
        KIND_METRICS => Ok(Frame::Metrics(payload)),
        other => Err(bad_frame(&format!("unknown frame kind {other:#04x}"))),
    }
}

/// The server side of a session's response stream: one buffered writer
/// encoding into whichever framing the session negotiated.
///
/// Buffering discipline: nothing here flushes implicitly. Sessions
/// flush **once per round event** on the streaming path and once per
/// finished response otherwise, so a multi-line response (END block,
/// STATS block, CSV header + body) costs one syscall instead of one
/// per protocol line.
pub struct ResponseWriter {
    w: BufWriter<TcpStream>,
    framing: Framing,
}

impl ResponseWriter {
    /// Wraps a session's stream; starts in text framing.
    pub fn new(stream: TcpStream) -> ResponseWriter {
        ResponseWriter {
            w: BufWriter::new(stream),
            framing: Framing::Text,
        }
    }

    /// The currently negotiated framing.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Switches framing (after a successful `HELLO` handshake).
    pub fn set_framing(&mut self, framing: Framing) {
        self.framing = framing;
    }

    /// Writes a raw text line regardless of framing — the greeting and
    /// the `HELLO` reply are always text, so a client can negotiate
    /// before it has to speak frames.
    pub fn text_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.w, "{line}")
    }

    fn emit(&mut self, prefix: &str, payload: &str, frame: Frame) -> io::Result<()> {
        match self.framing {
            Framing::Text => writeln!(self.w, "{prefix} {payload}"),
            Framing::Binary => write_frame(&mut self.w, &frame),
        }
    }

    /// An `OK <detail>` terminator.
    pub fn ok(&mut self, detail: &str) -> io::Result<()> {
        self.emit("OK", detail, Frame::Ok(detail.to_string()))
    }

    /// An `ERR <message>`.
    pub fn err(&mut self, msg: &str) -> io::Result<()> {
        self.emit("ERR", msg, Frame::Err(msg.to_string()))
    }

    /// A `STATS <payload>` line.
    pub fn stats(&mut self, payload: &str) -> io::Result<()> {
        self.emit("STATS", payload, Frame::Stats(payload.to_string()))
    }

    /// An `END <payload>` scenario summary.
    pub fn end(&mut self, payload: &str) -> io::Result<()> {
        self.emit("END", payload, Frame::End(payload.to_string()))
    }

    /// One completed round.
    pub fn round(&mut self, r: &RoundLine) -> io::Result<()> {
        match self.framing {
            Framing::Text => writeln!(self.w, "ROUND {}", r.payload()),
            Framing::Binary => write_frame(&mut self.w, &Frame::Round(r.clone())),
        }
    }

    /// A CSV payload (header + raw bytes in text mode, one frame in
    /// binary mode).
    pub fn csv(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        match self.framing {
            Framing::Text => {
                writeln!(self.w, "CSV {name} {}", bytes.len())?;
                self.w.write_all(bytes)
            }
            Framing::Binary => write_frame(
                &mut self.w,
                &Frame::Csv {
                    name: name.to_string(),
                    bytes: bytes.to_vec(),
                },
            ),
        }
    }

    /// A `METRICS` exposition payload (length-prefixed raw bytes in
    /// text mode — `METRICS <len>\n` then the bytes, like `CSV` — one
    /// frame in binary mode).
    pub fn metrics(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.framing {
            Framing::Text => {
                writeln!(self.w, "METRICS {}", bytes.len())?;
                self.w.write_all(bytes)
            }
            Framing::Binary => write_frame(&mut self.w, &Frame::Metrics(bytes.to_vec())),
        }
    }

    /// Flushes buffered output to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_round() -> RoundLine {
        RoundLine {
            label: "seed-2017".into(),
            round: 3,
            endpoints: 120,
            pairs: 456,
            cases: 440,
            unresponsive: 16,
            links_measured: 70,
            links_planned: 72,
            symmetry: 9,
        }
    }

    #[test]
    fn frames_roundtrip_bitwise() {
        let frames = [
            Frame::Round(sample_round()),
            Frame::End("seed-2017 seed=2017 cases=9 pings=1 unresponsive=0".into()),
            Frame::Ok("run 1".into()),
            Frame::Err("credits need=8 have=0 retry-after-ms=125".into()),
            Frame::Stats("pool worlds=1 engines=1".into()),
            Frame::Csv {
                name: "cases_seed-2017.csv".into(),
                bytes: b"a,b\n1,2\n".to_vec(),
            },
            Frame::Metrics(b"colo_pool_worlds 1\ncolo_pool_engines 1\n".to_vec()),
        ];
        for frame in frames {
            let mut buf = Vec::new();
            write_frame(&mut buf, &frame).unwrap();
            let decoded = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn round_payload_matches_the_text_protocol() {
        let r = sample_round();
        assert_eq!(
            r.payload(),
            "seed-2017 3 endpoints=120 pairs=456 cases=440 unresponsive=16 \
             links=70/72 symmetry=9"
        );
    }

    #[test]
    fn corrupt_frames_error_instead_of_panicking() {
        // Unknown kind.
        let mut buf = Vec::new();
        buf.push(b'Z');
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // Oversized length prefix.
        let mut buf = Vec::new();
        buf.push(KIND_OK);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // Truncated ROUND payload.
        let mut buf = Vec::new();
        buf.push(KIND_ROUND);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // CSV with a lying name length.
        let mut buf = Vec::new();
        buf.push(KIND_CSV);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&200u16.to_le_bytes());
        buf.push(b'x');
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // Truncated stream (EOF mid-frame).
        let mut buf = Vec::new();
        buf.push(KIND_OK);
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn framing_parses_its_wire_names() {
        assert_eq!(Framing::parse("text"), Some(Framing::Text));
        assert_eq!(Framing::parse("binary"), Some(Framing::Binary));
        assert_eq!(Framing::parse("carrier-pigeon"), None);
        assert_eq!(Framing::Binary.label(), "binary");
    }
}
