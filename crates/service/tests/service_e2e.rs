//! End-to-end tests of the measurement service over real sockets.
//!
//! The headline contract (the PR's acceptance criterion): the cases
//! CSV a session streams over a socket is **byte-identical** to a solo
//! `Campaign::run` at the same seed — including when four concurrent
//! sessions share one world's warmed engine stack. Around it: protocol
//! robustness (malformed requests, disconnect mid-session) and bounded
//! admission.

use shortcuts_core::report::cases_csv;
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_service::{BroadcastKey, Client, Framing, Server, ServiceConfig, StreamEvent};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A small-world server with the test's default world seed.
fn small_server(max_sessions: usize) -> Server {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = max_sessions;
    cfg.default_world_seed = 90;
    Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// The solo-run baseline the service must reproduce byte for byte.
/// Every baseline here runs on world seed 90, so the (expensive) world
/// build is shared across tests; each solo campaign still gets a
/// completely private engine stack.
fn solo_world() -> &'static World {
    static SOLO_WORLD: std::sync::OnceLock<World> = std::sync::OnceLock::new();
    SOLO_WORLD.get_or_init(|| World::build(&WorldConfig::small(), 90))
}

fn solo_cases_csv(world_seed: u64, campaign_seed: u64, rounds: u32) -> String {
    assert_eq!(world_seed, 90, "baseline world cache is seeded with 90");
    let world = solo_world();
    let mut cfg = CampaignConfig::small();
    cfg.seed = campaign_seed;
    cfg.rounds = rounds;
    cases_csv(&Campaign::new(world, cfg).run())
}

#[test]
fn streamed_csv_is_byte_identical_to_a_solo_run() {
    let server = small_server(4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut rounds = Vec::new();
    let ok = client
        .run_streaming("RUN seed=4242 rounds=2 world-seed=90", |e| {
            if let StreamEvent::Round(line) = e {
                rounds.push(line);
            }
        })
        .unwrap();
    assert_eq!(ok, "run 1");
    // One ROUND line per round, in round order, for the right label.
    assert_eq!(rounds.len(), 2);
    for (i, line) in rounds.iter().enumerate() {
        assert!(
            line.starts_with(&format!("seed-4242 {i} ")),
            "round line {line:?}"
        );
    }
    let (name, bytes) = client.fetch_csv("cases").unwrap();
    assert_eq!(name, "cases_seed-4242.csv");
    assert_eq!(
        String::from_utf8(bytes).unwrap(),
        solo_cases_csv(90, 4242, 2),
        "service CSV diverged from the solo run"
    );
    client.quit();
    server.shutdown();
}

/// The acceptance criterion: 4 concurrent sessions on ONE shared world
/// each receive CSVs byte-identical to solo runs at their seeds.
#[test]
fn four_concurrent_sessions_match_solo_runs_bytewise() {
    let server = small_server(8);
    let addr = server.local_addr();
    let seeds = [2017u64, 2018, 2019, 2020];

    let streamed: Vec<(u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("admitted");
                    client
                        .run_streaming(&format!("RUN seed={seed} rounds=2 world-seed=90"), |_| {})
                        .expect("run");
                    let (_, bytes) = client.fetch_csv("cases").expect("csv");
                    client.quit();
                    (seed, String::from_utf8(bytes).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All four sessions shared one pooled engine stack.
    assert_eq!(server.manager().pool().worlds_resident(), 1);
    for (seed, csv) in streamed {
        assert_eq!(
            csv,
            solo_cases_csv(90, seed, 2),
            "concurrent session seed {seed} diverged from its solo run"
        );
    }
    server.shutdown();
}

#[test]
fn sweep_session_streams_all_scenarios_and_serves_every_csv() {
    let server = small_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut per_label_rounds = std::collections::BTreeMap::<String, Vec<u32>>::new();
    let mut ends = 0;
    let ok = client
        .run_streaming(
            "SWEEP seeds=7,8 rounds=2 world-seed=90 jobs-in-flight=4",
            |e| match e {
                StreamEvent::Round(line) => {
                    let mut parts = line.split_whitespace();
                    let label = parts.next().unwrap().to_string();
                    let round: u32 = parts.next().unwrap().parse().unwrap();
                    per_label_rounds.entry(label).or_default().push(round);
                }
                StreamEvent::End(_) => ends += 1,
            },
        )
        .unwrap();
    assert_eq!(ok, "sweep 2");
    assert_eq!(ends, 2);
    // Per scenario: every round, in round order.
    for label in ["seed-7", "seed-8"] {
        assert_eq!(per_label_rounds[label], vec![0, 1], "{label}");
    }
    // Each scenario's CSV matches its solo run; the comparison table
    // has one row per scenario.
    for seed in [7u64, 8] {
        let (name, bytes) = client.fetch_csv(&format!("cases seed-{seed}")).unwrap();
        assert_eq!(name, format!("cases_seed-{seed}.csv"));
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            solo_cases_csv(90, seed, 2)
        );
    }
    let (name, bytes) = client.fetch_csv("sweep").unwrap();
    assert_eq!(name, "sweep.csv");
    let sweep_csv = String::from_utf8(bytes).unwrap();
    assert_eq!(sweep_csv.lines().count(), 3, "{sweep_csv}");
    client.quit();
    server.shutdown();
}

#[test]
fn malformed_requests_get_err_and_the_session_survives() {
    let server = small_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for bad in [
        "FROBNICATE",
        "RUN",
        "RUN seed=abc",
        "SWEEP seeds=1,1 rounds=1",
        "CSV nonsense",
    ] {
        let resp = client.round_trip(bad).unwrap();
        assert!(resp.starts_with("ERR"), "{bad:?} answered {resp:?}");
    }
    // CSV before any run is a clean protocol error too.
    let resp = client.round_trip("CSV cases").unwrap();
    assert!(resp.starts_with("ERR no finished run"), "{resp:?}");
    // The session is still fully usable after all those rejections.
    let ok = client
        .run_streaming("RUN seed=5 rounds=1 world-seed=90", |_| {})
        .unwrap();
    assert_eq!(ok, "run 1");
    client.quit();
    server.shutdown();
}

#[test]
fn disconnect_mid_session_leaves_the_server_serving() {
    let server = small_server(2);
    let addr = server.local_addr();

    // Rudely drop a connection right after submitting a run — no
    // reading, no QUIT. The server must absorb it (the batch runs to
    // completion server-side; writes to the dead socket just fail).
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"RUN seed=3 rounds=2 world-seed=90\n")
            .unwrap();
        // Dropped here, mid-stream.
    }

    // A fresh session on the same shared engine works, and its output
    // is still byte-exact (the aborted session left no dirty state).
    let mut client = Client::connect(addr).unwrap();
    let ok = client
        .run_streaming("RUN seed=3 rounds=2 world-seed=90", |_| {})
        .unwrap();
    assert_eq!(ok, "run 1");
    let (_, bytes) = client.fetch_csv("cases").unwrap();
    assert_eq!(String::from_utf8(bytes).unwrap(), solo_cases_csv(90, 3, 2));
    client.quit();

    // The dropped session's permit must drain (its run finishes in the
    // background first).
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while server.manager().active_sessions() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "dropped session never released its permit"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn admission_limit_refuses_and_recovers() {
    let server = small_server(1);
    let addr = server.local_addr();

    // First client occupies the only slot.
    let first = Client::connect(addr).expect("first session admitted");

    // While it holds the slot, further clients are refused with ERR
    // busy. (The accept loop admits synchronously, so the refusal is
    // immediate and deterministic.)
    let refused = Client::connect(addr);
    match refused {
        Err(e) => {
            assert_eq!(e.kind(), std::io::ErrorKind::ConnectionRefused);
            assert!(e.to_string().contains("busy"), "{e}");
        }
        Ok(_) => panic!("second session must be refused at max-sessions=1"),
    }

    // Releasing the slot lets the next client in.
    first.quit();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut admitted = None;
    while admitted.is_none() {
        assert!(
            std::time::Instant::now() < deadline,
            "slot never became available again"
        );
        match Client::connect(addr) {
            Ok(c) => admitted = Some(c),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut client = admitted.unwrap();
    let resp = client.stats().expect("stats on recovered slot");
    // No run yet in this server: no engine stacks pooled — only the
    // aggregate pool line and the service counters line.
    assert_eq!(resp.len(), 2, "{resp:?}");
    assert!(resp[0].starts_with("pool "), "{resp:?}");
    assert!(resp[1].starts_with("service "), "{resp:?}");
    client.quit();
    server.shutdown();
}

#[test]
fn stats_report_the_pooled_engine_health() {
    let server = small_server(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .run_streaming("RUN seed=11 rounds=1 world-seed=90", |_| {})
        .unwrap();
    let stats = client.stats().unwrap();
    // One engine line, the aggregate pool line, the service line, and
    // this client's credit balance (the RUN above paid for work).
    assert_eq!(stats.len(), 4, "{stats:?}");
    let line = &stats[0];
    assert!(line.starts_with("world=90 policy=valley-free "), "{line}");
    for key in [
        "pair_hits=",
        "tables_resident=",
        "pings_sent=",
        "tables_bytes=",
        "pair_bytes=",
    ] {
        assert!(line.contains(key), "{line} missing {key}");
    }
    let pool_line = &stats[1];
    assert!(pool_line.starts_with("pool worlds=1 "), "{pool_line}");
    assert!(pool_line.contains("budget=unbounded"), "{pool_line}");
    let service_line = &stats[2];
    for key in [
        "subscribers=",
        "broadcasts=",
        "rounds_fanned_out=",
        "subscribers_shed=",
        "credits_denied=",
    ] {
        assert!(service_line.contains(key), "{service_line} missing {key}");
    }
    let credits_line = &stats[3];
    assert!(credits_line.starts_with("credits ip="), "{credits_line}");
    assert!(credits_line.contains("balance="), "{credits_line}");
    // The engine did real work.
    let pings: u64 = line
        .split("pings_sent=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(pings > 0);
    client.quit();
    server.shutdown();
}

/// Collects one full response stream (`ROUND`/`END` events in order)
/// plus the terminating `OK` detail.
fn collect_stream(client: &mut Client, request: &str) -> (Vec<String>, String) {
    let mut events = Vec::new();
    let ok = client
        .run_streaming(request, |e| {
            events.push(match e {
                StreamEvent::Round(p) => format!("ROUND {p}"),
                StreamEvent::End(p) => format!("END {p}"),
            });
        })
        .expect("stream");
    (events, ok)
}

/// Parses one counter off the `service …` STATS line.
fn service_counter(stats: &[String], key: &str) -> u64 {
    let line = stats
        .iter()
        .find(|l| l.starts_with("service "))
        .expect("service stats line");
    line.split(&format!("{key}="))
        .nth(1)
        .unwrap_or_else(|| panic!("{line} missing {key}"))
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

/// The tentpole contract: SUBSCRIBE clients riding one broadcast
/// receive event streams and CSVs byte-identical to a solo RUN — in
/// text framing and in binary framing — while the campaign executes
/// exactly once.
#[test]
fn subscribers_get_streams_byte_identical_to_a_solo_run() {
    let server = small_server(8);
    let addr = server.local_addr();

    // The solo baseline stream: a plain RUN on a different server so
    // its execution shares nothing with the broadcast under test.
    let baseline_server = small_server(2);
    let mut solo = Client::connect(baseline_server.local_addr()).unwrap();
    let (solo_events, solo_ok) = collect_stream(&mut solo, "RUN seed=4242 rounds=2 world-seed=90");
    let (_, solo_csv) = solo.fetch_csv("cases").unwrap();
    solo.quit();
    baseline_server.shutdown();
    assert_eq!(solo_ok, "run 1");

    // Producer subscriber on a background thread; taps attach once the
    // broadcast key is live, one in text framing and one in binary.
    let producer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("producer admitted");
        let (events, ok) = collect_stream(&mut c, "SUBSCRIBE seed=4242 rounds=2 world-seed=90");
        let (_, csv) = c.fetch_csv("cases").expect("producer csv");
        c.quit();
        (events, ok, csv)
    });
    let key = BroadcastKey {
        world_seed: 90,
        policy: Default::default(),
        seeds: vec![4242],
        rounds: 2,
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !server.manager().hub().has_live(&key) {
        assert!(
            std::time::Instant::now() < deadline,
            "producer never registered its broadcast"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let taps: Vec<_> = [Framing::Text, Framing::Binary]
        .into_iter()
        .map(|framing| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("tap admitted");
                c.negotiate(framing).expect("HELLO");
                let (events, ok) =
                    collect_stream(&mut c, "SUBSCRIBE seed=4242 rounds=2 world-seed=90");
                let (_, csv) = c.fetch_csv("cases").expect("tap csv");
                c.quit();
                (events, ok, csv)
            })
        })
        .collect();

    let (producer_events, producer_ok, producer_csv) = producer.join().unwrap();
    assert_eq!(producer_ok, "run 1");
    assert_eq!(
        producer_events, solo_events,
        "producer stream diverged from the solo RUN"
    );
    assert_eq!(producer_csv, solo_csv);
    for (i, tap) in taps.into_iter().enumerate() {
        let (events, ok, csv) = tap.join().unwrap();
        assert_eq!(ok, "run 1", "tap {i}");
        assert_eq!(events, solo_events, "tap {i} stream diverged");
        assert_eq!(csv, solo_csv, "tap {i} CSV diverged");
    }

    // Fan-out counters: one broadcast, two taps, each fed both rounds
    // (live or via backlog replay — the count is the same).
    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(service_counter(&stats, "broadcasts"), 1);
    assert_eq!(service_counter(&stats, "rounds_fanned_out"), 4);
    assert_eq!(service_counter(&stats, "subscribers_shed"), 0);
    assert_eq!(service_counter(&stats, "subscribers"), 0, "gauge drains");
    probe.quit();
    server.shutdown();
}

/// A SUBSCRIBE arriving after the batch finished replays it from the
/// broadcast done-cache — full stream, `OK`, working CSV — without a
/// second execution.
#[test]
fn late_subscribers_replay_a_finished_run_from_the_cache() {
    let server = small_server(4);
    let addr = server.local_addr();
    let mut first = Client::connect(addr).unwrap();
    let (run_events, _) = collect_stream(&mut first, "RUN seed=31 rounds=2 world-seed=90");
    first.quit();

    let mut late = Client::connect(addr).unwrap();
    let (events, ok) = collect_stream(&mut late, "SUBSCRIBE seed=31 rounds=2 world-seed=90");
    assert_eq!(ok, "run 1");
    assert_eq!(events, run_events, "replay diverged from the live stream");
    let (_, bytes) = late.fetch_csv("cases").unwrap();
    assert_eq!(String::from_utf8(bytes).unwrap(), solo_cases_csv(90, 31, 2));
    let stats = late.stats().unwrap();
    assert_eq!(
        service_counter(&stats, "broadcasts"),
        1,
        "the replay must not have re-executed"
    );
    late.quit();
    server.shutdown();
}

/// With zero subscriber lag every live event overflows a tap's queue:
/// the tap is shed with `ERR lagged`, the producer finishes untouched,
/// and the shed session stays usable.
#[test]
fn lagged_subscribers_are_shed_without_stalling_the_producer() {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 4;
    cfg.default_world_seed = 90;
    cfg.subscriber_lag = 0;
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr();

    let producer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("producer admitted");
        let (events, ok) = collect_stream(&mut c, "SUBSCRIBE seed=55 rounds=2 world-seed=90");
        c.quit();
        (events, ok)
    });
    let key = BroadcastKey {
        world_seed: 90,
        policy: Default::default(),
        seeds: vec![55],
        rounds: 2,
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !server.manager().hub().has_live(&key) {
        assert!(std::time::Instant::now() < deadline, "no live broadcast");
        std::thread::sleep(Duration::from_millis(2));
    }
    // The tap attaches while the producer is still building the world:
    // empty backlog + lag 0 = queue capacity 0, so the first published
    // round sheds it deterministically.
    let mut tap = Client::connect(addr).expect("tap admitted");
    let err = tap
        .run_streaming("SUBSCRIBE seed=55 rounds=2 world-seed=90", |_| {})
        .expect_err("zero-lag tap must be shed");
    assert!(err.to_string().contains("lagged"), "{err}");

    let (producer_events, producer_ok) = producer.join().unwrap();
    assert_eq!(producer_ok, "run 1", "producer must be unaffected");
    assert_eq!(producer_events.len(), 2 + 1, "2 rounds + 1 END");

    // The shed session is still usable, and the shed is counted.
    let stats = tap.stats().expect("session survives the shed");
    assert_eq!(service_counter(&stats, "subscribers_shed"), 1);
    let (_, bytes) = {
        let ok = tap
            .run_streaming("RUN seed=55 rounds=2 world-seed=90", |_| {})
            .expect("shed session can still run");
        assert_eq!(ok, "run 1");
        tap.fetch_csv("cases").unwrap()
    };
    assert_eq!(String::from_utf8(bytes).unwrap(), solo_cases_csv(90, 55, 2));
    tap.quit();
    server.shutdown();
}

/// Credit-spend feedback is opt-in per session: `HELLO credits=on`
/// adds a ` credits=<remaining>` suffix to each metered `OK`
/// terminator, the default session sees the unchanged protocol bytes,
/// and `STATS` reports the same balance per client IP.
#[test]
fn credit_feedback_is_opt_in_and_session_local() {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 2;
    cfg.default_world_seed = 90;
    // No refill: the balances asserted below are exact.
    cfg.credits = shortcuts_service::CreditConfig::new(100.0, 0.0);
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");

    // A session that does not opt in sees the unchanged terminator.
    let mut plain = Client::connect(server.local_addr()).unwrap();
    let ok = plain
        .run_streaming("RUN seed=5 rounds=2 world-seed=90", |_| {})
        .unwrap();
    assert_eq!(ok, "run 1");
    plain.quit();

    // The opted-in session is metered against the same per-IP bucket
    // (both connections come from 127.0.0.1): 100 − 2 spent above.
    let mut verbose = Client::connect(server.local_addr()).unwrap();
    let reply = verbose.round_trip("HELLO credits=on").unwrap();
    assert_eq!(reply, "OK hello framing=text");
    let ok = verbose
        .run_streaming("RUN seed=6 rounds=2 world-seed=90", |_| {})
        .unwrap();
    assert_eq!(ok, "run 1 credits=96");
    let ok = verbose
        .run_streaming("SWEEP seeds=7,8 rounds=2 world-seed=90", |_| {})
        .unwrap();
    assert_eq!(ok, "sweep 2 credits=92");
    // STATS agrees: no refill, so the balance is exactly what is left.
    let stats = verbose.stats().unwrap();
    let line = stats
        .iter()
        .find(|l| l.starts_with("credits ip="))
        .expect("credits balance line");
    assert!(line.ends_with("balance=92"), "{line}");
    verbose.quit();
    server.shutdown();
}

/// Credit admission: a client that outruns its bucket gets
/// `ERR credits` with a usable retry-after hint, free probes keep
/// working while broke, and the bucket refills on the clock.
#[test]
fn exhausted_credits_deny_refill_and_recover() {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 2;
    cfg.default_world_seed = 90;
    // A 4-credit bucket refilling at 20/s: a denied 4-round run is
    // re-admittable in at most ~200 ms.
    cfg.credits = shortcuts_service::CreditConfig::new(4.0, 20.0);
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();

    let ok = client
        .run_streaming("RUN seed=9 rounds=4 world-seed=90", |_| {})
        .unwrap();
    assert_eq!(ok, "run 1");

    // The first run's own execution time refills the bucket, so drain
    // it through the ledger to below one credit: the denial below must
    // not depend on how fast the run happened to execute.
    let ledger = server.manager().credits();
    let ip: std::net::IpAddr = "127.0.0.1".parse().unwrap();
    while matches!(
        ledger.try_charge(ip, 1.0),
        shortcuts_service::credits::Charge::Ok { .. }
    ) {}

    // Broke: the next run is denied without executing, with a hint.
    let err = client
        .run_streaming("RUN seed=10 rounds=4 world-seed=90", |_| {})
        .expect_err("bucket is empty");
    assert!(err.to_string().contains("ERR credits"), "{err}");
    let hint = shortcuts_service::client::retry_after(&err).expect("retry-after-ms hint");
    assert!(hint <= Duration::from_secs(1), "{hint:?}");

    // STATS is free: it works while broke, and counts the denial.
    let stats = client.stats().expect("free probe while broke");
    assert!(service_counter(&stats, "credits_denied") >= 1);

    // CSV of the last successful run is free too.
    let (_, bytes) = client.fetch_csv("cases").unwrap();
    assert_eq!(String::from_utf8(bytes).unwrap(), solo_cases_csv(90, 9, 4));

    // After the hinted wait the bucket covers a smaller run.
    std::thread::sleep(hint + Duration::from_millis(150));
    let ok = client
        .run_streaming("RUN seed=11 rounds=2 world-seed=90", |_| {})
        .expect("refilled bucket must admit");
    assert_eq!(ok, "run 1");

    // And the retry helper rides the denial without manual sleeping.
    let ok = client
        .run_streaming_with_retry(
            "RUN seed=12 rounds=2 world-seed=90",
            shortcuts_service::RetryPolicy::with_attempts(10),
            |_| {},
        )
        .expect("backoff retry must eventually admit");
    assert_eq!(ok, "run 1");
    client.quit();
    server.shutdown();
}

/// Binary framing carries every response type: streams, CSVs and
/// STATS decode to exactly what text framing produces.
#[test]
fn binary_framing_is_indistinguishable_at_the_event_level() {
    let server = small_server(2);
    let mut text = Client::connect(server.local_addr()).unwrap();
    let (text_events, text_ok) = collect_stream(&mut text, "RUN seed=77 rounds=2 world-seed=90");
    let (text_name, text_csv) = text.fetch_csv("cases").unwrap();
    text.quit();

    let mut bin = Client::connect(server.local_addr()).unwrap();
    bin.negotiate(Framing::Binary).unwrap();
    assert_eq!(bin.framing(), Framing::Binary);
    let (bin_events, bin_ok) = collect_stream(&mut bin, "RUN seed=77 rounds=2 world-seed=90");
    let (bin_name, bin_csv) = bin.fetch_csv("cases").unwrap();
    assert_eq!(bin_ok, text_ok);
    assert_eq!(bin_events, text_events, "framings must carry equal events");
    assert_eq!(bin_name, text_name);
    assert_eq!(bin_csv, text_csv, "framings must carry equal CSV bytes");
    assert_eq!(
        String::from_utf8(bin_csv).unwrap(),
        solo_cases_csv(90, 77, 2)
    );
    // Errors and stats cross the binary framing too.
    let stats = bin.stats().unwrap();
    assert!(stats.iter().any(|l| l.starts_with("pool ")), "{stats:?}");
    let err = bin.fetch_csv("cases no-such-label").unwrap_err();
    assert!(err.to_string().contains("no scenario"), "{err}");
    bin.quit();
    server.shutdown();
}

/// A byte-budgeted server keeps serving byte-exact results while its
/// pool evicts idle stacks: two sequential sessions on different world
/// seeds leave at most one stack resident, the STATS pool line counts
/// the evictions, and every CSV still matches the solo baseline.
#[test]
fn budgeted_server_evicts_idle_stacks_and_stays_bytewise_correct() {
    use shortcuts_topology::MemoryBudget;
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 2;
    cfg.default_world_seed = 90;
    // Smaller than one small-world substrate: every detach leaves the
    // pool over budget, so idle stacks are always reclaimed. Engine
    // caches run budgeted (and small) too — results must not care.
    cfg.memory = MemoryBudget::bytes(solo_world().shared().approx_bytes() / 2);
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");

    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .run_streaming("RUN seed=4242 rounds=2 world-seed=90", |_| {})
        .unwrap();
    let (_, bytes) = client.fetch_csv("cases").unwrap();
    assert_eq!(
        String::from_utf8(bytes).unwrap(),
        solo_cases_csv(90, 4242, 2),
        "budgeted service CSV diverged from the unbudgeted solo run"
    );
    // A second batch on another world seed: the first (now idle) stack
    // gets evicted rather than accreting.
    client
        .run_streaming("RUN seed=7 rounds=1 world-seed=91", |_| {})
        .unwrap();
    assert!(
        server.manager().pool().worlds_resident() <= 1,
        "idle stacks must be evicted under the pool budget"
    );
    let stats = client.stats().unwrap();
    let pool_line = stats
        .iter()
        .find(|l| l.starts_with("pool "))
        .expect("pool line");
    let evictions: u64 = pool_line
        .split("stack_evictions=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(evictions >= 1, "{pool_line}");
    client.quit();
    server.shutdown();
}
