//! End-to-end tests of the `METRICS` exposition surface.
//!
//! The anti-drift contract: `METRICS` and `STATS` render the *same*
//! `fields()` lists, so every engine / pool / service counter must
//! carry the same value on both surfaces when sampled back to back on
//! an idle session. On top of that: the process-wide telemetry series
//! (per-stage latency histograms, scheduler gauges) must be present
//! and populated after a run, and the per-IP credit lines must come
//! out sorted.

use shortcuts_service::{Client, CreditLedger, Server, ServiceConfig};
use std::collections::BTreeMap;

fn small_server() -> Server {
    let mut cfg = ServiceConfig::small();
    cfg.max_sessions = 4;
    cfg.default_world_seed = 90;
    Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// Parses a Prometheus text exposition into `name{labels}` → value.
fn parse_exposition(text: &str) -> BTreeMap<String, String> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (key, value) = l
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("bad line {l:?}"));
            (key.to_string(), value.to_string())
        })
        .collect()
}

/// Parses the `name=value` pairs of one STATS summary segment.
fn parse_kv(segment: &str) -> Vec<(String, String)> {
    segment
        .split_whitespace()
        .map(|kv| {
            let (k, v) = kv
                .split_once('=')
                .unwrap_or_else(|| panic!("bad kv {kv:?}"));
            (k.to_string(), v.to_string())
        })
        .collect()
}

/// Every counter STATS reports must appear in METRICS with the same
/// rendered value — both surfaces format from one `fields()` list, so
/// any mismatch is a drift bug, not a tolerance question. (Credit
/// balances are the one time-dependent exception, checked separately.)
#[test]
fn metrics_values_agree_with_stats_fields() {
    let server = small_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .run_streaming("RUN seed=4242 rounds=2 world-seed=90", |_| {})
        .unwrap();

    let stats = client.stats().unwrap();
    let metrics = parse_exposition(&client.metrics().unwrap());

    let mut engine_lines = 0;
    let mut credit_lines: Vec<String> = Vec::new();
    for line in &stats {
        if let Some(rest) = line.strip_prefix("world=") {
            // `world=90 policy=valley-free pair_hits=.. ...`
            let kvs = parse_kv(&format!("world={rest}"));
            let world = &kvs[0].1;
            let policy = &kvs[1].1;
            for (name, value) in &kvs[2..] {
                let key = format!("colo_engine_{name}{{world=\"{world}\",policy=\"{policy}\"}}");
                assert_eq!(
                    metrics.get(&key),
                    Some(value),
                    "engine field {name} drifted between STATS and METRICS"
                );
            }
            engine_lines += 1;
        } else if let Some(rest) = line.strip_prefix("pool ") {
            for (name, value) in parse_kv(rest) {
                // `budget=unbounded` has no numeric METRICS mirror;
                // a finite budget appears as colo_pool_budget_bytes.
                let key = if name == "budget" {
                    if value == "unbounded" {
                        continue;
                    }
                    "colo_pool_budget_bytes".to_string()
                } else {
                    format!("colo_pool_{name}")
                };
                assert_eq!(
                    metrics.get(&key),
                    Some(&value),
                    "pool field {name} drifted between STATS and METRICS"
                );
            }
        } else if let Some(rest) = line.strip_prefix("service ") {
            for (name, value) in parse_kv(rest) {
                assert_eq!(
                    metrics.get(&format!("colo_service_{name}")),
                    Some(&value),
                    "service field {name} drifted between STATS and METRICS"
                );
            }
        } else if line.starts_with("credits ") {
            credit_lines.push(line.clone());
        }
    }
    assert!(engine_lines >= 1, "no engine line in STATS: {stats:?}");

    // Credit balances refill on the clock, so the two surfaces sample
    // a moving value — compare within a generous window instead of
    // byte-for-byte, and require the same (sorted) client set.
    assert!(
        !credit_lines.is_empty(),
        "metered RUN left no credit line in STATS: {stats:?}"
    );
    let mut metric_ips = Vec::new();
    for line in &credit_lines {
        let kvs = parse_kv(line.strip_prefix("credits ").unwrap());
        let (ip, stats_balance) = (&kvs[0].1, kvs[1].1.parse::<f64>().unwrap());
        let key = format!("colo_credits_balance{{ip=\"{ip}\"}}");
        let metrics_balance: f64 = metrics
            .get(&key)
            .unwrap_or_else(|| panic!("no {key} in METRICS"))
            .parse()
            .unwrap();
        assert!(
            (metrics_balance - stats_balance).abs() < 4.0,
            "credit balance for {ip}: STATS {stats_balance} vs METRICS {metrics_balance}"
        );
        metric_ips.push(ip.clone());
    }
    let mut sorted = metric_ips.clone();
    sorted.sort();
    assert_eq!(metric_ips, sorted, "credit lines are not sorted by IP");

    client.quit();
    server.shutdown();
}

/// After a RUN the pipeline span histograms must be live: every stage
/// series exposed, and the stages that run in every execution mode
/// (plan, sample, stitch) populated with samples and a nonzero sum.
#[test]
fn stage_histograms_populate_after_a_run() {
    let server = small_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .run_streaming("RUN seed=77 rounds=2 world-seed=90", |_| {})
        .unwrap();
    let metrics = parse_exposition(&client.metrics().unwrap());

    for stage in ["plan", "resolve_pairs", "sample", "stitch", "repair"] {
        assert!(
            metrics.contains_key(&format!(
                "colo_stage_duration_ns_count{{stage=\"{stage}\"}}"
            )),
            "stage {stage} series missing from METRICS"
        );
    }
    for stage in ["plan", "sample", "stitch"] {
        let count: u64 = metrics[&format!("colo_stage_duration_ns_count{{stage=\"{stage}\"}}")]
            .parse()
            .unwrap();
        let sum: u64 = metrics[&format!("colo_stage_duration_ns_sum{{stage=\"{stage}\"}}")]
            .parse()
            .unwrap();
        assert!(count > 0, "stage {stage} recorded no spans");
        assert!(sum > 0, "stage {stage} recorded zero total duration");
    }
    // Scheduler gauges exist and are back to idle.
    assert_eq!(metrics["colo_shard_jobs_in_flight"], "0");
    assert!(metrics.contains_key("colo_shard_queue_depth"));

    client.quit();
    server.shutdown();
}

/// Multi-client sort order of `balances()` — e2e sessions all arrive
/// from 127.0.0.1, so the many-IP ordering contract is pinned at the
/// ledger layer.
#[test]
fn ledger_balances_sort_by_ip_across_clients() {
    let ledger = CreditLedger::new(Default::default());
    for ip in ["10.9.9.9", "10.1.2.3", "192.168.0.1", "10.1.10.3"] {
        ledger.try_charge(ip.parse().unwrap(), 1.0);
    }
    let ips: Vec<String> = ledger
        .balances()
        .iter()
        .map(|(ip, _)| ip.to_string())
        .collect();
    assert_eq!(ips, ["10.1.2.3", "10.1.10.3", "10.9.9.9", "192.168.0.1"]);
}
