//! # shortcuts-topology
//!
//! A synthetic, geographically embedded AS-level Internet topology with
//! policy (valley-free) routing — the substrate the paper's measurement
//! study runs on.
//!
//! The live Internet obviously cannot be shipped in a crate, so this
//! module builds the closest synthetic equivalent that preserves the
//! mechanism the paper's results depend on: **BGP path inflation**.
//! Direct paths between eyeball networks must climb the provider
//! hierarchy and are geographically constrained to the PoP cities of the
//! transit ASes involved, while large colocation facilities concentrate
//! peering and therefore offer geographically sensible "shortcuts".
//!
//! ## Contents
//!
//! - [`ids`] — strongly typed identifiers ([`Asn`], [`PopId`],
//!   [`FacilityId`], [`IxpId`]).
//! - [`ip`] — IPv4 prefixes and per-AS address allocation.
//! - [`asys`] — autonomous systems: type (tier-1/tier-2/eyeball/content/
//!   enterprise/research), countries, PoPs.
//! - [`facility`] — colocation facilities and IXPs with membership.
//! - [`graph`] — the assembled [`Topology`] with adjacency by business
//!   relationship, plus the dense [`NodeId`] space: a shared
//!   [`graph::NodeIndex`] and a flat CSR adjacency
//!   ([`graph::CsrAdjacency`]) the routing core sweeps over.
//! - [`generator`] — the seeded random generator producing realistic
//!   topologies ([`TopologyConfig`], [`Topology::generate`]).
//! - [`routing`] — Gao–Rexford valley-free route computation
//!   ([`routing::RoutingTable`], [`routing::Router`]).
//! - [`budget`] — byte budgets for the engine's caches
//!   ([`MemoryBudget`]); the router enforces its share with CLOCK
//!   eviction over the destination-table cache.
//! - [`delta`] — topology churn: [`TopologyDelta`] link/AS up-down
//!   events, [`ChurnSchedule`] round→batch schedules, and the
//!   [`DeltaView`] copy-on-write mask routing sweeps consult; the
//!   incremental table repair lives in [`routing::repair`].
//! - [`intern`] — content-addressed AS-path interning
//!   ([`PathInterner`]): one shared `Arc<[Asn]>` per distinct path, so
//!   pair-level caches charge and revalidate per unique path instead of
//!   per pair.
//!
//! ## Example
//!
//! ```
//! use shortcuts_topology::{Topology, TopologyConfig, routing::Router};
//! use std::sync::Arc;
//!
//! let topo = Arc::new(Topology::generate(&TopologyConfig::small(), 42));
//! // The router co-owns the topology, so it can be shared freely
//! // across campaigns and worker threads.
//! let router = Router::new(Arc::clone(&topo));
//! // Pick two eyeball ASes and compute the policy path between them.
//! let eyeballs = topo.eyeball_asns();
//! let path = router.as_path(eyeballs[0], eyeballs[1]);
//! assert!(path.is_some());
//! ```

pub mod asys;
pub mod budget;
pub mod delta;
pub mod facility;
pub mod generator;
pub mod graph;
pub mod ids;
pub mod intern;
pub mod ip;
pub mod routing;

pub use asys::{AsInfo, AsType, Pop};
pub use budget::MemoryBudget;
pub use delta::{ChurnSchedule, DeltaView, TopologyDelta};
pub use facility::{Facility, Ixp};
pub use generator::TopologyConfig;
pub use graph::{CsrAdjacency, NodeIndex, Relationship, Topology};
pub use ids::{Asn, FacilityId, IxpId, NodeId, PopId};
pub use intern::{InternStats, PathInterner};
pub use ip::{IpAllocator, Prefix};
