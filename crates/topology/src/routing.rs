//! Valley-free (Gao–Rexford) BGP route computation.
//!
//! For a destination AS `d`, routes propagate under the standard export
//! rules:
//!
//! 1. Routes learned from a **customer** may be exported to everyone
//!    (providers, peers, customers).
//! 2. Routes learned from a **peer** or **provider** may be exported
//!    *only to customers*.
//!
//! and are selected under the standard preference order:
//! **customer route > peer route > provider route**, then shortest AS
//! path, then lowest next-hop ASN (deterministic tie-break).
//!
//! This yields the classic three-phase computation. All edges are unit
//! weight, so each phase is a *bucket-queue sweep* over flat arrays in
//! the topology's dense [`NodeId`] space rather than a heap-based
//! Dijkstra over hash maps:
//!
//! - **Phase 1 ("up")**: customer routes climb provider links from `d`
//!   — a plain BFS (the single-source, all-unit-weight special case of
//!   a bucket queue: one frontier per distance).
//! - **Phase 2 ("across")**: ASes with customer routes announce to
//!   peers — a single linear sweep over the entry array (peer routes
//!   are never re-exported, so there is no propagation to schedule).
//! - **Phase 3 ("down")**: routes descend customer links — a
//!   multi-source bucket queue: every route holder is seeded into the
//!   bucket of its path length and buckets drain in increasing
//!   distance, giving Dijkstra's visit order in O(V + E + D) without a
//!   heap.
//!
//! Each sweep writes into a dense `Vec<RouteEntry>` indexed by
//! [`NodeId`] and walks the topology's CSR adjacency
//! ([`crate::graph::CsrAdjacency`]), so the hot loop is sequential
//! array traffic instead of per-AS pointer chases. The tie-break is
//! preserved exactly: a node is first reached at its minimal distance
//! (buckets drain in order), and equal-distance offers — all of which
//! arrive while the predecessor bucket drains — keep the lowest
//! next-hop ASN. Tables are therefore bit-identical to the reference
//! heap implementation, which survives as [`oracle`] for the
//! equivalence proptest and the `routing` benchmark.
//!
//! The result is a full routing table toward `d`: every AS that can
//! reach `d` has a best (class, length, next-hop) entry, and the
//! AS-level forwarding path is recovered by following next-hops. Path
//! *inflation* — the paper's root cause for TIVs — falls out of this
//! policy: the shortest policy-compliant path is often much longer (in
//! hops and kilometers) than the shortest unrestricted path.
//!
//! [`Router`] adds a thread-safe per-destination cache; the measurement
//! campaign touches a few hundred destination ASes out of thousands, so
//! caching tables per destination is the right granularity.
//! [`Router::precompute`] builds a batch of destination tables
//! data-parallel on the worker pool — the campaign warms every table
//! its plan can touch before round 0 instead of serializing table
//! construction behind the first round's pair cache.

use crate::delta::{DeltaView, TopologyDelta};
use crate::graph::{NodeIndex, Topology};
use crate::ids::{Asn, NodeId};
use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

pub mod repair;

/// Preference class of a route, ordered best-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// Learned from a customer (most preferred — it earns money).
    Customer = 0,
    /// Learned from a settlement-free peer.
    Peer = 1,
    /// Learned from a provider (least preferred — it costs money).
    Provider = 2,
}

/// Best route of one AS toward the table's destination.
///
/// Packed to 8 bytes — next-hop ASN plus class and length sharing one
/// `u32` — so a full paper-scale table is a dense array two thirds the
/// size of the naive `(class, u32, Asn)` layout and routing sweeps keep
/// more of the entry array in cache. The `routing::oracle` equivalence
/// proptests compare these packed entries field-for-field against the
/// unpacked reference computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Neighbor the route was learned from (next hop toward the
    /// destination). The destination's own entry points to itself.
    next_hop: Asn,
    /// `class << LEN_BITS | path_len`; `path_len == UNREACHED` marks a
    /// node with no route.
    class_len: u32,
}

/// Bits of `class_len` holding the path length.
const LEN_BITS: u32 = 30;
/// Mask extracting the path length from `class_len`.
const LEN_MASK: u32 = (1 << LEN_BITS) - 1;
/// Sentinel `path_len` marking a node with no route in the dense entry
/// array. Real paths are bounded by the AS count (< 2^30).
const UNREACHED: u32 = LEN_MASK;

// The packing is the point; keep it honest.
const _: () = assert!(std::mem::size_of::<RouteEntry>() == 8);

impl RouteEntry {
    /// A reachable entry.
    pub fn new(class: RouteClass, path_len: u32, next_hop: Asn) -> Self {
        debug_assert!(path_len < UNREACHED, "path length overflows packing");
        RouteEntry {
            next_hop,
            class_len: ((class as u32) << LEN_BITS) | path_len,
        }
    }

    /// The no-route sentinel entry.
    fn unreached(dst: Asn) -> Self {
        RouteEntry {
            next_hop: dst,
            class_len: UNREACHED,
        }
    }

    /// Whether this slot holds no route.
    #[inline]
    fn is_unreached(&self) -> bool {
        self.class_len & LEN_MASK == UNREACHED
    }

    /// Preference class under which the route was learned.
    #[inline]
    pub fn class(&self) -> RouteClass {
        match self.class_len >> LEN_BITS {
            0 => RouteClass::Customer,
            1 => RouteClass::Peer,
            _ => RouteClass::Provider,
        }
    }

    /// AS-path length in hops (destination itself has 0).
    #[inline]
    pub fn path_len(&self) -> u32 {
        self.class_len & LEN_MASK
    }

    /// Neighbor the route was learned from.
    #[inline]
    pub fn next_hop(&self) -> Asn {
        self.next_hop
    }

    /// Replaces the next hop, keeping class and length (equal-cost
    /// tie-break updates in the sweeps).
    #[inline]
    fn set_next_hop(&mut self, next_hop: Asn) {
        self.next_hop = next_hop;
    }
}

/// Routing table toward a single destination AS.
///
/// Backed by a dense `Vec<RouteEntry>` indexed by [`NodeId`] plus the
/// topology's shared ASN ↔ node map, so `route` is one hash lookup +
/// one array read and `as_path` follows precomputed node links without
/// hashing at all.
#[derive(Debug)]
pub struct RoutingTable {
    /// The destination all entries point toward.
    pub destination: Asn,
    /// Shared ASN ↔ NodeId map of the topology the table was computed
    /// over.
    nodes: Arc<NodeIndex>,
    /// Dense entries by NodeId; `path_len == UNREACHED` means no route.
    entries: Vec<RouteEntry>,
    /// Dense next hop by NodeId, as a node (valid where `entries` is).
    next_node: Vec<NodeId>,
    /// The destination's own entry (also covers a destination ASN that
    /// is unknown to the topology, which the map cannot index).
    dst_entry: RouteEntry,
    /// Number of ASes with a route (including the destination).
    reachable: usize,
    /// Churn epoch this table is valid for (0 = the base topology).
    /// Stamped by the [`Router`]; a table whose stamp lags the
    /// router's current epoch is repaired lazily on access.
    epoch: AtomicU64,
}

impl RoutingTable {
    /// Best route of `asn` toward the destination, if reachable.
    pub fn route(&self, asn: Asn) -> Option<&RouteEntry> {
        if asn == self.destination {
            return Some(&self.dst_entry);
        }
        self.route_at(self.nodes.node(asn)?)
    }

    /// Best route of the AS at dense id `src`, if reachable — the
    /// hash-free lookup the ping engine uses once hosts carry their
    /// AS's [`NodeId`].
    #[inline]
    pub fn route_at(&self, src: NodeId) -> Option<&RouteEntry> {
        let e = &self.entries[src.index()];
        (!e.is_unreached()).then_some(e)
    }

    /// Number of ASes that can reach the destination (including itself).
    pub fn reachable_count(&self) -> usize {
        self.reachable
    }

    /// Reconstructs the AS path from `src` to the destination
    /// (inclusive on both ends). `None` if unreachable.
    pub fn as_path(&self, src: Asn) -> Option<Vec<Asn>> {
        if src == self.destination {
            return Some(vec![src]);
        }
        self.as_path_from(self.nodes.node(src)?)
    }

    /// Approximate resident size of this table in bytes — the unit the
    /// router's byte budget is accounted in. Covers the two dense
    /// arrays (which dominate at scale) plus the struct header; the
    /// shared `NodeIndex` is owned by the topology and not charged to
    /// any table.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.len() * std::mem::size_of::<RouteEntry>()
            + self.next_node.len() * std::mem::size_of::<NodeId>()
    }

    /// The churn epoch this table reflects (0 = base topology).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Stamps the table as valid for churn epoch `e` (monotone; only
    /// the router's repair path calls this).
    fn set_epoch(&self, e: u64) {
        self.epoch.store(e, Ordering::Relaxed);
    }

    /// As [`RoutingTable::as_path`], from a dense node id — no ASN
    /// hashing anywhere on the reconstruction path.
    pub fn as_path_from(&self, src: NodeId) -> Option<Vec<Asn>> {
        let entry = &self.entries[src.index()];
        if entry.is_unreached() {
            return None;
        }
        let src_asn = self.nodes.asn(src);
        if entry.path_len() == 0 {
            // The destination's own node.
            return Some(vec![src_asn]);
        }
        let mut node = src;
        let mut path = vec![src_asn];
        // Bound iterations by the table size to guard against cycles
        // (which would indicate a computation bug).
        for _ in 0..=self.entries.len() {
            node = self.next_node[node.index()];
            let asn = self.nodes.asn(node);
            path.push(asn);
            if asn == self.destination {
                return Some(path);
            }
        }
        panic!("routing loop toward {} from {}", self.destination, src_asn);
    }
}

/// Mutable sweep state: the dense entry and next-node arrays all three
/// phases write into.
struct SweepState {
    entries: Vec<RouteEntry>,
    next_node: Vec<NodeId>,
}

impl SweepState {
    fn new(n: usize, dst: Asn) -> Self {
        SweepState {
            entries: vec![RouteEntry::unreached(dst); n],
            next_node: vec![NodeId(0); n],
        }
    }

    /// Finalizes into a table, counting reachable nodes.
    fn finish(self, topo: &Topology, dst: Asn) -> RoutingTable {
        let dst_entry = RouteEntry::new(RouteClass::Customer, 0, dst);
        let known = topo.node_index().node(dst).is_some();
        let reachable =
            self.entries.iter().filter(|e| !e.is_unreached()).count() + usize::from(!known);
        RoutingTable {
            destination: dst,
            nodes: Arc::clone(topo.node_index()),
            entries: self.entries,
            next_node: self.next_node,
            dst_entry,
            reachable,
            epoch: AtomicU64::new(0),
        }
    }
}

/// Computes the full valley-free routing table toward `dst`.
pub fn compute_table(topo: &Topology, dst: Asn) -> RoutingTable {
    let nodes = topo.node_index();
    let csr = topo.csr();
    let mut st = SweepState::new(nodes.len(), dst);
    let Some(d) = nodes.node(dst) else {
        // Unknown destination: only the destination itself (handled by
        // `dst_entry`) has a route.
        return st.finish(topo, dst);
    };
    st.entries[d.index()] = RouteEntry::new(RouteClass::Customer, 0, dst);
    st.next_node[d.index()] = d;

    // ---- Phase 1: customer routes climb provider links -----------------
    // Single-source BFS over unit-weight edges u -> provider(u). A
    // node's distance is final the first time it is reached (frontiers
    // drain in increasing distance); equal-distance offers all arrive
    // while the predecessor frontier drains, keeping the minimum
    // next-hop ASN.
    let mut frontier = vec![d];
    let mut next_frontier: Vec<NodeId> = Vec::new();
    let mut len = 1u32;
    while !frontier.is_empty() {
        for &u in &frontier {
            let u_asn = nodes.asn(u);
            for &p in csr.providers(u) {
                let e = &mut st.entries[p.index()];
                if e.is_unreached() {
                    *e = RouteEntry::new(RouteClass::Customer, len, u_asn);
                    st.next_node[p.index()] = u;
                    next_frontier.push(p);
                } else if e.path_len() == len && u_asn < e.next_hop() {
                    e.set_next_hop(u_asn);
                    st.next_node[p.index()] = u;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        next_frontier.clear();
        len += 1;
    }

    // ---- Phase 2: one peer hop ------------------------------------------
    // Every AS holding a customer route announces it to its peers. A
    // peer route is never re-exported to peers/providers, so this is a
    // single sweep, not a propagation — and since customer entries are
    // never displaced by peer offers, the holder set is fixed and the
    // sweep can run in place, in node order (the per-peer minimum is
    // order-independent).
    for i in 0..st.entries.len() {
        let e = st.entries[i];
        if e.is_unreached() || e.class() != RouteClass::Customer {
            continue;
        }
        let u = NodeId(i as u32);
        let u_asn = nodes.asn(u);
        let cand_len = e.path_len() + 1;
        for &p in csr.peers(u) {
            let pe = &mut st.entries[p.index()];
            let accept = pe.is_unreached()
                || (pe.class() == RouteClass::Peer
                    && (cand_len, u_asn) < (pe.path_len(), pe.next_hop()));
            if accept {
                *pe = RouteEntry::new(RouteClass::Peer, cand_len, u_asn);
                st.next_node[p.index()] = u;
            }
        }
    }

    // ---- Phase 3: routes descend customer links -------------------------
    // Any route (customer, peer, provider) may be exported to
    // customers; provider routes keep descending. Seeds sit at
    // heterogeneous path lengths, so this is the genuine bucket queue:
    // one bucket per distance, drained in increasing order, which
    // reproduces Dijkstra's visit order over unit-weight edges.
    let mut buckets: Vec<Vec<NodeId>> = Vec::new();
    for (i, e) in st.entries.iter().enumerate() {
        if !e.is_unreached() {
            let d = e.path_len() as usize;
            if buckets.len() <= d {
                buckets.resize_with(d + 1, Vec::new);
            }
            buckets[d].push(NodeId(i as u32));
        }
    }
    let mut dist = 0usize;
    while dist < buckets.len() {
        let bucket = std::mem::take(&mut buckets[dist]);
        let len = dist as u32 + 1;
        for &u in &bucket {
            let u_asn = nodes.asn(u);
            for &cust in csr.customers(u) {
                let ce = &mut st.entries[cust.index()];
                if ce.is_unreached() {
                    *ce = RouteEntry::new(RouteClass::Provider, len, u_asn);
                    st.next_node[cust.index()] = u;
                    if buckets.len() <= len as usize {
                        buckets.resize_with(len as usize + 1, Vec::new);
                    }
                    buckets[len as usize].push(cust);
                } else if ce.class() == RouteClass::Provider
                    && ce.path_len() == len
                    && u_asn < ce.next_hop()
                {
                    ce.set_next_hop(u_asn);
                    st.next_node[cust.index()] = u;
                }
            }
        }
        dist += 1;
    }

    st.finish(topo, dst)
}

/// Shortest-path (policy-free) table toward `dst`, used by the
/// `ablation_routing` experiment: identical output shape but ignores
/// business relationships. Comparing against this isolates how much of
/// the relay gain is produced by *policy* inflation.
pub fn compute_table_shortest(topo: &Topology, dst: Asn) -> RoutingTable {
    let nodes = topo.node_index();
    let csr = topo.csr();
    let mut st = SweepState::new(nodes.len(), dst);
    let Some(d) = nodes.node(dst) else {
        return st.finish(topo, dst);
    };
    st.entries[d.index()] = RouteEntry::new(RouteClass::Customer, 0, dst);
    st.next_node[d.index()] = d;

    // One BFS over all three edge classes at once.
    let mut frontier = vec![d];
    let mut next_frontier: Vec<NodeId> = Vec::new();
    let mut len = 1u32;
    while !frontier.is_empty() {
        for &u in &frontier {
            let u_asn = nodes.asn(u);
            for &nb in csr
                .providers(u)
                .iter()
                .chain(csr.customers(u))
                .chain(csr.peers(u))
            {
                let e = &mut st.entries[nb.index()];
                if e.is_unreached() {
                    *e = RouteEntry::new(RouteClass::Customer, len, u_asn);
                    st.next_node[nb.index()] = u;
                    next_frontier.push(nb);
                } else if e.path_len() == len && u_asn < e.next_hop() {
                    e.set_next_hop(u_asn);
                    st.next_node[nb.index()] = u;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        next_frontier.clear();
        len += 1;
    }

    st.finish(topo, dst)
}

/// Routing mode selector for [`Router`]. `Hash` because service-style
/// front ends key cached engine stacks by `(world seed, policy)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingPolicy {
    /// Gao–Rexford valley-free routing (the real Internet's behavior).
    #[default]
    ValleyFree,
    /// Unrestricted shortest-path routing (ablation baseline).
    ShortestPath,
}

impl RoutingPolicy {
    /// Stable textual name, used by CLIs and the service protocol.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::ValleyFree => "valley-free",
            RoutingPolicy::ShortestPath => "shortest-path",
        }
    }

    /// Parses a [`RoutingPolicy::label`] back into a policy.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "valley-free" => Some(RoutingPolicy::ValleyFree),
            "shortest-path" => Some(RoutingPolicy::ShortestPath),
            _ => None,
        }
    }
}

/// Approximate resident size of one destination table over a topology
/// with `n_nodes` dense nodes — what [`RoutingTable::approx_bytes`]
/// will report before any table exists. The CLI uses this to reject a
/// `--memory-budget` that cannot hold even a single table instead of
/// letting the cache thrash silently.
pub fn table_approx_bytes(n_nodes: usize) -> u64 {
    (std::mem::size_of::<RoutingTable>()
        + n_nodes * (std::mem::size_of::<RouteEntry>() + std::mem::size_of::<NodeId>())) as u64
}

/// One dense cache slot: the table plus its CLOCK bookkeeping.
struct TableSlot {
    table: RwLock<Option<Arc<RoutingTable>>>,
    /// CLOCK reference bit — set on every hit and install, cleared
    /// (one second chance) when the eviction hand passes.
    referenced: AtomicBool,
    /// Whether this slot has *ever* held a table: a miss on such a
    /// slot is a recompute (the price of an earlier eviction), not a
    /// cold-start miss.
    ever_resident: AtomicBool,
}

impl TableSlot {
    fn empty() -> Self {
        TableSlot {
            table: RwLock::new(None),
            referenced: AtomicBool::new(false),
            ever_resident: AtomicBool::new(false),
        }
    }
}

/// Point-in-time cache health of a [`Router`] (all counters are
/// monotonic; the gauges are current residency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute a table.
    pub misses: u64,
    /// Tables dropped by the budget enforcer.
    pub evictions: u64,
    /// Misses on destinations that were previously resident — the
    /// recomputation work the byte budget traded for memory.
    pub recomputes: u64,
    /// Destination tables currently resident.
    pub tables_resident: u64,
    /// Approximate bytes of resident tables.
    pub resident_bytes: u64,
    /// The enforced byte budget, `None` when unbounded.
    pub budget_bytes: Option<u64>,
    /// Stale tables brought up to date by the incremental repair
    /// (restricted sweep over the dirty cut).
    pub tables_repaired: u64,
    /// Edge offers the restricted sweeps examined across all repairs —
    /// the work actually done, vs. a full sweep's whole-CSR scan.
    pub entries_rescanned: u64,
    /// Stale tables rebuilt from scratch instead of repaired
    /// (restoration batches, oversized dirty cuts, shortest-path
    /// policy).
    pub full_rebuilds: u64,
}

/// Thread-safe, per-destination-cached route computation over a
/// topology.
///
/// The router co-owns its topology behind an `Arc`, so campaigns, the
/// sweep scheduler and worker threads can all hold the same router
/// without borrowing anything — the ownership shape cross-campaign
/// sweeps need (many campaigns, one table cache).
///
/// The cache itself is **dense**: one slot per [`NodeId`], so a lookup
/// for an in-topology destination is an array index plus one `RwLock`
/// read — no hashing — and construction races are confined to the
/// single destination being built. Destinations outside the topology
/// (degenerate tables; tests) fall back to a side map.
///
/// ## Byte budget
///
/// With [`Router::with_budget`], resident tables are byte-accounted
/// (via [`RoutingTable::approx_bytes`]) and bounded by CLOCK
/// (second-chance) eviction: when an install pushes residency over
/// budget, a clock hand sweeps the dense slots, clearing reference
/// bits and dropping the first unreferenced table it finds, until
/// residency fits again. Because every table is a pure function of
/// `(topology, policy, destination)`, an evicted table is recomputed
/// bit-identically on the next miss — budgets change *residency*,
/// never results. Readers holding an `Arc` to an evicted table are
/// unaffected; the memory is freed when the last reader drops it.
/// The side map for unknown destinations is not budgeted (its tables
/// are degenerate single-entry affairs).
pub struct Router {
    topo: Arc<Topology>,
    policy: RoutingPolicy,
    /// Dense per-destination cache, indexed by the destination's
    /// [`NodeId`].
    slots: Vec<TableSlot>,
    /// Tables toward ASNs the topology does not know.
    other: RwLock<HashMap<Asn, Arc<RoutingTable>>>,
    /// Byte allowance for the dense cache; `None` = never evict.
    budget: Option<u64>,
    resident_bytes: AtomicU64,
    resident_tables: AtomicU64,
    /// CLOCK hand over `slots` (persisted across sweeps so second
    /// chances mean something).
    hand: AtomicUsize,
    /// Serializes eviction sweeps; lookups and installs never wait on
    /// this.
    evict_gate: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    recomputes: AtomicU64,
    /// Current churn epoch (number of delta batches applied). Read on
    /// every lookup as the staleness fast path; 0 means no churn ever.
    epoch: AtomicU64,
    /// The applied delta batches and the per-epoch views they
    /// accumulate to (`views[e]` is the link mask after batch `e`;
    /// `views[0]` is empty). Write-locked only by [`Router::apply_delta`].
    churn: RwLock<ChurnState>,
    tables_repaired: AtomicU64,
    entries_rescanned: AtomicU64,
    full_rebuilds: AtomicU64,
}

/// Applied churn history: one batch and one accumulated [`DeltaView`]
/// per epoch.
struct ChurnState {
    batches: Vec<Vec<TopologyDelta>>,
    views: Vec<DeltaView>,
}

impl Router {
    /// Creates a router with valley-free policy.
    pub fn new(topo: Arc<Topology>) -> Self {
        Self::with_policy(topo, RoutingPolicy::ValleyFree)
    }

    /// Creates a router with an explicit policy (ablations use
    /// [`RoutingPolicy::ShortestPath`]).
    pub fn with_policy(topo: Arc<Topology>, policy: RoutingPolicy) -> Self {
        Self::with_budget(topo, policy, None)
    }

    /// Creates a router whose resident tables are bounded by
    /// `budget_bytes` (typically a [`crate::MemoryBudget`]'s router
    /// share). `None` keeps the grow-forever behaviour.
    pub fn with_budget(
        topo: Arc<Topology>,
        policy: RoutingPolicy,
        budget_bytes: Option<u64>,
    ) -> Self {
        let n = topo.node_index().len();
        Router {
            topo,
            policy,
            slots: (0..n).map(|_| TableSlot::empty()).collect(),
            other: RwLock::new(HashMap::new()),
            budget: budget_bytes,
            resident_bytes: AtomicU64::new(0),
            resident_tables: AtomicU64::new(0),
            hand: AtomicUsize::new(0),
            evict_gate: Mutex::new(()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            recomputes: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            churn: RwLock::new(ChurnState {
                batches: Vec::new(),
                views: vec![DeltaView::empty()],
            }),
            tables_repaired: AtomicU64::new(0),
            entries_rescanned: AtomicU64::new(0),
            full_rebuilds: AtomicU64::new(0),
        }
    }

    /// The topology this router operates on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing policy tables are computed under.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// The enforced byte budget (`None` when unbounded).
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget
    }

    /// Snapshot of the cache counters and residency gauges.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            recomputes: self.recomputes.load(Ordering::Relaxed),
            tables_resident: self.resident_tables.load(Ordering::Relaxed)
                + self.other.read().len() as u64,
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            budget_bytes: self.budget,
            tables_repaired: self.tables_repaired.load(Ordering::Relaxed),
            entries_rescanned: self.entries_rescanned.load(Ordering::Relaxed),
            full_rebuilds: self.full_rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Applies one churn batch: the new epoch's view is the previous
    /// one plus `batch`. Cached tables are **not** touched here — each
    /// stale table is repaired lazily on its next access, so a batch
    /// is O(batch) however many tables are resident.
    ///
    /// Churn mutates the router's routing state permanently; engines
    /// shared across unrelated runs (service pools) must not see this
    /// — churn requests get a private engine stack.
    pub fn apply_delta(&self, batch: &[TopologyDelta]) {
        let mut churn = self.churn.write();
        let next = churn
            .views
            .last()
            .expect("views[0] always exists")
            .applied(&self.topo, batch);
        churn.batches.push(batch.to_vec());
        churn.views.push(next);
        self.epoch
            .store(churn.batches.len() as u64, Ordering::Release);
    }

    /// The current churn epoch (number of batches applied so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The accumulated [`DeltaView`] at the current epoch (a clone;
    /// views are small — the delta footprint, not the graph).
    pub fn current_view(&self) -> DeltaView {
        let epoch = self.epoch() as usize;
        self.churn.read().views[epoch].clone()
    }

    /// Computes a fresh table for `dst` valid at `epoch` (under that
    /// epoch's accumulated view).
    fn compute_at(&self, dst: Asn, epoch: u64) -> RoutingTable {
        if epoch == 0 {
            return match self.policy {
                RoutingPolicy::ValleyFree => compute_table(&self.topo, dst),
                RoutingPolicy::ShortestPath => compute_table_shortest(&self.topo, dst),
            };
        }
        let churn = self.churn.read();
        let view = &churn.views[epoch as usize];
        let t = match self.policy {
            RoutingPolicy::ValleyFree => repair::compute_table_view(&self.topo, view, dst),
            RoutingPolicy::ShortestPath => {
                repair::compute_table_shortest_view(&self.topo, view, dst)
            }
        };
        t.set_epoch(epoch);
        t
    }

    fn compute(&self, dst: Asn) -> RoutingTable {
        self.compute_at(dst, self.epoch())
    }

    /// Walks `old` forward one epoch at a time until it is valid at
    /// `target_epoch`, repairing incrementally where the dirty cut is
    /// small and rebuilding fresh otherwise. Untouched epochs only
    /// move the stamp (safe: stamps are monotone and the slot write
    /// lock serializes repairs of one destination).
    fn repair_to(&self, old: &Arc<RoutingTable>, target_epoch: u64) -> Arc<RoutingTable> {
        let _span = shortcuts_telemetry::global().span(shortcuts_telemetry::Stage::Repair);
        let churn = self.churn.read();
        let mut cur = Arc::clone(old);
        for e in (cur.epoch() + 1)..=target_epoch {
            if self.policy == RoutingPolicy::ShortestPath {
                // No incremental form for the ablation policy.
                let t = repair::compute_table_shortest_view(
                    &self.topo,
                    &churn.views[e as usize],
                    cur.destination,
                );
                t.set_epoch(e);
                self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
                cur = Arc::new(t);
                continue;
            }
            let (repaired, outcome) = repair::repair_table(
                &self.topo,
                &churn.views[e as usize - 1],
                &churn.views[e as usize],
                &churn.batches[e as usize - 1],
                &cur,
            );
            match (repaired, outcome) {
                (None, _) => cur.set_epoch(e),
                (Some(t), outcome) => {
                    t.set_epoch(e);
                    match outcome {
                        repair::RepairOutcome::Repaired { rescanned } => {
                            self.tables_repaired.fetch_add(1, Ordering::Relaxed);
                            self.entries_rescanned
                                .fetch_add(rescanned, Ordering::Relaxed);
                        }
                        repair::RepairOutcome::FullRebuild => {
                            self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
                        }
                        repair::RepairOutcome::Unchanged => {}
                    }
                    cur = Arc::new(t);
                }
            }
        }
        cur
    }

    /// Stores `table` in its dense slot unless a racing thread beat us
    /// to it (first writer wins; the loser's copy is dropped). Returns
    /// the table that ended up cached.
    fn install(&self, dst: NodeId, table: Arc<RoutingTable>) -> Arc<RoutingTable> {
        let slot = &self.slots[dst.index()];
        {
            let mut guard = slot.table.write();
            if let Some(t) = guard.as_ref() {
                slot.referenced.store(true, Ordering::Relaxed);
                return Arc::clone(t);
            }
            *guard = Some(Arc::clone(&table));
        }
        slot.referenced.store(true, Ordering::Relaxed);
        slot.ever_resident.store(true, Ordering::Relaxed);
        self.resident_tables.fetch_add(1, Ordering::Relaxed);
        self.resident_bytes
            .fetch_add(table.approx_bytes() as u64, Ordering::Relaxed);
        table
    }

    /// CLOCK sweep: while residency exceeds the budget, advance the
    /// hand over the dense slots, clearing reference bits (the second
    /// chance) and evicting unreferenced tables. `keep` — the slot the
    /// caller is about to return — is never evicted, so a lookup can
    /// not thrash against its own result. Two full revolutions bound
    /// the sweep even when the budget is unsatisfiable (e.g. `keep`
    /// alone exceeds it).
    fn enforce_budget(&self, keep: NodeId) {
        let Some(budget) = self.budget else {
            return;
        };
        if self.resident_bytes.load(Ordering::Relaxed) <= budget {
            return;
        }
        let _gate = self.evict_gate.lock();
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        let mut hand = self.hand.load(Ordering::Relaxed) % n;
        let mut scanned = 0usize;
        while self.resident_bytes.load(Ordering::Relaxed) > budget && scanned < 2 * n {
            let i = hand;
            hand = (hand + 1) % n;
            scanned += 1;
            if i == keep.index() {
                continue;
            }
            let slot = &self.slots[i];
            if slot.table.read().is_none() {
                continue;
            }
            if slot.referenced.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            let evicted = slot.table.write().take();
            if let Some(t) = evicted {
                self.resident_bytes
                    .fetch_sub(t.approx_bytes() as u64, Ordering::Relaxed);
                self.resident_tables.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.hand.store(hand, Ordering::Relaxed);
    }

    /// Routing table toward the destination at dense id `dst`,
    /// computed once and cached — an array slot away, no hashing.
    /// Under a byte budget the table may have been evicted since it
    /// was last seen; it is then recomputed here, bit-identical. Under
    /// churn, a resident table stamped with an older epoch is repaired
    /// in place (incrementally where possible) before being returned;
    /// an *evicted* stale table simply misses and is rebuilt fresh
    /// under the current view — repair composes with eviction for
    /// free.
    pub fn table_at(&self, dst: NodeId) -> Arc<RoutingTable> {
        let epoch = self.epoch();
        let slot = &self.slots[dst.index()];
        if let Some(t) = slot.table.read().as_ref() {
            if t.epoch() == epoch {
                slot.referenced.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(t);
            }
        }
        if epoch > 0 {
            // Stale (or raced): repair under the slot write lock so
            // one thread walks the table forward per destination.
            let mut guard = slot.table.write();
            match guard.as_ref() {
                Some(t) if t.epoch() == epoch => {
                    let t = Arc::clone(t);
                    drop(guard);
                    slot.referenced.store(true, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return t;
                }
                Some(t) => {
                    // Same node count before and after, so resident
                    // byte accounting is unchanged by the swap.
                    let repaired = self.repair_to(t, epoch);
                    *guard = Some(Arc::clone(&repaired));
                    drop(guard);
                    slot.referenced.store(true, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return repaired;
                }
                None => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if slot.ever_resident.load(Ordering::Relaxed) {
            self.recomputes.fetch_add(1, Ordering::Relaxed);
        }
        // Miss: compute outside the lock (racing threads may duplicate
        // the work, but tables are identical and the loser's copy is
        // simply dropped — readers of other destinations never block
        // behind a construction).
        let table = Arc::new(self.compute_at(self.topo.node_index().asn(dst), epoch));
        let table = self.install(dst, table);
        self.enforce_budget(dst);
        table
    }

    /// Routing table toward `dst`, computed once and cached.
    pub fn table(&self, dst: Asn) -> Arc<RoutingTable> {
        match self.topo.node_index().node(dst) {
            Some(node) => self.table_at(node),
            None => {
                if let Some(t) = self.other.read().get(&dst) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(t);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let table = Arc::new(self.compute(dst));
                Arc::clone(self.other.write().entry(dst).or_insert(table))
            }
        }
    }

    /// Computes and caches the tables of every destination in `dsts`
    /// data-parallel on the worker pool (duplicates and already-cached
    /// destinations are skipped).
    ///
    /// A campaign calls this with every destination its plan can route
    /// toward before the first round; a sweep calls it once with the
    /// **union** of all its campaigns' destinations, so cold-start
    /// table construction happens exactly once however many campaigns
    /// share the router.
    ///
    /// Under a byte budget, `dsts` order is treated as priority order
    /// (callers put the hottest destinations first — see
    /// `plan::warmup_destinations`): warming proceeds front-to-back in
    /// parallel chunks and **stops at the budget** rather than warming
    /// and immediately evicting. Whatever stays cold is recomputed on
    /// first miss.
    pub fn precompute(&self, dsts: &[Asn]) {
        let todo: Vec<Asn> = {
            let mut seen = HashSet::new();
            dsts.iter()
                .copied()
                .filter(|&d| {
                    let cached = match self.topo.node_index().node(d) {
                        Some(node) => self.slots[node.index()].table.read().is_some(),
                        None => self.other.read().contains_key(&d),
                    };
                    !cached && seen.insert(d)
                })
                .collect()
        };
        if todo.is_empty() {
            return;
        }
        // Budgeted warming computes in bounded chunks so a huge
        // destination list cannot transiently materialize far more
        // than the budget before the stop check runs.
        let chunk = match self.budget {
            None => todo.len(),
            Some(_) => 64,
        };
        'warm: for part in todo.chunks(chunk) {
            let tables: Vec<(Asn, Arc<RoutingTable>)> = part
                .par_iter()
                .map(|&d| (d, Arc::new(self.compute(d))))
                .collect();
            for (d, t) in tables {
                if let Some(budget) = self.budget {
                    let next =
                        self.resident_bytes.load(Ordering::Relaxed) + t.approx_bytes() as u64;
                    if next > budget {
                        break 'warm;
                    }
                }
                match self.topo.node_index().node(d) {
                    Some(node) => {
                        self.install(node, t);
                    }
                    None => {
                        self.other.write().entry(d).or_insert(t);
                    }
                }
            }
        }
    }

    /// AS path from `src` to `dst`, or `None` if unreachable.
    pub fn as_path(&self, src: Asn, dst: Asn) -> Option<Vec<Asn>> {
        self.table(dst).as_path(src)
    }

    /// AS path between dense node ids — the ping engine's hot lookup:
    /// hosts carry their AS's [`NodeId`], so resolving a pair's route
    /// does no ASN hashing at all.
    pub fn as_path_between(&self, src: NodeId, dst: NodeId) -> Option<Vec<Asn>> {
        self.table_at(dst).as_path_from(src)
    }

    /// Number of cached destination tables (diagnostics).
    pub fn cached_tables(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.table.read().is_some())
            .count()
            + self.other.read().len()
    }
}

pub mod oracle {
    //! Reference heap-based route computation (the pre-CSR
    //! implementation), kept verbatim as the correctness oracle.
    //!
    //! The equivalence proptest asserts the flat bucket-queue sweeps in
    //! the parent module produce entry-for-entry identical tables, and
    //! the `routing` benchmark measures the speedup against this
    //! implementation. Not for production use — [`super::compute_table`]
    //! is strictly faster and returns the same routes.

    use super::{better, Candidate, RouteClass, RouteEntry};
    use crate::graph::Topology;
    use crate::ids::Asn;
    use std::collections::{BinaryHeap, HashMap};

    /// Valley-free table toward `dst` as a sparse map (reachable ASes
    /// only), via heap-based Dijkstra phases over `Topology::adjacency`.
    pub fn compute_table(topo: &Topology, dst: Asn) -> HashMap<Asn, RouteEntry> {
        let mut routes: HashMap<Asn, RouteEntry> = HashMap::new();
        routes.insert(dst, RouteEntry::new(RouteClass::Customer, 0, dst));

        // ---- Phase 1: customer routes climb provider links -------------
        // Dijkstra over unit-weight edges u -> provider(u). An AS's
        // customer route may always be re-exported upward.
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        heap.push(Candidate {
            path_len: 0,
            owner: dst,
            next_hop: dst,
        });
        while let Some(c) = heap.pop() {
            // Skip stale heap entries.
            match routes.get(&c.owner) {
                Some(e) if e.path_len() == c.path_len && e.next_hop() == c.next_hop => {}
                _ => continue,
            }
            for &p in &topo.adjacency(c.owner).providers {
                let len = c.path_len + 1;
                let accept = match routes.get(&p) {
                    None => true,
                    Some(e) => e.class() == RouteClass::Customer && better(len, c.owner, e),
                };
                if accept {
                    routes.insert(p, RouteEntry::new(RouteClass::Customer, len, c.owner));
                    heap.push(Candidate {
                        path_len: len,
                        owner: p,
                        next_hop: c.owner,
                    });
                }
            }
        }

        // ---- Phase 2: one peer hop --------------------------------------
        // Every AS holding a customer route announces it to its peers.
        // Collect candidates first to keep the result independent of
        // map iteration order.
        let holders: Vec<(Asn, u32)> = {
            let mut v: Vec<_> = routes
                .iter()
                .filter(|(_, e)| e.class() == RouteClass::Customer)
                .map(|(&a, e)| (a, e.path_len()))
                .collect();
            v.sort();
            v
        };
        for (owner, len) in holders {
            for &p in &topo.adjacency(owner).peers {
                let cand_len = len + 1;
                let accept = match routes.get(&p) {
                    None => true,
                    Some(e) => match e.class() {
                        RouteClass::Customer => false,
                        RouteClass::Peer => better(cand_len, owner, e),
                        RouteClass::Provider => true, // can't exist yet, but harmless
                    },
                };
                if accept {
                    routes.insert(p, RouteEntry::new(RouteClass::Peer, cand_len, owner));
                }
            }
        }

        // ---- Phase 3: routes descend customer links ---------------------
        // Dijkstra downward from every route holder.
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut seeds: Vec<(Asn, u32)> = routes.iter().map(|(&a, e)| (a, e.path_len())).collect();
        seeds.sort();
        for (owner, len) in seeds {
            heap.push(Candidate {
                path_len: len,
                owner,
                next_hop: owner, // marker; not used for seeds
            });
        }
        while let Some(c) = heap.pop() {
            match routes.get(&c.owner) {
                Some(e) if e.path_len() == c.path_len => {}
                _ => continue,
            }
            for &cust in &topo.adjacency(c.owner).customers {
                let len = c.path_len + 1;
                let accept = match routes.get(&cust) {
                    None => true,
                    Some(e) => match e.class() {
                        RouteClass::Customer | RouteClass::Peer => false,
                        RouteClass::Provider => better(len, c.owner, e),
                    },
                };
                if accept {
                    routes.insert(cust, RouteEntry::new(RouteClass::Provider, len, c.owner));
                    heap.push(Candidate {
                        path_len: len,
                        owner: cust,
                        next_hop: c.owner,
                    });
                }
            }
        }

        routes
    }

    /// Shortest-path (policy-free) table toward `dst` as a sparse map,
    /// via heap-based Dijkstra over all links.
    pub fn compute_table_shortest(topo: &Topology, dst: Asn) -> HashMap<Asn, RouteEntry> {
        let mut routes: HashMap<Asn, RouteEntry> = HashMap::new();
        routes.insert(dst, RouteEntry::new(RouteClass::Customer, 0, dst));
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        heap.push(Candidate {
            path_len: 0,
            owner: dst,
            next_hop: dst,
        });
        while let Some(c) = heap.pop() {
            match routes.get(&c.owner) {
                Some(e) if e.path_len() == c.path_len && e.next_hop() == c.next_hop => {}
                _ => continue,
            }
            let adj = topo.adjacency(c.owner);
            for &n in adj
                .providers
                .iter()
                .chain(adj.customers.iter())
                .chain(adj.peers.iter())
            {
                let len = c.path_len + 1;
                let accept = match routes.get(&n) {
                    None => true,
                    Some(e) => better(len, c.owner, e),
                };
                if accept {
                    routes.insert(n, RouteEntry::new(RouteClass::Customer, len, c.owner));
                    heap.push(Candidate {
                        path_len: len,
                        owner: n,
                        next_hop: c.owner,
                    });
                }
            }
        }
        routes
    }
}

/// Candidate route offer used by the [`oracle`] heap phases: ordered so
/// that the *best* candidate (smallest length, then smallest next-hop
/// ASN, then smallest owner ASN) pops first from a max-heap via
/// reversed ordering.
#[derive(Debug, PartialEq, Eq)]
struct Candidate {
    path_len: u32,
    owner: Asn,
    next_hop: Asn,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for min-heap behavior.
        (other.path_len, other.next_hop, other.owner).cmp(&(
            self.path_len,
            self.next_hop,
            self.owner,
        ))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Whether `candidate` (class implied equal) beats `incumbent`.
fn better(len: u32, next_hop: Asn, incumbent: &RouteEntry) -> bool {
    (len, next_hop) < (incumbent.path_len(), incumbent.next_hop())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asys::{AsInfo, AsType};
    use crate::graph::TopologyBuilder;
    use shortcuts_geo::CountryCode;

    fn mk_as(b: &mut TopologyBuilder, asn: u32, t: AsType) {
        b.add_as(AsInfo {
            asn: Asn(asn),
            as_type: t,
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        });
    }

    /// Classic valley topology:
    ///
    /// ```text
    ///        1 (tier1)     2 (tier1)   (1 -- 2 peer)
    ///        |             |
    ///        3 (tier2)     4 (tier2)   (3 -- 4 peer)
    ///        |             |
    ///        5 (stub)      6 (stub)
    /// ```
    fn valley_topology() -> Topology {
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier1);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 4, AsType::Tier2);
        mk_as(&mut b, 5, AsType::Eyeball);
        mk_as(&mut b, 6, AsType::Eyeball);
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(4), Asn(2));
        b.add_transit(Asn(5), Asn(3));
        b.add_transit(Asn(6), Asn(4));
        b.add_peering(Asn(1), Asn(2));
        b.add_peering(Asn(3), Asn(4));
        b.build()
    }

    #[test]
    fn stub_to_stub_uses_peer_shortcut() {
        let t = valley_topology();
        let table = compute_table(&t, Asn(6));
        // 5 -> 3 -> 4 -> 6 (via the 3--4 peering), not via the tier-1s.
        assert_eq!(
            table.as_path(Asn(5)).unwrap(),
            vec![Asn(5), Asn(3), Asn(4), Asn(6)]
        );
    }

    #[test]
    fn no_valley_through_customer() {
        // Without the 3--4 peering, traffic must go over the tier-1 peering;
        // it must NOT route 1 -> 3 -> 4 (provider using a customer as
        // transit to reach a non-customer).
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier1);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 4, AsType::Tier2);
        mk_as(&mut b, 5, AsType::Eyeball);
        mk_as(&mut b, 6, AsType::Eyeball);
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(4), Asn(2));
        b.add_transit(Asn(5), Asn(3));
        b.add_transit(Asn(6), Asn(4));
        b.add_peering(Asn(1), Asn(2));
        // extra "tempting" link: 3 is ALSO a customer of 2.
        b.add_transit(Asn(3), Asn(2));
        let t = b.build();
        let table = compute_table(&t, Asn(6));
        let path = table.as_path(Asn(5)).unwrap();
        assert_eq!(path, vec![Asn(5), Asn(3), Asn(2), Asn(4), Asn(6)]);
        assert_valley_free(&t, &path);
    }

    #[test]
    fn prefers_customer_route_even_if_longer() {
        // Destination 10 is reachable from 1 either via a direct peer link
        // (length 1) or via a chain of customers (length 2). Gao-Rexford
        // prefers the customer route despite being longer.
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 10, AsType::Eyeball);
        b.add_transit(Asn(2), Asn(1)); // 2 customer of 1
        b.add_transit(Asn(10), Asn(2)); // 10 customer of 2
        b.add_peering(Asn(1), Asn(10)); // direct peering 1 -- 10
        let t = b.build();
        let table = compute_table(&t, Asn(10));
        let entry = table.route(Asn(1)).unwrap();
        assert_eq!(entry.class(), RouteClass::Customer);
        assert_eq!(entry.path_len(), 2);
        assert_eq!(
            table.as_path(Asn(1)).unwrap(),
            vec![Asn(1), Asn(2), Asn(10)]
        );
    }

    #[test]
    fn unreachable_without_any_link() {
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Eyeball);
        mk_as(&mut b, 2, AsType::Eyeball);
        let t = b.build();
        let table = compute_table(&t, Asn(2));
        assert!(table.as_path(Asn(1)).is_none());
        assert_eq!(table.reachable_count(), 1);
    }

    #[test]
    fn destination_reaches_itself_with_empty_path() {
        let t = valley_topology();
        let table = compute_table(&t, Asn(5));
        assert_eq!(table.as_path(Asn(5)).unwrap(), vec![Asn(5)]);
        assert_eq!(table.route(Asn(5)).unwrap().path_len(), 0);
    }

    #[test]
    fn unknown_destination_reaches_only_itself() {
        let t = valley_topology();
        let table = compute_table(&t, Asn(99));
        assert_eq!(table.reachable_count(), 1);
        assert_eq!(table.as_path(Asn(99)).unwrap(), vec![Asn(99)]);
        assert!(table.as_path(Asn(5)).is_none());
        assert!(table.route(Asn(5)).is_none());
        assert_eq!(table.route(Asn(99)).unwrap().path_len(), 0);
    }

    #[test]
    fn peer_route_not_reexported_to_peer() {
        // 1 -- 2 peer, 2 -- 3 peer. 1's route must not reach 3 across two
        // peering hops (no customer in between).
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier2);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 3, AsType::Tier2);
        b.add_peering(Asn(1), Asn(2));
        b.add_peering(Asn(2), Asn(3));
        let t = b.build();
        let table = compute_table(&t, Asn(1));
        assert!(table.route(Asn(2)).is_some());
        assert!(table.route(Asn(3)).is_none(), "valley across two peer hops");
    }

    #[test]
    fn provider_route_descends_multiple_levels() {
        // dst 1 (tier1) -> customer chain 1 <- 2 <- 3 <- 4; all of 2,3,4
        // reach 1 via provider routes.
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 3, AsType::Eyeball);
        mk_as(&mut b, 4, AsType::Enterprise);
        b.add_transit(Asn(2), Asn(1));
        b.add_transit(Asn(3), Asn(2));
        b.add_transit(Asn(4), Asn(3));
        let t = b.build();
        let table = compute_table(&t, Asn(1));
        assert_eq!(table.route(Asn(4)).unwrap().class(), RouteClass::Provider);
        assert_eq!(
            table.as_path(Asn(4)).unwrap(),
            vec![Asn(4), Asn(3), Asn(2), Asn(1)]
        );
    }

    #[test]
    fn deterministic_tie_break_lowest_next_hop() {
        // dst 10 has two providers 2 and 3, both customers of 1. Path from
        // 1 to 10 can go via 2 or 3 at equal length; must pick AS2.
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 10, AsType::Eyeball);
        b.add_transit(Asn(2), Asn(1));
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(10), Asn(2));
        b.add_transit(Asn(10), Asn(3));
        let t = b.build();
        let table = compute_table(&t, Asn(10));
        assert_eq!(
            table.as_path(Asn(1)).unwrap(),
            vec![Asn(1), Asn(2), Asn(10)]
        );
    }

    #[test]
    fn shortest_path_ablation_ignores_policy() {
        let t = valley_topology();
        // Remove-the-policy view: 5 -> 3 -> 4 -> 6 still shortest (3 hops);
        // but in the no-peering variant shortest would cut through
        // customer links freely.
        let table = compute_table_shortest(&t, Asn(6));
        assert_eq!(table.as_path(Asn(5)).unwrap().len(), 4);
        // Everything is reachable ignoring policy.
        assert_eq!(table.reachable_count(), 6);
    }

    #[test]
    fn router_caches_tables() {
        let r = Router::new(Arc::new(valley_topology()));
        assert_eq!(r.cached_tables(), 0);
        let p1 = r.as_path(Asn(5), Asn(6)).unwrap();
        let p2 = r.as_path(Asn(3), Asn(6)).unwrap();
        assert_eq!(r.cached_tables(), 1);
        assert_eq!(p1.last(), Some(&Asn(6)));
        assert_eq!(p2.last(), Some(&Asn(6)));
    }

    #[test]
    fn precompute_warms_cache_and_agrees_with_on_demand() {
        let t = Arc::new(valley_topology());
        let warm = Router::new(Arc::clone(&t));
        // Duplicates and repeats must be handled; all six tables land
        // in the cache in one call.
        warm.precompute(&[Asn(1), Asn(2), Asn(3), Asn(4), Asn(5), Asn(6), Asn(5)]);
        assert_eq!(warm.cached_tables(), 6);
        // Precomputing again is a no-op.
        warm.precompute(&[Asn(1), Asn(6)]);
        assert_eq!(warm.cached_tables(), 6);

        let cold = Router::new(Arc::clone(&t));
        for dst in [1u32, 2, 3, 4, 5, 6] {
            let a = warm.table(Asn(dst));
            let b = cold.table(Asn(dst));
            assert_eq!(a.reachable_count(), b.reachable_count());
            for src in [1u32, 2, 3, 4, 5, 6] {
                assert_eq!(a.route(Asn(src)), b.route(Asn(src)), "dst {dst} src {src}");
            }
        }
    }

    #[test]
    fn budgeted_router_evicts_and_recomputes_identically() {
        let t = Arc::new(valley_topology());
        // Room for two tables (plus slack below a third).
        let budget = 2 * table_approx_bytes(6) + 8;
        let bounded = Router::with_budget(Arc::clone(&t), RoutingPolicy::ValleyFree, Some(budget));
        let unbounded = Router::new(Arc::clone(&t));
        // Cycle through every destination several times: residency
        // must stay within budget while every returned table matches
        // the unbudgeted router's bit for bit.
        for _ in 0..3 {
            for dst in [1u32, 2, 3, 4, 5, 6] {
                let a = bounded.table(Asn(dst));
                let b = unbounded.table(Asn(dst));
                for src in [1u32, 2, 3, 4, 5, 6] {
                    assert_eq!(a.route(Asn(src)), b.route(Asn(src)), "dst {dst} src {src}");
                    assert_eq!(a.as_path(Asn(src)), b.as_path(Asn(src)));
                }
                let s = bounded.stats();
                assert!(
                    s.resident_bytes <= budget,
                    "residency {} exceeds budget {budget}",
                    s.resident_bytes
                );
            }
        }
        let s = bounded.stats();
        assert!(s.evictions > 0, "budget never forced an eviction: {s:?}");
        assert!(
            s.recomputes > 0,
            "evictions never caused a recompute: {s:?}"
        );
        assert_eq!(
            s.misses,
            s.recomputes + 6,
            "first touch of each dst is a cold miss"
        );
        assert_eq!(unbounded.stats().evictions, 0);
        assert_eq!(unbounded.stats().resident_bytes, 6 * table_approx_bytes(6));
    }

    #[test]
    fn budgeted_precompute_warms_front_to_back_and_stops() {
        let t = Arc::new(valley_topology());
        let budget = 2 * table_approx_bytes(6) + 8;
        let r = Router::with_budget(Arc::clone(&t), RoutingPolicy::ValleyFree, Some(budget));
        r.precompute(&[Asn(1), Asn(2), Asn(3), Asn(4), Asn(5), Asn(6)]);
        // Exactly the two hottest (front-of-list) destinations warmed;
        // nothing was warmed only to be evicted again.
        assert_eq!(r.cached_tables(), 2);
        let s = r.stats();
        assert_eq!(s.evictions, 0);
        assert!(s.resident_bytes <= budget);
        // The cold destinations still resolve fine (recompute on miss).
        assert!(r.as_path(Asn(5), Asn(6)).is_some());
    }

    #[test]
    fn flat_tables_match_oracle_on_valley_topology() {
        let t = valley_topology();
        for dst in [1u32, 2, 3, 4, 5, 6] {
            let flat = compute_table(&t, Asn(dst));
            let reference = oracle::compute_table(&t, Asn(dst));
            assert_eq!(flat.reachable_count(), reference.len(), "dst {dst}");
            for src in [1u32, 2, 3, 4, 5, 6] {
                assert_eq!(
                    flat.route(Asn(src)),
                    reference.get(&Asn(src)),
                    "dst {dst} src {src}"
                );
            }
        }
    }

    /// Asserts the Gao-Rexford valley-free property along `path`:
    /// a sequence of up (customer->provider) steps, at most one peer
    /// step, then down (provider->customer) steps.
    fn assert_valley_free(t: &Topology, path: &[Asn]) {
        #[derive(PartialEq, PartialOrd)]
        enum Stage {
            Up,
            Peer,
            Down,
        }
        let mut stage = Stage::Up;
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let adj = t.adjacency(a);
            let step = if adj.providers.contains(&b) {
                Stage::Up
            } else if adj.peers.contains(&b) {
                Stage::Peer
            } else if adj.customers.contains(&b) {
                Stage::Down
            } else {
                panic!("path uses non-existent link {a} -> {b}");
            };
            assert!(step >= stage, "valley in path at {a} -> {b}");
            stage = step;
        }
    }

    #[test]
    fn all_paths_in_valley_topology_are_valley_free() {
        let t = valley_topology();
        for dst in [1u32, 2, 3, 4, 5, 6] {
            let table = compute_table(&t, Asn(dst));
            for src in [1u32, 2, 3, 4, 5, 6] {
                if let Some(path) = table.as_path(Asn(src)) {
                    assert_valley_free(&t, &path);
                }
            }
        }
    }
}
