//! Valley-free (Gao–Rexford) BGP route computation.
//!
//! For a destination AS `d`, routes propagate under the standard export
//! rules:
//!
//! 1. Routes learned from a **customer** may be exported to everyone
//!    (providers, peers, customers).
//! 2. Routes learned from a **peer** or **provider** may be exported
//!    *only to customers*.
//!
//! and are selected under the standard preference order:
//! **customer route > peer route > provider route**, then shortest AS
//! path, then lowest next-hop ASN (deterministic tie-break).
//!
//! This yields the classic three-phase computation, each phase a
//! shortest-path sweep:
//!
//! - Phase 1 ("up"): customer routes climb provider links from `d`.
//! - Phase 2 ("across"): ASes with customer routes announce to peers.
//! - Phase 3 ("down"): routes descend customer links.
//!
//! The result is a full routing table toward `d`: every AS that can reach
//! `d` has a best (class, length, next-hop) entry, and the AS-level
//! forwarding path is recovered by following next-hops. Path *inflation*
//! — the paper's root cause for TIVs — falls out of this policy: the
//! shortest policy-compliant path is often much longer (in hops and
//! kilometers) than the shortest unrestricted path.
//!
//! [`Router`] adds a thread-safe per-destination cache; the measurement
//! campaign touches a few hundred destination ASes out of thousands, so
//! caching tables per destination is the right granularity.

use crate::graph::Topology;
use crate::ids::Asn;
use parking_lot::RwLock;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Preference class of a route, ordered best-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// Learned from a customer (most preferred — it earns money).
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a provider (least preferred — it costs money).
    Provider,
}

/// Best route of one AS toward the table's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Preference class under which the route was learned.
    pub class: RouteClass,
    /// AS-path length in hops (destination itself has 0).
    pub path_len: u32,
    /// Neighbor the route was learned from (next hop toward the
    /// destination). The destination's own entry points to itself.
    pub next_hop: Asn,
}

/// Routing table toward a single destination AS.
#[derive(Debug)]
pub struct RoutingTable {
    /// The destination all entries point toward.
    pub destination: Asn,
    routes: HashMap<Asn, RouteEntry>,
}

impl RoutingTable {
    /// Best route of `asn` toward the destination, if reachable.
    pub fn route(&self, asn: Asn) -> Option<&RouteEntry> {
        self.routes.get(&asn)
    }

    /// Number of ASes that can reach the destination (including itself).
    pub fn reachable_count(&self) -> usize {
        self.routes.len()
    }

    /// Reconstructs the AS path from `src` to the destination
    /// (inclusive on both ends). `None` if unreachable.
    pub fn as_path(&self, src: Asn) -> Option<Vec<Asn>> {
        let mut path = vec![src];
        let mut cur = src;
        // Bound iterations by the table size to guard against cycles
        // (which would indicate a computation bug).
        for _ in 0..=self.routes.len() {
            if cur == self.destination {
                return Some(path);
            }
            let entry = self.routes.get(&cur)?;
            cur = entry.next_hop;
            path.push(cur);
        }
        panic!("routing loop toward {} from {}", self.destination, src);
    }
}

/// Candidate route offer used by the phase sweeps: ordered so that the
/// *best* candidate (smallest length, then smallest next-hop ASN, then
/// smallest owner ASN) pops first from a max-heap via reversed ordering.
#[derive(Debug, PartialEq, Eq)]
struct Candidate {
    path_len: u32,
    owner: Asn,
    next_hop: Asn,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for min-heap behavior.
        (other.path_len, other.next_hop, other.owner).cmp(&(
            self.path_len,
            self.next_hop,
            self.owner,
        ))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Whether `candidate` (class implied equal) beats `incumbent`.
fn better(len: u32, next_hop: Asn, incumbent: &RouteEntry) -> bool {
    (len, next_hop) < (incumbent.path_len, incumbent.next_hop)
}

/// Computes the full valley-free routing table toward `dst`.
pub fn compute_table(topo: &Topology, dst: Asn) -> RoutingTable {
    let mut routes: HashMap<Asn, RouteEntry> = HashMap::new();
    routes.insert(
        dst,
        RouteEntry {
            class: RouteClass::Customer,
            path_len: 0,
            next_hop: dst,
        },
    );

    // ---- Phase 1: customer routes climb provider links -----------------
    // Dijkstra over unit-weight edges u -> provider(u). An AS's customer
    // route may always be re-exported upward.
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    heap.push(Candidate {
        path_len: 0,
        owner: dst,
        next_hop: dst,
    });
    while let Some(c) = heap.pop() {
        // Skip stale heap entries.
        match routes.get(&c.owner) {
            Some(e) if e.path_len == c.path_len && e.next_hop == c.next_hop => {}
            _ => continue,
        }
        for &p in &topo.adjacency(c.owner).providers {
            let len = c.path_len + 1;
            let accept = match routes.get(&p) {
                None => true,
                Some(e) => e.class == RouteClass::Customer && better(len, c.owner, e),
            };
            if accept {
                routes.insert(
                    p,
                    RouteEntry {
                        class: RouteClass::Customer,
                        path_len: len,
                        next_hop: c.owner,
                    },
                );
                heap.push(Candidate {
                    path_len: len,
                    owner: p,
                    next_hop: c.owner,
                });
            }
        }
    }

    // ---- Phase 2: one peer hop ------------------------------------------
    // Every AS holding a customer route announces it to its peers. A peer
    // route is never re-exported to peers/providers, so this is a single
    // sweep, not a propagation. Collect candidates first to keep the
    // result independent of map iteration order.
    let holders: Vec<(Asn, u32)> = {
        let mut v: Vec<_> = routes
            .iter()
            .filter(|(_, e)| e.class == RouteClass::Customer)
            .map(|(&a, e)| (a, e.path_len))
            .collect();
        v.sort();
        v
    };
    for (owner, len) in holders {
        for &p in &topo.adjacency(owner).peers {
            let cand_len = len + 1;
            let accept = match routes.get(&p) {
                None => true,
                Some(e) => match e.class {
                    RouteClass::Customer => false,
                    RouteClass::Peer => better(cand_len, owner, e),
                    RouteClass::Provider => true, // can't exist yet, but harmless
                },
            };
            if accept {
                routes.insert(
                    p,
                    RouteEntry {
                        class: RouteClass::Peer,
                        path_len: cand_len,
                        next_hop: owner,
                    },
                );
            }
        }
    }

    // ---- Phase 3: routes descend customer links -------------------------
    // Any route (customer, peer, provider) may be exported to customers;
    // provider routes keep descending. Dijkstra downward from every
    // route holder.
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seeds: Vec<(Asn, u32)> = routes.iter().map(|(&a, e)| (a, e.path_len)).collect();
    seeds.sort();
    for (owner, len) in seeds {
        heap.push(Candidate {
            path_len: len,
            owner,
            next_hop: owner, // marker; not used for seeds
        });
    }
    while let Some(c) = heap.pop() {
        match routes.get(&c.owner) {
            Some(e) if e.path_len == c.path_len => {}
            _ => continue,
        }
        for &cust in &topo.adjacency(c.owner).customers {
            let len = c.path_len + 1;
            let accept = match routes.get(&cust) {
                None => true,
                Some(e) => match e.class {
                    RouteClass::Customer | RouteClass::Peer => false,
                    RouteClass::Provider => better(len, c.owner, e),
                },
            };
            if accept {
                routes.insert(
                    cust,
                    RouteEntry {
                        class: RouteClass::Provider,
                        path_len: len,
                        next_hop: c.owner,
                    },
                );
                heap.push(Candidate {
                    path_len: len,
                    owner: cust,
                    next_hop: c.owner,
                });
            }
        }
    }

    RoutingTable {
        destination: dst,
        routes,
    }
}

/// Shortest-path (policy-free) table toward `dst`, used by the
/// `ablation_routing` experiment: identical output shape but ignores
/// business relationships. Comparing against this isolates how much of
/// the relay gain is produced by *policy* inflation.
pub fn compute_table_shortest(topo: &Topology, dst: Asn) -> RoutingTable {
    let mut routes: HashMap<Asn, RouteEntry> = HashMap::new();
    routes.insert(
        dst,
        RouteEntry {
            class: RouteClass::Customer,
            path_len: 0,
            next_hop: dst,
        },
    );
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    heap.push(Candidate {
        path_len: 0,
        owner: dst,
        next_hop: dst,
    });
    while let Some(c) = heap.pop() {
        match routes.get(&c.owner) {
            Some(e) if e.path_len == c.path_len && e.next_hop == c.next_hop => {}
            _ => continue,
        }
        let adj = topo.adjacency(c.owner);
        for &n in adj
            .providers
            .iter()
            .chain(adj.customers.iter())
            .chain(adj.peers.iter())
        {
            let len = c.path_len + 1;
            let accept = match routes.get(&n) {
                None => true,
                Some(e) => better(len, c.owner, e),
            };
            if accept {
                routes.insert(
                    n,
                    RouteEntry {
                        class: RouteClass::Customer,
                        path_len: len,
                        next_hop: c.owner,
                    },
                );
                heap.push(Candidate {
                    path_len: len,
                    owner: n,
                    next_hop: c.owner,
                });
            }
        }
    }
    RoutingTable {
        destination: dst,
        routes,
    }
}

/// Routing mode selector for [`Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Gao–Rexford valley-free routing (the real Internet's behavior).
    #[default]
    ValleyFree,
    /// Unrestricted shortest-path routing (ablation baseline).
    ShortestPath,
}

/// Thread-safe, per-destination-cached route computation over a topology.
pub struct Router<'t> {
    topo: &'t Topology,
    policy: RoutingPolicy,
    cache: RwLock<HashMap<Asn, Arc<RoutingTable>>>,
}

impl<'t> Router<'t> {
    /// Creates a router with valley-free policy.
    pub fn new(topo: &'t Topology) -> Self {
        Self::with_policy(topo, RoutingPolicy::ValleyFree)
    }

    /// Creates a router with an explicit policy (ablations use
    /// [`RoutingPolicy::ShortestPath`]).
    pub fn with_policy(topo: &'t Topology, policy: RoutingPolicy) -> Self {
        Router {
            topo,
            policy,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The topology this router operates on.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Routing table toward `dst`, computed once and cached.
    pub fn table(&self, dst: Asn) -> Arc<RoutingTable> {
        if let Some(t) = self.cache.read().get(&dst) {
            return Arc::clone(t);
        }
        let table = Arc::new(match self.policy {
            RoutingPolicy::ValleyFree => compute_table(self.topo, dst),
            RoutingPolicy::ShortestPath => compute_table_shortest(self.topo, dst),
        });
        self.cache
            .write()
            .entry(dst)
            .or_insert_with(|| Arc::clone(&table));
        // Return the cached instance in case another thread won the race.
        Arc::clone(self.cache.read().get(&dst).expect("just inserted"))
    }

    /// AS path from `src` to `dst`, or `None` if unreachable.
    pub fn as_path(&self, src: Asn, dst: Asn) -> Option<Vec<Asn>> {
        self.table(dst).as_path(src)
    }

    /// Number of cached destination tables (diagnostics).
    pub fn cached_tables(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asys::{AsInfo, AsType};
    use crate::graph::TopologyBuilder;
    use shortcuts_geo::CountryCode;

    fn mk_as(b: &mut TopologyBuilder, asn: u32, t: AsType) {
        b.add_as(AsInfo {
            asn: Asn(asn),
            as_type: t,
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        });
    }

    /// Classic valley topology:
    ///
    /// ```text
    ///        1 (tier1)     2 (tier1)   (1 -- 2 peer)
    ///        |             |
    ///        3 (tier2)     4 (tier2)   (3 -- 4 peer)
    ///        |             |
    ///        5 (stub)      6 (stub)
    /// ```
    fn valley_topology() -> Topology {
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier1);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 4, AsType::Tier2);
        mk_as(&mut b, 5, AsType::Eyeball);
        mk_as(&mut b, 6, AsType::Eyeball);
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(4), Asn(2));
        b.add_transit(Asn(5), Asn(3));
        b.add_transit(Asn(6), Asn(4));
        b.add_peering(Asn(1), Asn(2));
        b.add_peering(Asn(3), Asn(4));
        b.build()
    }

    #[test]
    fn stub_to_stub_uses_peer_shortcut() {
        let t = valley_topology();
        let table = compute_table(&t, Asn(6));
        // 5 -> 3 -> 4 -> 6 (via the 3--4 peering), not via the tier-1s.
        assert_eq!(
            table.as_path(Asn(5)).unwrap(),
            vec![Asn(5), Asn(3), Asn(4), Asn(6)]
        );
    }

    #[test]
    fn no_valley_through_customer() {
        // Without the 3--4 peering, traffic must go over the tier-1 peering;
        // it must NOT route 1 -> 3 -> 4 (provider using a customer as
        // transit to reach a non-customer).
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier1);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 4, AsType::Tier2);
        mk_as(&mut b, 5, AsType::Eyeball);
        mk_as(&mut b, 6, AsType::Eyeball);
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(4), Asn(2));
        b.add_transit(Asn(5), Asn(3));
        b.add_transit(Asn(6), Asn(4));
        b.add_peering(Asn(1), Asn(2));
        // extra "tempting" link: 3 is ALSO a customer of 2.
        b.add_transit(Asn(3), Asn(2));
        let t = b.build();
        let table = compute_table(&t, Asn(6));
        let path = table.as_path(Asn(5)).unwrap();
        assert_eq!(path, vec![Asn(5), Asn(3), Asn(2), Asn(4), Asn(6)]);
        assert_valley_free(&t, &path);
    }

    #[test]
    fn prefers_customer_route_even_if_longer() {
        // Destination 10 is reachable from 1 either via a direct peer link
        // (length 1) or via a chain of customers (length 2). Gao-Rexford
        // prefers the customer route despite being longer.
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 10, AsType::Eyeball);
        b.add_transit(Asn(2), Asn(1)); // 2 customer of 1
        b.add_transit(Asn(10), Asn(2)); // 10 customer of 2
        b.add_peering(Asn(1), Asn(10)); // direct peering 1 -- 10
        let t = b.build();
        let table = compute_table(&t, Asn(10));
        let entry = table.route(Asn(1)).unwrap();
        assert_eq!(entry.class, RouteClass::Customer);
        assert_eq!(entry.path_len, 2);
        assert_eq!(
            table.as_path(Asn(1)).unwrap(),
            vec![Asn(1), Asn(2), Asn(10)]
        );
    }

    #[test]
    fn unreachable_without_any_link() {
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Eyeball);
        mk_as(&mut b, 2, AsType::Eyeball);
        let t = b.build();
        let table = compute_table(&t, Asn(2));
        assert!(table.as_path(Asn(1)).is_none());
        assert_eq!(table.reachable_count(), 1);
    }

    #[test]
    fn destination_reaches_itself_with_empty_path() {
        let t = valley_topology();
        let table = compute_table(&t, Asn(5));
        assert_eq!(table.as_path(Asn(5)).unwrap(), vec![Asn(5)]);
        assert_eq!(table.route(Asn(5)).unwrap().path_len, 0);
    }

    #[test]
    fn peer_route_not_reexported_to_peer() {
        // 1 -- 2 peer, 2 -- 3 peer. 1's route must not reach 3 across two
        // peering hops (no customer in between).
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier2);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 3, AsType::Tier2);
        b.add_peering(Asn(1), Asn(2));
        b.add_peering(Asn(2), Asn(3));
        let t = b.build();
        let table = compute_table(&t, Asn(1));
        assert!(table.route(Asn(2)).is_some());
        assert!(table.route(Asn(3)).is_none(), "valley across two peer hops");
    }

    #[test]
    fn provider_route_descends_multiple_levels() {
        // dst 1 (tier1) -> customer chain 1 <- 2 <- 3 <- 4; all of 2,3,4
        // reach 1 via provider routes.
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 3, AsType::Eyeball);
        mk_as(&mut b, 4, AsType::Enterprise);
        b.add_transit(Asn(2), Asn(1));
        b.add_transit(Asn(3), Asn(2));
        b.add_transit(Asn(4), Asn(3));
        let t = b.build();
        let table = compute_table(&t, Asn(1));
        assert_eq!(table.route(Asn(4)).unwrap().class, RouteClass::Provider);
        assert_eq!(
            table.as_path(Asn(4)).unwrap(),
            vec![Asn(4), Asn(3), Asn(2), Asn(1)]
        );
    }

    #[test]
    fn deterministic_tie_break_lowest_next_hop() {
        // dst 10 has two providers 2 and 3, both customers of 1. Path from
        // 1 to 10 can go via 2 or 3 at equal length; must pick AS2.
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier2);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 10, AsType::Eyeball);
        b.add_transit(Asn(2), Asn(1));
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(10), Asn(2));
        b.add_transit(Asn(10), Asn(3));
        let t = b.build();
        let table = compute_table(&t, Asn(10));
        assert_eq!(
            table.as_path(Asn(1)).unwrap(),
            vec![Asn(1), Asn(2), Asn(10)]
        );
    }

    #[test]
    fn shortest_path_ablation_ignores_policy() {
        let t = valley_topology();
        // Remove-the-policy view: 5 -> 3 -> 4 -> 6 still shortest (3 hops);
        // but in the no-peering variant shortest would cut through
        // customer links freely.
        let table = compute_table_shortest(&t, Asn(6));
        assert_eq!(table.as_path(Asn(5)).unwrap().len(), 4);
        // Everything is reachable ignoring policy.
        assert_eq!(table.reachable_count(), 6);
    }

    #[test]
    fn router_caches_tables() {
        let t = valley_topology();
        let r = Router::new(&t);
        assert_eq!(r.cached_tables(), 0);
        let p1 = r.as_path(Asn(5), Asn(6)).unwrap();
        let p2 = r.as_path(Asn(3), Asn(6)).unwrap();
        assert_eq!(r.cached_tables(), 1);
        assert_eq!(p1.last(), Some(&Asn(6)));
        assert_eq!(p2.last(), Some(&Asn(6)));
    }

    /// Asserts the Gao-Rexford valley-free property along `path`:
    /// a sequence of up (customer->provider) steps, at most one peer
    /// step, then down (provider->customer) steps.
    fn assert_valley_free(t: &Topology, path: &[Asn]) {
        #[derive(PartialEq, PartialOrd)]
        enum Stage {
            Up,
            Peer,
            Down,
        }
        let mut stage = Stage::Up;
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let adj = t.adjacency(a);
            let step = if adj.providers.contains(&b) {
                Stage::Up
            } else if adj.peers.contains(&b) {
                Stage::Peer
            } else if adj.customers.contains(&b) {
                Stage::Down
            } else {
                panic!("path uses non-existent link {a} -> {b}");
            };
            assert!(step >= stage, "valley in path at {a} -> {b}");
            stage = step;
        }
    }

    #[test]
    fn all_paths_in_valley_topology_are_valley_free() {
        let t = valley_topology();
        for dst in [1u32, 2, 3, 4, 5, 6] {
            let table = compute_table(&t, Asn(dst));
            for src in [1u32, 2, 3, 4, 5, 6] {
                if let Some(path) = table.as_path(Asn(src)) {
                    assert_valley_free(&t, &path);
                }
            }
        }
    }
}
