//! Topology churn: deltas, schedules and the copy-on-write link view.
//!
//! The base [`Topology`] is frozen at build time — its CSR adjacency is
//! shared by every router, campaign and sweep, so it can never be
//! mutated in place. Churn is therefore expressed as an **overlay**: a
//! [`TopologyDelta`] names a change relative to the base graph (a link
//! or AS going down, or coming back up), and a [`DeltaView`] accumulates
//! the deltas applied so far into two small masks — the set of
//! currently-masked links and the set of currently-down nodes. Every
//! routing sweep then consults [`DeltaView::allows`] while walking the
//! unchanged base CSR; the base stays immutable and byte-identical
//! across sweeps, and an empty view is free.
//!
//! Because the view can only *mask* base edges (a `LinkUp`/`AsUp`
//! restores masked state, it never invents links the base graph does
//! not have), the CSR remains the universe of edges and all dense
//! [`NodeId`] indexing stays valid across any delta sequence.
//!
//! A [`ChurnSchedule`] maps campaign rounds to delta batches: the batch
//! at round `r` is applied *before* round `r` runs, splitting the
//! campaign into epochs at the batch boundaries. Campaign and sweep
//! runners consume the schedule via [`ChurnSchedule::segments`]; the
//! textual form (`link-down:AS1-AS2@round3`) is what the CLI `--churn`
//! flag and the service protocol's `churn=` option speak.

use crate::graph::Topology;
use crate::ids::{Asn, NodeId};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// One atomic change to the topology, relative to the *base* graph.
///
/// Downs mask base state; ups unmask it. Applying a delta that is
/// already in effect (downing a down link, restoring an up AS) is an
/// idempotent no-op, so schedules compose without bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyDelta {
    /// The link between `a` and `b` (either direction) goes down.
    LinkDown {
        /// One endpoint.
        a: Asn,
        /// The other endpoint.
        b: Asn,
    },
    /// A previously downed base link comes back up.
    LinkUp {
        /// One endpoint.
        a: Asn,
        /// The other endpoint.
        b: Asn,
    },
    /// An AS goes down entirely: all its links stop carrying routes.
    AsDown {
        /// The AS going down.
        asn: Asn,
    },
    /// A previously downed AS comes back up.
    AsUp {
        /// The AS coming back.
        asn: Asn,
    },
}

impl TopologyDelta {
    /// Parses one delta spec, e.g. `link-down:AS1-AS2` or `as-up:AS7`.
    /// The `AS` prefix on numbers is optional.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (kind, rest) = s
            .split_once(':')
            .ok_or_else(|| format!("delta {s:?} missing `:` (want kind:args)"))?;
        let asn = |t: &str| -> Result<Asn, String> {
            let digits = t.strip_prefix("AS").unwrap_or(t);
            digits
                .parse::<u32>()
                .map(Asn)
                .map_err(|_| format!("bad ASN {t:?} in delta {s:?}"))
        };
        let pair = |t: &str| -> Result<(Asn, Asn), String> {
            let (a, b) = t
                .split_once('-')
                .ok_or_else(|| format!("delta {s:?} wants AS<a>-AS<b>"))?;
            Ok((asn(a)?, asn(b)?))
        };
        match kind {
            "link-down" => pair(rest).map(|(a, b)| TopologyDelta::LinkDown { a, b }),
            "link-up" => pair(rest).map(|(a, b)| TopologyDelta::LinkUp { a, b }),
            "as-down" => asn(rest).map(|asn| TopologyDelta::AsDown { asn }),
            "as-up" => asn(rest).map(|asn| TopologyDelta::AsUp { asn }),
            other => Err(format!(
                "unknown delta kind {other:?} (want link-down, link-up, as-down, as-up)"
            )),
        }
    }
}

impl fmt::Display for TopologyDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyDelta::LinkDown { a, b } => write!(f, "link-down:AS{}-AS{}", a.0, b.0),
            TopologyDelta::LinkUp { a, b } => write!(f, "link-up:AS{}-AS{}", a.0, b.0),
            TopologyDelta::AsDown { asn } => write!(f, "as-down:AS{}", asn.0),
            TopologyDelta::AsUp { asn } => write!(f, "as-up:AS{}", asn.0),
        }
    }
}

/// Rounds → delta batches: the batch keyed by round `r` is applied
/// *before* round `r` runs. An empty schedule is the churn-free
/// campaign and costs nothing anywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    batches: BTreeMap<u32, Vec<TopologyDelta>>,
}

impl ChurnSchedule {
    /// The empty (churn-free) schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the schedule holds no deltas at all.
    pub fn is_empty(&self) -> bool {
        self.batches.values().all(|b| b.is_empty())
    }

    /// Appends `delta` to the batch applied before round `round`.
    pub fn add(&mut self, round: u32, delta: TopologyDelta) {
        self.batches.entry(round).or_default().push(delta);
    }

    /// The non-empty batches in round order.
    pub fn batches(&self) -> impl Iterator<Item = (u32, &[TopologyDelta])> {
        self.batches
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(&r, b)| (r, b.as_slice()))
    }

    /// Splits `[0, rounds)` into contiguous epochs at the batch
    /// boundaries: returns `(start_round, end_round, batch)` triples
    /// where `batch` is applied before `start_round` (empty for the
    /// leading epoch). A churn-free schedule yields the single segment
    /// `(0, rounds, [])`, so the no-churn path is structurally
    /// identical to today's single-epoch run.
    pub fn segments(&self, rounds: u32) -> Vec<(u32, u32, &[TopologyDelta])> {
        let mut cuts: Vec<(u32, &[TopologyDelta])> =
            self.batches().filter(|&(r, _)| r < rounds).collect();
        static NO_DELTAS: &[TopologyDelta] = &[];
        if cuts.first().is_none_or(|&(r, _)| r > 0) {
            cuts.insert(0, (0, NO_DELTAS));
        }
        let mut segs = Vec::with_capacity(cuts.len());
        for (i, &(start, batch)) in cuts.iter().enumerate() {
            let end = cuts.get(i + 1).map_or(rounds, |&(r, _)| r);
            segs.push((start, end, batch));
        }
        segs
    }

    /// Parses a comma-separated schedule, e.g.
    /// `link-down:AS1-AS2@round3,as-down:AS5@7`. The `round` prefix on
    /// the round number is optional.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut sched = ChurnSchedule::none();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (delta, round) = part
                .rsplit_once('@')
                .ok_or_else(|| format!("churn spec {part:?} missing `@round<r>`"))?;
            let digits = round.strip_prefix("round").unwrap_or(round);
            let round: u32 = digits
                .parse()
                .map_err(|_| format!("bad round {round:?} in churn spec {part:?}"))?;
            sched.add(round, TopologyDelta::parse(delta)?);
        }
        Ok(sched)
    }

    /// Checks every delta against the base topology: all named ASes
    /// must exist, and link deltas must name *base* links (the view
    /// can only mask and unmask base edges, never invent new ones).
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        for (round, batch) in self.batches() {
            for d in batch {
                let check_as = |asn: Asn| -> Result<(), String> {
                    if topo.node_index().node(asn).is_none() {
                        return Err(format!("churn at round {round}: unknown AS{}", asn.0));
                    }
                    Ok(())
                };
                match *d {
                    TopologyDelta::LinkDown { a, b } | TopologyDelta::LinkUp { a, b } => {
                        check_as(a)?;
                        check_as(b)?;
                        if !topo.are_neighbors(a, b) {
                            return Err(format!(
                                "churn at round {round}: no base link AS{}-AS{}",
                                a.0, b.0
                            ));
                        }
                    }
                    TopologyDelta::AsDown { asn } | TopologyDelta::AsUp { asn } => check_as(asn)?,
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ChurnSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (round, batch) in self.batches() {
            for d in batch {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{d}@round{round}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// The accumulated effect of every delta applied so far: which base
/// links are currently masked and which nodes are currently down.
///
/// Routing sweeps walk the base CSR unchanged and skip edges the view
/// forbids; an empty view forbids nothing, so the churn-free path pays
/// only an `is_empty` check. Cloning is cheap relative to a sweep (two
/// hash sets of the delta footprint, not of the graph).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaView {
    /// Masked base links, keyed `(min, max)` by node id.
    masked: HashSet<(NodeId, NodeId)>,
    /// Nodes currently down (all their links masked implicitly).
    down: HashSet<NodeId>,
}

impl DeltaView {
    /// The view with nothing masked — the base topology itself.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the view masks nothing (routing may skip all checks).
    pub fn is_empty(&self) -> bool {
        self.masked.is_empty() && self.down.is_empty()
    }

    /// Canonical link key.
    fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u.0 <= v.0 {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Whether the base edge `u — v` currently carries routes.
    #[inline]
    pub fn allows(&self, u: NodeId, v: NodeId) -> bool {
        !self.down.contains(&u)
            && !self.down.contains(&v)
            && !self.masked.contains(&Self::key(u, v))
    }

    /// Whether node `u` is currently up.
    #[inline]
    pub fn node_up(&self, u: NodeId) -> bool {
        !self.down.contains(&u)
    }

    /// The masked links (for cache invalidation).
    pub fn masked_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.masked.iter().copied()
    }

    /// The downed nodes (for cache invalidation).
    pub fn down_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.down.iter().copied()
    }

    /// Applies one batch in order, mutating the view. Deltas naming
    /// ASNs unknown to `topo` are ignored (validation rejects them
    /// up front where a loud failure is wanted).
    pub fn apply(&mut self, topo: &Topology, batch: &[TopologyDelta]) {
        let node = |asn: Asn| topo.node_index().node(asn);
        for d in batch {
            match *d {
                TopologyDelta::LinkDown { a, b } => {
                    if let (Some(u), Some(v)) = (node(a), node(b)) {
                        self.masked.insert(Self::key(u, v));
                    }
                }
                TopologyDelta::LinkUp { a, b } => {
                    if let (Some(u), Some(v)) = (node(a), node(b)) {
                        self.masked.remove(&Self::key(u, v));
                    }
                }
                TopologyDelta::AsDown { asn } => {
                    if let Some(u) = node(asn) {
                        self.down.insert(u);
                    }
                }
                TopologyDelta::AsUp { asn } => {
                    if let Some(u) = node(asn) {
                        self.down.remove(&u);
                    }
                }
            }
        }
    }

    /// A new view equal to this one with `batch` applied.
    pub fn applied(&self, topo: &Topology, batch: &[TopologyDelta]) -> Self {
        let mut next = self.clone();
        next.apply(topo, batch);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asys::{AsInfo, AsType};
    use shortcuts_geo::CountryCode;

    fn tiny_topology() -> Topology {
        let mut b = Topology::builder();
        for asn in 1u32..=3 {
            b.add_as(AsInfo {
                asn: Asn(asn),
                as_type: AsType::Tier2,
                home_country: CountryCode::new("US").unwrap(),
                countries: vec![],
                pops: vec![],
                prefixes: vec![],
                user_share: 0.0,
                offers_cloud: false,
            });
        }
        b.add_transit(Asn(2), Asn(1));
        b.add_peering(Asn(2), Asn(3));
        b.build()
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let spec = "link-down:AS1-AS2@round3,as-down:AS5@7,link-up:AS1-AS2@round9,as-up:AS5@9";
        let sched = ChurnSchedule::parse(spec).unwrap();
        assert_eq!(
            sched.to_string(),
            "link-down:AS1-AS2@round3,as-down:AS5@round7,link-up:AS1-AS2@round9,as-up:AS5@round9"
        );
        let again = ChurnSchedule::parse(&sched.to_string()).unwrap();
        assert_eq!(sched, again);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "link-down:AS1-AS2",      // no round
            "link-down:AS1@round3",   // no pair
            "teleport:AS1-AS2@3",     // unknown kind
            "as-down:ASx@3",          // bad ASN
            "link-down:AS1-AS2@soon", // bad round
            "AS1-AS2@3",              // no kind
        ] {
            assert!(ChurnSchedule::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn segments_split_rounds_at_batch_boundaries() {
        let sched = ChurnSchedule::parse("link-down:AS1-AS2@2,link-up:AS1-AS2@5").unwrap();
        let segs = sched.segments(8);
        let shape: Vec<(u32, u32, usize)> = segs.iter().map(|&(s, e, b)| (s, e, b.len())).collect();
        assert_eq!(shape, vec![(0, 2, 0), (2, 5, 1), (5, 8, 1)]);
        // Empty schedule: one segment covering everything.
        let none = ChurnSchedule::none();
        let segs = none.segments(4);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].0, segs[0].1), (0, 4));
        assert!(segs[0].2.is_empty());
        // Batches at or past the end of the campaign never fire.
        let late = ChurnSchedule::parse("as-down:AS1@9").unwrap();
        assert_eq!(late.segments(4).len(), 1);
    }

    #[test]
    fn batch_at_round_zero_leads_the_segments() {
        let sched = ChurnSchedule::parse("as-down:AS3@0").unwrap();
        let segs = sched.segments(3);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].0, segs[0].1), (0, 3));
        assert_eq!(segs[0].2.len(), 1);
    }

    #[test]
    fn validate_wants_known_ases_and_base_links() {
        let topo = tiny_topology();
        assert!(ChurnSchedule::parse("link-down:AS1-AS2@1")
            .unwrap()
            .validate(&topo)
            .is_ok());
        // Unknown AS.
        assert!(ChurnSchedule::parse("as-down:AS9@1")
            .unwrap()
            .validate(&topo)
            .is_err());
        // 1 and 3 are not base neighbors.
        assert!(ChurnSchedule::parse("link-down:AS1-AS3@1")
            .unwrap()
            .validate(&topo)
            .is_err());
    }

    #[test]
    fn view_masks_and_restores_links_and_nodes() {
        let topo = tiny_topology();
        let n = |asn: u32| topo.node_index().node(Asn(asn)).unwrap();
        let mut view = DeltaView::empty();
        assert!(view.is_empty());
        assert!(view.allows(n(1), n(2)));

        view.apply(
            &topo,
            &[TopologyDelta::LinkDown {
                a: Asn(2),
                b: Asn(1),
            }],
        );
        assert!(!view.allows(n(1), n(2)), "masking is direction-free");
        assert!(!view.allows(n(2), n(1)));
        assert!(view.allows(n(2), n(3)));

        view.apply(&topo, &[TopologyDelta::AsDown { asn: Asn(3) }]);
        assert!(!view.allows(n(2), n(3)));
        assert!(!view.node_up(n(3)));

        // Idempotent re-application changes nothing.
        let snapshot = view.clone();
        view.apply(
            &topo,
            &[
                TopologyDelta::LinkDown {
                    a: Asn(1),
                    b: Asn(2),
                },
                TopologyDelta::AsDown { asn: Asn(3) },
            ],
        );
        assert_eq!(view, snapshot);

        view.apply(
            &topo,
            &[
                TopologyDelta::LinkUp {
                    a: Asn(1),
                    b: Asn(2),
                },
                TopologyDelta::AsUp { asn: Asn(3) },
            ],
        );
        assert!(view.is_empty(), "restoring everything empties the view");
    }
}
