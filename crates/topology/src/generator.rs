//! Seeded random topology generation.
//!
//! The generator builds an Internet-like AS graph embedded in the city
//! database:
//!
//! - A small clique of **tier-1** backbones with PoPs on every continent.
//! - Regional **tier-2** transits with continental footprints, buying
//!   transit from 1–3 tier-1s and peering with other tier-2s they meet at
//!   facilities.
//! - Per-country **eyeball** ISPs with domestic footprints (a few large
//!   ones also reach the nearest hub metro), buying transit from
//!   regional tier-2s. Their user shares drive the synthetic APNIC
//!   dataset of §2.1.
//! - Global **content/cloud** providers at hub metros, peering widely.
//! - Stub **enterprise** networks (APNIC noise, never eyeballs).
//! - **Research** networks hosting PlanetLab sites.
//! - **Facilities** at hub metros (flagships with hundreds of members,
//!   mirroring the paper's Table 1) and a long tail of regional sites;
//!   **IXPs** inside them.
//! - **Peering links** created where networks meet: co-membership at a
//!   facility or IXP is what makes peering possible, which is exactly the
//!   "Colos concentrate interconnection" premise of the paper.
//!
//! Everything is driven by a single `u64` seed through `StdRng`, so any
//! topology is exactly reproducible.

use crate::asys::{AsInfo, AsType};
use crate::graph::{Topology, TopologyBuilder};
use crate::ids::{Asn, FacilityId};
use crate::ip::IpAllocator;
use rand::prelude::*;
use rand::rngs::StdRng;
use shortcuts_geo::{CityDb, CityId, Continent};
use std::collections::{HashMap, HashSet};

/// Knobs of the topology generator.
///
/// The two presets are [`TopologyConfig::paper_scale`] (default; big
/// enough that the measurement campaign has the paper's diversity) and
/// [`TopologyConfig::small`] (fast unit-test scale).
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of tier-1 backbone ASes (fully meshed via peering).
    pub n_tier1: usize,
    /// Number of tier-2 regional transit ASes.
    pub n_tier2: usize,
    /// Min/max eyeball ASes generated per country.
    pub eyeballs_per_country: (usize, usize),
    /// Number of global content/cloud ASes (hub footprints).
    pub n_content: usize,
    /// Probability that a country gets a national hosting/cloud
    /// provider (content-type AS homed in-country, colocated at the
    /// local facility). These are the "core" networks where RIPE Atlas
    /// keeps its strong non-eyeball deployment.
    pub local_hosting_prob: f64,
    /// Number of stub enterprise ASes.
    pub n_enterprise: usize,
    /// Number of research/NREN ASes.
    pub n_research: usize,
    /// PoP cities per tier-1 (sampled from all cities, hubs always in).
    pub tier1_pops: usize,
    /// Min/max PoP cities per tier-2 (within its home continent).
    pub tier2_pops: (usize, usize),
    /// Min/max PoP cities per content AS (hub-biased).
    pub content_pops: (usize, usize),
    /// Probability that a large eyeball also gets a PoP at the nearest
    /// hub metro (possibly abroad) — this is what puts some eyeballs
    /// into big colos.
    pub eyeball_hub_presence: f64,
    /// Number of facilities at each hub city (flagship metros get the
    /// max of the range).
    pub facilities_per_hub: (usize, usize),
    /// Fraction of non-hub facility-eligible cities that get one small
    /// facility.
    pub small_facility_fraction: f64,
    /// Probability that an AS with a PoP in a facility's city joins the
    /// facility, by AS type (indexed by [`AsType`] order in `ALL`).
    pub facility_join_prob: [f64; 6],
    /// Peering probability for a pair of co-located (same facility or
    /// IXP) ASes, by unordered type pair; see [`peer_prob`].
    pub peering_scale: f64,
    /// Peering probability inside the global research/NREN mesh
    /// (GEANT/Internet2 style). [`TopologyConfig::scaled`] divides it
    /// by the scale factor so per-AS mesh degree stays constant as the
    /// research population grows.
    pub research_mesh_prob: f64,
    /// Prefixes originated per AS: min/max.
    pub prefixes_per_as: (usize, usize),
}

impl TopologyConfig {
    /// Full-size configuration used by the paper-reproduction campaign.
    pub fn paper_scale() -> Self {
        TopologyConfig {
            n_tier1: 12,
            n_tier2: 90,
            eyeballs_per_country: (3, 6),
            n_content: 140,
            local_hosting_prob: 0.8,
            n_enterprise: 320,
            n_research: 70,
            tier1_pops: 40,
            tier2_pops: (5, 14),
            content_pops: (5, 22),
            eyeball_hub_presence: 0.25,
            facilities_per_hub: (1, 3),
            small_facility_fraction: 0.35,
            // Tier1, Tier2, Eyeball, Content, Enterprise, Research
            facility_join_prob: [0.95, 0.85, 0.45, 0.9, 0.12, 0.35],
            peering_scale: 1.0,
            research_mesh_prob: 0.35,
            prefixes_per_as: (1, 3),
        }
    }

    /// A [`paper_scale`](Self::paper_scale) world inflated by `factor`
    /// (≥ 1) — the internet-scale preset the `memory_budget` bench
    /// sweeps under byte budgets.
    ///
    /// Populations that the paper treats as "the long tail" grow
    /// linearly (tier-2 transits, content, enterprises, research, and
    /// per-country eyeballs); the tier-1 clique grows with the square
    /// root (backbones consolidate, they don't multiply); and both
    /// peering probabilities are divided by `factor` so the *expected
    /// per-AS peering degree* — and with it the routed graph's density
    /// and the per-destination routing-table footprint — stays roughly
    /// constant while AS count scales. Without that inverse scaling a
    /// 100× world would have 100× the co-members per facility *and*
    /// the same per-pair probability, i.e. a 10,000× edge blow-up.
    pub fn scaled(factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "scaled() inflates paper_scale; factor must be finite and >= 1"
        );
        let base = Self::paper_scale();
        let lin = |n: usize| ((n as f64) * factor).round().max(1.0) as usize;
        TopologyConfig {
            n_tier1: ((base.n_tier1 as f64) * factor.sqrt()).round() as usize,
            n_tier2: lin(base.n_tier2),
            eyeballs_per_country: (
                lin(base.eyeballs_per_country.0),
                lin(base.eyeballs_per_country.1),
            ),
            n_content: lin(base.n_content),
            n_enterprise: lin(base.n_enterprise),
            n_research: lin(base.n_research),
            peering_scale: base.peering_scale / factor,
            research_mesh_prob: base.research_mesh_prob / factor,
            ..base
        }
    }

    /// Small, fast configuration for unit tests (~200 ASes).
    pub fn small() -> Self {
        TopologyConfig {
            n_tier1: 4,
            n_tier2: 16,
            eyeballs_per_country: (1, 1),
            n_content: 24,
            local_hosting_prob: 0.8,
            n_enterprise: 30,
            n_research: 12,
            tier1_pops: 25,
            tier2_pops: (4, 8),
            content_pops: (4, 10),
            eyeball_hub_presence: 0.25,
            facilities_per_hub: (1, 2),
            small_facility_fraction: 0.2,
            facility_join_prob: [0.95, 0.85, 0.45, 0.9, 0.12, 0.35],
            peering_scale: 1.0,
            research_mesh_prob: 0.35,
            prefixes_per_as: (1, 2),
        }
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig::paper_scale()
    }
}

/// Base peering probability for an unordered pair of AS types meeting at
/// a facility or IXP. Tier-1s never open peering here (their clique is
/// explicit); enterprises barely peer.
pub fn peer_prob(a: AsType, b: AsType) -> f64 {
    use AsType::*;
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    match (x, y) {
        (Tier1, _) => 0.0,
        (Tier2, Tier2) => 0.35,
        (Tier2, Eyeball) => 0.30,
        (Tier2, Content) => 0.45,
        (Tier2, Research) => 0.45,
        (Tier2, Enterprise) => 0.05,
        (Eyeball, Eyeball) => 0.15,
        (Eyeball, Content) => 0.55,
        (Eyeball, Research) => 0.10,
        (Eyeball, Enterprise) => 0.03,
        (Content, Content) => 0.65,
        (Content, Research) => 0.40,
        (Content, Enterprise) => 0.08,
        (Enterprise, Enterprise) => 0.02,
        (Enterprise, Research) => 0.03,
        (Research, Research) => 0.50,
        // Unreachable: (x, y) is normalized so x <= y.
        _ => 0.0,
    }
}

fn type_index(t: AsType) -> usize {
    AsType::ALL.iter().position(|&x| x == t).expect("in ALL")
}

/// Internal state while generating.
struct Gen<'c> {
    cfg: &'c TopologyConfig,
    rng: StdRng,
    next_asn: u32,
    alloc: IpAllocator,
}

impl<'c> Gen<'c> {
    fn fresh_asn(&mut self) -> Asn {
        let a = Asn(self.next_asn);
        self.next_asn += 1;
        a
    }

    fn new_as(
        &mut self,
        b: &mut TopologyBuilder,
        as_type: AsType,
        home_city: CityId,
        user_share: f64,
        offers_cloud: bool,
    ) -> Asn {
        let asn = self.fresh_asn();
        let home_country = b.cities().get(home_city).country;
        let n_pref = self
            .rng
            .gen_range(self.cfg.prefixes_per_as.0..=self.cfg.prefixes_per_as.1);
        let prefixes = (0..n_pref).map(|_| self.alloc.alloc_prefix()).collect();
        b.add_as(AsInfo {
            asn,
            as_type,
            home_country,
            countries: vec![],
            pops: vec![],
            prefixes,
            user_share,
            offers_cloud,
        });
        asn
    }
}

/// City ids grouped by continent, for regional footprint sampling.
fn cities_by_continent(db: &CityDb) -> HashMap<Continent, Vec<CityId>> {
    let mut m: HashMap<Continent, Vec<CityId>> = HashMap::new();
    for c in db.iter() {
        m.entry(c.continent).or_default().push(c.id);
    }
    m
}

/// Nearest hub metro to `from`, memoized: the generator asks this for
/// every large eyeball, national hoster and research network, and at
/// scaled sizes those repeat the same handful of home cities
/// thousands of times. Pure geometry — no RNG — so caching cannot
/// perturb the generation stream.
fn nearest_hub(
    cache: &mut HashMap<CityId, CityId>,
    b: &TopologyBuilder,
    hubs: &[CityId],
    from: CityId,
) -> Option<CityId> {
    if let Some(&h) = cache.get(&from) {
        return Some(h);
    }
    let here = b.cities().get(from).location;
    let best = hubs.iter().copied().min_by(|&x, &y| {
        let dx = b.cities().get(x).location.distance_km(&here);
        let dy = b.cities().get(y).location.distance_km(&here);
        dx.partial_cmp(&dy).expect("finite")
    })?;
    cache.insert(from, best);
    Some(best)
}

/// Member count from which pair sampling switches to the sparse
/// geometric-skip path. The presets top out near ~90 members per
/// facility (and ~70 research networks), so they always take the
/// dense walk and keep their RNG stream — and every generated
/// topology — bit-identical; only [`TopologyConfig::scaled`] worlds
/// cross this line.
const SPARSE_PAIRS_MIN: usize = 512;

/// Visits candidate pairs `(i, j)`, `i < j < n`, where each pair
/// survives an independent Bernoulli(`p_max`) draw — in O(expected
/// candidates) RNG draws instead of O(n²).
///
/// Walks the row-major upper triangle with geometric skips: the gap
/// until the next success of a Bernoulli(`p_max`) stream is
/// `floor(ln(u) / ln(1 - p_max))`. Callers whose per-pair probability
/// varies (facility peering: it depends on the AS-type pair) pass the
/// *maximum* probability as `p_max` and thin inside `hit` by
/// accepting with `p_pair / p_max` — rejection sampling, exactly
/// Bernoulli(`p_pair`) per pair. Callers with constant probability
/// (the research mesh) pass it directly and accept every hit.
fn bernoulli_pairs_sparse<R: Rng>(
    rng: &mut R,
    n: usize,
    p_max: f64,
    mut hit: impl FnMut(&mut R, usize, usize),
) {
    if n < 2 || p_max <= 0.0 {
        return;
    }
    debug_assert!(p_max < 1.0, "p_max >= 1 should take the dense walk");
    let total = (n as u64) * (n as u64 - 1) / 2;
    let ln_q = (1.0 - p_max).ln();
    let mut k: u64 = 0; // next unexamined candidate index
    let mut row = 0usize; // current i
    let mut row_start: u64 = 0; // candidate index of (row, row + 1)
    loop {
        // u in (0, 1]: gen() is [0, 1) and ln(0) must not happen.
        let u: f64 = 1.0 - rng.gen_range(0.0_f64..1.0);
        let skip = (u.ln() / ln_q).floor();
        k = k.saturating_add(if skip >= total as f64 {
            total
        } else {
            skip as u64
        });
        if k >= total {
            return;
        }
        // k is monotone, so the row pointer only ever advances: O(n)
        // row-location work across the whole call.
        while k >= row_start + (n - 1 - row) as u64 {
            row_start += (n - 1 - row) as u64;
            row += 1;
        }
        let j = row + 1 + (k - row_start) as usize;
        hit(rng, row, j);
        k += 1;
    }
}

impl Topology {
    /// Generates a topology from `config` with the given `seed`.
    ///
    /// The same `(config, seed)` pair always produces an identical
    /// topology.
    pub fn generate(config: &TopologyConfig, seed: u64) -> Topology {
        let mut b = Topology::builder();
        let mut g = Gen {
            cfg: config,
            rng: StdRng::seed_from_u64(seed),
            next_asn: 100,
            alloc: IpAllocator::default(),
        };

        let all_cities: Vec<CityId> = b.cities().iter().map(|c| c.id).collect();
        let hubs: Vec<CityId> = b.cities().hubs();
        let by_continent = cities_by_continent(b.cities());
        let countries = b.cities().countries();
        // Reused scratch buffers: at scaled sizes the per-AS loops
        // below run tens of thousands of times, and a fresh Vec per
        // iteration is pure allocator churn. Contents and order are
        // identical to the per-iteration allocations they replace, so
        // every shuffle consumes the same RNG stream.
        let mut city_scratch: Vec<CityId> = Vec::with_capacity(all_cities.len());
        let mut asn_scratch: Vec<Asn> = Vec::new();
        let mut hub_cache: HashMap<CityId, CityId> = HashMap::new();

        // ---- Tier-1 backbones -------------------------------------------
        // The non-hub pool is loop-invariant; hoist it (with a set for
        // the membership test `all_cities × hubs` would otherwise pay).
        let hub_set: std::collections::HashSet<CityId> = hubs.iter().copied().collect();
        let nonhub_cities: Vec<CityId> = all_cities
            .iter()
            .copied()
            .filter(|c| !hub_set.contains(c))
            .collect();
        let mut tier1s = Vec::with_capacity(config.n_tier1);
        for _ in 0..config.n_tier1 {
            let home = *hubs.choose(&mut g.rng).expect("hubs exist");
            let asn = g.new_as(&mut b, AsType::Tier1, home, 0.0, false);
            // All hubs + random extra cities.
            let extra = config.tier1_pops.saturating_sub(hubs.len());
            city_scratch.clear();
            city_scratch.extend_from_slice(&nonhub_cities);
            city_scratch.shuffle(&mut g.rng);
            for &c in hubs.iter().chain(city_scratch.iter().take(extra)) {
                b.add_pop(asn, c);
            }
            tier1s.push(asn);
        }
        // Full tier-1 peering clique.
        for i in 0..tier1s.len() {
            for j in (i + 1)..tier1s.len() {
                b.add_peering(tier1s[i], tier1s[j]);
            }
        }

        // ---- Tier-2 regional transits ------------------------------------
        // Spread across continents proportionally to city count.
        let mut tier2s: Vec<Asn> = Vec::with_capacity(config.n_tier2);
        let mut tier2_by_continent: HashMap<Continent, Vec<Asn>> = HashMap::new();
        let continents: Vec<Continent> = Continent::ALL.to_vec();
        // The continent weights never change mid-generation; build the
        // weighted sampler once instead of per tier-2.
        let weighted_continent = rand::distributions::WeightedIndex::new(
            continents
                .iter()
                .map(|c| by_continent.get(c).map_or(0, |v| v.len()).max(1)),
        )
        .expect("weights nonzero");
        for i in 0..config.n_tier2 {
            // Deterministic round-robin weighted by city counts; every
            // 3rd pick is weighted-random.
            let cont = if i % 3 == 0 {
                continents[weighted_continent.sample(&mut g.rng)]
            } else {
                continents[i % continents.len()]
            };
            let pool = by_continent.get(&cont).expect("continent has cities");
            let n_pops = g
                .rng
                .gen_range(config.tier2_pops.0..=config.tier2_pops.1)
                .min(pool.len());
            city_scratch.clear();
            city_scratch.extend_from_slice(pool);
            city_scratch.shuffle(&mut g.rng);
            city_scratch.truncate(n_pops);
            // Ensure at least one hub PoP in-continent if the continent
            // has one: tier-2s interconnect at hubs.
            if let Some(&hub) = pool.iter().find(|c| b.cities().get(**c).is_hub) {
                if !city_scratch.contains(&hub) {
                    city_scratch.push(hub);
                }
            }
            let home = city_scratch[0];
            let cloud = g.rng.gen_bool(0.15);
            let asn = g.new_as(&mut b, AsType::Tier2, home, 0.0, cloud);
            for &c in &city_scratch {
                b.add_pop(asn, c);
            }
            let n_prov = g.rng.gen_range(1..=3.min(tier1s.len()));
            asn_scratch.clear();
            asn_scratch.extend_from_slice(&tier1s);
            asn_scratch.shuffle(&mut g.rng);
            for &p in asn_scratch.iter().take(n_prov) {
                b.add_transit(asn, p);
            }
            tier2_by_continent.entry(cont).or_default().push(asn);
            tier2s.push(asn);
        }

        // ---- Eyeball ISPs per country -------------------------------------
        let mut eyeballs: Vec<Asn> = Vec::new();
        for &country in &countries {
            let domestic: Vec<CityId> = b.cities().in_country(country).to_vec();
            if domestic.is_empty() {
                continue;
            }
            let continent = b.cities().get(domestic[0]).continent;
            let n = g
                .rng
                .gen_range(config.eyeballs_per_country.0..=config.eyeballs_per_country.1);
            // Broken-stick user shares: first eyeball is the incumbent.
            let mut remaining = 0.92; // some users are on enterprise/mobile noise
            for k in 0..n {
                let share = if k == n - 1 {
                    remaining * g.rng.gen_range(0.6..0.95)
                } else {
                    remaining * g.rng.gen_range(0.35..0.7)
                };
                remaining -= share;
                let home = *domestic.choose(&mut g.rng).expect("non-empty");
                let asn = g.new_as(&mut b, AsType::Eyeball, home, share, false);
                // Domestic footprint: all domestic cities (countries are
                // small in the DB; at most a handful of cities).
                for &c in &domestic {
                    b.add_pop(asn, c);
                }
                // Large eyeballs reach the nearest hub metro.
                if share > 0.2 && g.rng.gen_bool(config.eyeball_hub_presence) {
                    if let Some(hub) = nearest_hub(&mut hub_cache, &b, &hubs, home) {
                        b.add_pop(asn, hub);
                    }
                }
                // Providers: 1-2 tier-2s on the continent (fallback tier-1).
                let regional = tier2_by_continent.get(&continent);
                let n_prov = g.rng.gen_range(1..=2);
                let mut picked = 0;
                if let Some(regional) = regional {
                    asn_scratch.clear();
                    asn_scratch.extend_from_slice(regional);
                    asn_scratch.shuffle(&mut g.rng);
                    for &p in asn_scratch.iter().take(n_prov) {
                        b.add_transit(asn, p);
                        picked += 1;
                    }
                }
                if picked == 0 {
                    b.add_transit(asn, *tier1s.choose(&mut g.rng).expect("tier1s"));
                }
                // Big eyeballs sometimes buy direct tier-1 transit too.
                if share > 0.3 && g.rng.gen_bool(0.3) {
                    b.add_transit(asn, *tier1s.choose(&mut g.rng).expect("tier1s"));
                }
                eyeballs.push(asn);
            }
        }

        // ---- Content / cloud providers -------------------------------------
        let mut contents: Vec<Asn> = Vec::new();
        for _ in 0..config.n_content {
            let n_pops = g
                .rng
                .gen_range(config.content_pops.0..=config.content_pops.1)
                .min(hubs.len());
            let mut cities: Vec<CityId> = hubs.clone();
            cities.shuffle(&mut g.rng);
            cities.truncate(n_pops);
            // Some content providers also sit at a few non-hub cities.
            if g.rng.gen_bool(0.4) {
                if let Some(&extra) = all_cities.choose(&mut g.rng) {
                    if !cities.contains(&extra) {
                        cities.push(extra);
                    }
                }
            }
            let home = cities[0];
            let cloud = g.rng.gen_bool(0.6);
            let asn = g.new_as(&mut b, AsType::Content, home, 0.0, cloud);
            for &c in &cities {
                b.add_pop(asn, c);
            }
            let n_prov = g.rng.gen_range(1..=2);
            for _ in 0..n_prov {
                let p = if g.rng.gen_bool(0.5) {
                    *tier1s.choose(&mut g.rng).expect("tier1s")
                } else {
                    *tier2s.choose(&mut g.rng).expect("tier2s")
                };
                b.add_transit(asn, p);
            }
            contents.push(asn);
        }

        // ---- National hosting/cloud providers --------------------------------
        // One per country (with probability): domestic footprint plus the
        // nearest hub metro, multihomed to regional transit. These are
        // the well-connected in-country networks that make RAR_other
        // relays strong in the paper.
        for &country in &countries {
            if !g.rng.gen_bool(config.local_hosting_prob) {
                continue;
            }
            let domestic: Vec<CityId> = b.cities().in_country(country).to_vec();
            if domestic.is_empty() {
                continue;
            }
            let continent = b.cities().get(domestic[0]).continent;
            let home = *domestic.choose(&mut g.rng).expect("non-empty");
            let asn = g.new_as(&mut b, AsType::Content, home, 0.0, true);
            for &c in &domestic {
                b.add_pop(asn, c);
            }
            // Reach the nearest hub metro for interconnection.
            if let Some(hub) = nearest_hub(&mut hub_cache, &b, &hubs, home) {
                b.add_pop(asn, hub);
            }
            let n_prov = g.rng.gen_range(1..=2);
            let mut picked = 0;
            if let Some(regional) = tier2_by_continent.get(&continent) {
                asn_scratch.clear();
                asn_scratch.extend_from_slice(regional);
                asn_scratch.shuffle(&mut g.rng);
                for &p in asn_scratch.iter().take(n_prov) {
                    b.add_transit(asn, p);
                    picked += 1;
                }
            }
            if picked == 0 {
                b.add_transit(asn, *tier1s.choose(&mut g.rng).expect("tier1s"));
            }
            contents.push(asn);
        }

        // ---- Enterprise stubs ----------------------------------------------
        for _ in 0..config.n_enterprise {
            let home = b.cities().sample_weighted(&mut g.rng);
            // Tiny noise user share so the APNIC table has non-eyeball rows.
            let share = g.rng.gen_range(0.0..0.02);
            let asn = g.new_as(&mut b, AsType::Enterprise, home, share, false);
            b.add_pop(asn, home);
            let continent = b.cities().get(home).continent;
            let provider = tier2_by_continent
                .get(&continent)
                .and_then(|v| v.choose(&mut g.rng).copied())
                .unwrap_or_else(|| *tier1s.choose(&mut g.rng).expect("tier1s"));
            b.add_transit(asn, provider);
        }

        // ---- Research / NREN networks ----------------------------------------
        let mut researches: Vec<Asn> = Vec::new();
        for _ in 0..config.n_research {
            let home = b.cities().sample_weighted(&mut g.rng);
            let asn = g.new_as(&mut b, AsType::Research, home, 0.0, false);
            b.add_pop(asn, home);
            // The NREN backbone usually reaches the nearest exchange
            // metro, where research networks peer.
            if g.rng.gen_bool(0.7) {
                if let Some(hub) = nearest_hub(&mut hub_cache, &b, &hubs, home) {
                    b.add_pop(asn, hub);
                }
            }
            let continent = b.cities().get(home).continent;
            let provider = tier2_by_continent
                .get(&continent)
                .and_then(|v| v.choose(&mut g.rng).copied())
                .unwrap_or_else(|| *tier1s.choose(&mut g.rng).expect("tier1s"));
            b.add_transit(asn, provider);
            researches.push(asn);
        }
        // NREN backbone: research networks peer densely with each other
        // (GEANT/Internet2-style mesh). Scaled worlds divide the mesh
        // probability by the factor, so expected candidates stay O(n)
        // and the geometric-skip walk visits only the hits.
        if researches.len() >= SPARSE_PAIRS_MIN && config.research_mesh_prob < 1.0 {
            bernoulli_pairs_sparse(
                &mut g.rng,
                researches.len(),
                config.research_mesh_prob,
                |_, i, j| {
                    b.add_peering(researches[i], researches[j]);
                },
            );
        } else {
            for i in 0..researches.len() {
                for j in (i + 1)..researches.len() {
                    if g.rng.gen_bool(config.research_mesh_prob) {
                        b.add_peering(researches[i], researches[j]);
                    }
                }
            }
        }

        // ---- Facilities -------------------------------------------------------
        // Flagship + regular facilities at hub cities, small facilities at a
        // fraction of other cities that host at least a few PoPs.
        let mut facility_ids: Vec<FacilityId> = Vec::new();
        for &hub in &hubs {
            let n_fac = g
                .rng
                .gen_range(config.facilities_per_hub.0..=config.facilities_per_hub.1);
            for k in 0..n_fac {
                let name = format!("Colo-{}-{}", b.cities().get(hub).name, k);
                let id = b.add_facility(name, hub, g.rng.gen_bool(0.8));
                facility_ids.push(id);
            }
        }
        for &city in &all_cities {
            if b.cities().get(city).is_hub {
                continue;
            }
            if g.rng.gen_bool(config.small_facility_fraction) {
                let name = format!("Colo-{}-0", b.cities().get(city).name);
                let id = b.add_facility(name, city, g.rng.gen_bool(0.35));
                facility_ids.push(id);
            }
        }

        // ---- Facility membership ----------------------------------------------
        // An AS joins a facility if it has a PoP in the city, with a
        // type-dependent probability. Collect (facility, member) pairs
        // first to placate the borrow checker.
        let mut memberships: Vec<(FacilityId, Asn)> = Vec::new();
        {
            // Snapshot of AS list (asn, type, pop city set).
            let snapshot: Vec<(Asn, AsType, Vec<CityId>)> = b.ases_snapshot();
            // Invert once: city -> snapshot indices of ASes with a PoP
            // there. Deduped per AS (an AS listing a city twice still
            // joins at most once — same semantics as the `contains`
            // scan this replaces), and each city's list stays in
            // snapshot order, so the gen_bool stream is identical to
            // the old facilities × ASes walk while costing a lookup
            // per facility instead of a full scan.
            let mut by_city: HashMap<CityId, Vec<usize>> = HashMap::new();
            let mut seen: HashSet<CityId> = HashSet::new();
            for (idx, (_, _, cities)) in snapshot.iter().enumerate() {
                seen.clear();
                for &c in cities {
                    if seen.insert(c) {
                        by_city.entry(c).or_default().push(idx);
                    }
                }
            }
            for &fid in &facility_ids {
                let fcity = b.facility_city(fid);
                let Some(idxs) = by_city.get(&fcity) else {
                    continue;
                };
                for &idx in idxs {
                    let (asn, t, _) = &snapshot[idx];
                    let p = config.facility_join_prob[type_index(*t)];
                    if g.rng.gen_bool(p) {
                        memberships.push((fid, *asn));
                    }
                }
            }
        }
        for (fid, asn) in &memberships {
            b.add_facility_member(*fid, *asn);
        }

        // ---- IXPs ---------------------------------------------------------------
        // One IXP per facility city; hub cities with several facilities get
        // an IXP spanning all of them plus possibly a second one.
        let mut city_facilities: HashMap<CityId, Vec<FacilityId>> = HashMap::new();
        for &fid in &facility_ids {
            city_facilities
                .entry(b.facility_city(fid))
                .or_default()
                .push(fid);
        }
        let mut city_list: Vec<(CityId, Vec<FacilityId>)> = city_facilities.into_iter().collect();
        city_list.sort_by_key(|(c, _)| *c);
        let mut member_set: HashSet<Asn> = HashSet::new();
        let mut member_scratch: Vec<Asn> = Vec::new();
        for (city, fids) in &city_list {
            let n_ixps = if fids.len() >= 2 && g.rng.gen_bool(0.5) {
                2
            } else {
                1
            };
            for k in 0..n_ixps {
                let name = format!("IX-{}-{}", b.cities().get(*city).name, k);
                let ixp = b.add_ixp(name, *city, fids.clone());
                // Members: facility members join the local fabric w.p.
                // 0.7. The set mirrors the short-circuit `contains`
                // test it replaces — an AS already admitted draws no
                // further, one rejected at an earlier facility draws
                // again at the next — in O(1) instead of O(members).
                member_set.clear();
                member_scratch.clear();
                for &fid in fids {
                    for asn in b.facility_members(fid) {
                        if !member_set.contains(&asn) && g.rng.gen_bool(0.7) {
                            member_set.insert(asn);
                            member_scratch.push(asn);
                        }
                    }
                }
                for &m in &member_scratch {
                    b.add_ixp_member(ixp, m);
                }
            }
        }

        // ---- Peering at shared facilities/IXPs ------------------------------------
        // For each facility, co-members peer with type-dependent probability.
        let mut peerings: Vec<(Asn, Asn)> = Vec::new();
        {
            let type_of: HashMap<Asn, AsType> = b
                .ases_snapshot()
                .into_iter()
                .map(|(a, t, _)| (a, t))
                .collect();
            // Envelope for the sparse walk: the largest entry in the
            // peer_prob table, scaled. Every per-pair probability is
            // <= this, so thinning a Bernoulli(p_max) stream by
            // p / p_max reproduces Bernoulli(p) exactly.
            let p_max = AsType::ALL
                .iter()
                .flat_map(|&x| AsType::ALL.iter().map(move |&y| peer_prob(x, y)))
                .fold(0.0_f64, f64::max)
                * config.peering_scale;
            for &fid in &facility_ids {
                let members = b.facility_members(fid);
                if members.len() >= SPARSE_PAIRS_MIN && p_max < 1.0 {
                    bernoulli_pairs_sparse(&mut g.rng, members.len(), p_max, |rng, i, j| {
                        let (x, y) = (members[i], members[j]);
                        let p = peer_prob(type_of[&x], type_of[&y]) * config.peering_scale;
                        if p > 0.0 && rng.gen_bool(p / p_max) {
                            peerings.push((x, y));
                        }
                    });
                } else {
                    for i in 0..members.len() {
                        for j in (i + 1)..members.len() {
                            let (x, y) = (members[i], members[j]);
                            let p = peer_prob(type_of[&x], type_of[&y]) * config.peering_scale;
                            if p > 0.0 && g.rng.gen_bool(p.min(1.0)) {
                                peerings.push((x, y));
                            }
                        }
                    }
                }
            }
        }
        for (x, y) in peerings {
            b.add_peering(x, y);
        }

        b.build()
    }
}

// Small accessor shims used by the generator (the builder fields are
// private to keep invariants; these expose read-only snapshots).
impl TopologyBuilder {
    /// Snapshot of (asn, type, PoP city list) for all registered ASes.
    pub fn ases_snapshot(&self) -> Vec<(Asn, AsType, Vec<CityId>)> {
        self.snapshot_impl()
    }

    /// City of a facility registered on this builder.
    pub fn facility_city(&self, id: FacilityId) -> CityId {
        self.facility_city_impl(id)
    }

    /// Members of a facility registered on this builder.
    pub fn facility_members(&self, id: FacilityId) -> Vec<Asn> {
        self.facility_members_impl(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;

    #[test]
    fn sparse_pair_sampling_matches_bernoulli_statistics() {
        let n = 600;
        let p = 0.01;
        let total = (n * (n - 1) / 2) as f64;
        let mut hits = 0u64;
        let mut last = (0usize, 0usize);
        let mut rng = StdRng::seed_from_u64(5);
        bernoulli_pairs_sparse(&mut rng, n, p, |_, i, j| {
            assert!(i < j && j < n, "pair ({i},{j}) out of triangle");
            assert!((i, j) > last, "pairs must arrive in row-major order");
            last = (i, j);
            hits += 1;
        });
        let expect = total * p;
        let sd = (total * p * (1.0 - p)).sqrt();
        assert!(
            (hits as f64 - expect).abs() < 6.0 * sd,
            "sparse walk produced {hits} hits, expected ~{expect:.0} (sd {sd:.1})"
        );
    }

    #[test]
    fn sparse_pair_sampling_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        // n < 2 and p <= 0 both visit nothing.
        bernoulli_pairs_sparse(&mut rng, 1, 0.5, |_, _, _| panic!("no pairs for n=1"));
        bernoulli_pairs_sparse(&mut rng, 100, 0.0, |_, _, _| panic!("no pairs for p=0"));
        // Tiny n still covers the whole triangle eventually.
        let mut seen = Vec::new();
        bernoulli_pairs_sparse(&mut rng, 3, 0.999, |_, i, j| seen.push((i, j)));
        assert!(seen.iter().all(|&(i, j)| i < j && j < 3));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TopologyConfig::small();
        let t1 = Topology::generate(&cfg, 7);
        let t2 = Topology::generate(&cfg, 7);
        assert_eq!(t1.as_count(), t2.as_count());
        assert_eq!(t1.link_count(), t2.link_count());
        assert_eq!(t1.facilities().len(), t2.facilities().len());
        // Spot-check some AS records match.
        for (a, b) in t1.ases().iter().zip(t2.ases().iter()) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.as_type, b.as_type);
            assert_eq!(a.pops.len(), b.pops.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TopologyConfig::small();
        let t1 = Topology::generate(&cfg, 1);
        let t2 = Topology::generate(&cfg, 2);
        // Different wiring (AS counts may also differ slightly because
        // national hosting providers are per-country probabilistic).
        assert_ne!(t1.link_count(), t2.link_count());
    }

    #[test]
    fn population_counts_match_config() {
        let cfg = TopologyConfig::small();
        let t = Topology::generate(&cfg, 42);
        assert_eq!(t.asns_of_type(AsType::Tier1).len(), cfg.n_tier1);
        assert_eq!(t.asns_of_type(AsType::Tier2).len(), cfg.n_tier2);
        // Content = global providers + per-country national hosters.
        let n_content = t.asns_of_type(AsType::Content).len();
        let n_countries_all = t.cities.countries().len();
        assert!(n_content >= cfg.n_content, "got {n_content}");
        assert!(n_content <= cfg.n_content + n_countries_all);
        assert_eq!(t.asns_of_type(AsType::Enterprise).len(), cfg.n_enterprise);
        assert_eq!(t.asns_of_type(AsType::Research).len(), cfg.n_research);
        // One eyeball per country in the small config.
        let n_countries = t.cities.countries().len();
        assert_eq!(t.eyeball_asns().len(), n_countries);
    }

    #[test]
    fn tier1s_form_a_clique() {
        let t = Topology::generate(&TopologyConfig::small(), 3);
        let tier1s = t.asns_of_type(AsType::Tier1);
        for &a in tier1s {
            for &b in tier1s {
                if a != b {
                    assert!(t.adjacency(a).peers.contains(&b));
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let t = Topology::generate(&TopologyConfig::small(), 5);
        for info in t.ases() {
            if info.as_type != AsType::Tier1 {
                assert!(
                    !t.adjacency(info.asn).providers.is_empty(),
                    "{} ({}) has no provider",
                    info.asn,
                    info.as_type.label()
                );
            }
        }
    }

    #[test]
    fn eyeballs_have_domestic_pops_and_user_share() {
        let t = Topology::generate(&TopologyConfig::small(), 5);
        for &asn in t.eyeball_asns() {
            let info = t.expect_as(asn);
            assert!(info.user_share > 0.0);
            assert!(!info.pops.is_empty());
            // At least one PoP in the home country.
            let home_pops = info
                .pops
                .iter()
                .filter(|&&p| t.cities.get(t.pop(p).city).country == info.home_country)
                .count();
            assert!(home_pops > 0, "{asn} has no domestic PoP");
        }
    }

    #[test]
    fn facilities_exist_and_have_members() {
        let t = Topology::generate(&TopologyConfig::small(), 9);
        assert!(!t.facilities().is_empty());
        let with_members = t
            .facilities()
            .iter()
            .filter(|f| f.member_count() > 0)
            .count();
        assert!(
            with_members * 2 > t.facilities().len(),
            "most facilities populated"
        );
        // Hub facilities should exist at flagship metros.
        let hub_fac = t
            .facilities()
            .iter()
            .filter(|f| t.cities.get(f.city).is_hub)
            .count();
        assert!(hub_fac > 0);
    }

    #[test]
    fn facility_members_have_pops_in_city() {
        let t = Topology::generate(&TopologyConfig::small(), 11);
        for f in t.facilities() {
            for &m in &f.members {
                assert!(
                    t.pop_cities(m).contains(&f.city),
                    "{m} member of {} without PoP in city",
                    f.name
                );
            }
        }
    }

    #[test]
    fn full_reachability_between_eyeballs() {
        let t = std::sync::Arc::new(Topology::generate(&TopologyConfig::small(), 13));
        let router = Router::new(std::sync::Arc::clone(&t));
        let eyes = t.eyeball_asns();
        let mut unreachable = 0;
        // Sample pairs to keep the test fast.
        for (i, &a) in eyes.iter().enumerate().step_by(7) {
            for &b in eyes.iter().skip(i + 1).step_by(11) {
                if router.as_path(a, b).is_none() {
                    unreachable += 1;
                }
            }
        }
        assert_eq!(unreachable, 0, "all eyeball pairs must be reachable");
    }

    #[test]
    fn prefixes_are_disjoint_across_ases() {
        let t = Topology::generate(&TopologyConfig::small(), 17);
        let mut bases = std::collections::HashSet::new();
        for info in t.ases() {
            for p in &info.prefixes {
                assert!(bases.insert(p.base()), "duplicate prefix {p}");
            }
        }
    }

    #[test]
    fn paper_scale_generates_reasonable_sizes() {
        let t = Topology::generate(&TopologyConfig::paper_scale(), 1);
        assert!(t.as_count() > 800, "got {}", t.as_count());
        assert!(t.facilities().len() > 50, "got {}", t.facilities().len());
        assert!(!t.ixps().is_empty());
        // Eyeball count should resemble the paper's 494 verified eyeballs
        // in order of magnitude.
        let eyes = t.eyeball_asns().len();
        assert!((200..900).contains(&eyes), "got {eyes}");
    }
}
