//! The assembled topology graph.

use crate::asys::{AsInfo, AsType, Pop};
use crate::facility::{Facility, Ixp};
use crate::ids::{Asn, FacilityId, IxpId, PopId};
use shortcuts_geo::{CityDb, CityId};
use std::collections::{HashMap, HashSet};

/// Business relationship on an inter-AS link, from the perspective of the
/// link as stored (`a`, `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` is a customer of `b` (`a` pays `b` for transit).
    CustomerOf,
    /// `a` and `b` are settlement-free peers.
    Peer,
}

/// Adjacency of one AS, split by relationship class.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    /// ASes this AS buys transit from.
    pub providers: Vec<Asn>,
    /// ASes buying transit from this AS.
    pub customers: Vec<Asn>,
    /// Settlement-free peers.
    pub peers: Vec<Asn>,
}

/// The complete synthetic Internet: geography, ASes, PoPs, facilities,
/// IXPs and the business-relationship graph.
///
/// Construct via [`crate::generator`] ([`Topology::generate`]) or
/// assemble by hand in tests with [`Topology::builder`].
#[derive(Debug)]
pub struct Topology {
    /// City database the topology is embedded in.
    pub cities: CityDb,
    asns: Vec<AsInfo>,
    asn_index: HashMap<Asn, usize>,
    pops: Vec<Pop>,
    facilities: Vec<Facility>,
    ixps: Vec<Ixp>,
    adjacency: HashMap<Asn, Adjacency>,
    /// Cached: set of cities where each AS has a PoP.
    pop_cities: HashMap<Asn, HashSet<CityId>>,
    /// Cached: facilities by city.
    facilities_by_city: HashMap<CityId, Vec<FacilityId>>,
}

impl Topology {
    /// Starts building an empty topology over the embedded city database.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new(CityDb::embedded())
    }

    /// All AS records, in insertion order.
    pub fn ases(&self) -> &[AsInfo] {
        &self.asns
    }

    /// Looks up an AS record.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.asn_index.get(&asn).map(|&i| &self.asns[i])
    }

    /// Looks up an AS record, panicking on unknown ASN (for internal use
    /// where the ASN is known-valid by construction).
    pub fn expect_as(&self, asn: Asn) -> &AsInfo {
        self.as_info(asn)
            .unwrap_or_else(|| panic!("unknown {asn} in topology"))
    }

    /// All PoPs, indexed by [`PopId`].
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// Looks up a PoP.
    pub fn pop(&self, id: PopId) -> &Pop {
        &self.pops[id.0 as usize]
    }

    /// All facilities, indexed by [`FacilityId`].
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }

    /// Looks up a facility.
    pub fn facility(&self, id: FacilityId) -> &Facility {
        &self.facilities[id.0 as usize]
    }

    /// All IXPs, indexed by [`IxpId`].
    pub fn ixps(&self) -> &[Ixp] {
        &self.ixps
    }

    /// Looks up an IXP.
    pub fn ixp(&self, id: IxpId) -> &Ixp {
        &self.ixps[id.0 as usize]
    }

    /// Adjacency record of `asn` (empty if the AS has no links).
    pub fn adjacency(&self, asn: Asn) -> &Adjacency {
        static EMPTY: std::sync::OnceLock<Adjacency> = std::sync::OnceLock::new();
        self.adjacency
            .get(&asn)
            .unwrap_or_else(|| EMPTY.get_or_init(Adjacency::default))
    }

    /// All ASNs of a given type.
    pub fn asns_of_type(&self, t: AsType) -> Vec<Asn> {
        self.asns
            .iter()
            .filter(|a| a.as_type == t)
            .map(|a| a.asn)
            .collect()
    }

    /// All eyeball ASNs.
    pub fn eyeball_asns(&self) -> Vec<Asn> {
        self.asns_of_type(AsType::Eyeball)
    }

    /// Set of cities where `asn` has a PoP.
    pub fn pop_cities(&self, asn: Asn) -> &HashSet<CityId> {
        static EMPTY: std::sync::OnceLock<HashSet<CityId>> = std::sync::OnceLock::new();
        self.pop_cities
            .get(&asn)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }

    /// Cities where both ASes have PoPs — candidate interconnection
    /// points for the router-level path expansion in netsim.
    pub fn common_pop_cities(&self, a: Asn, b: Asn) -> Vec<CityId> {
        let ca = self.pop_cities(a);
        let cb = self.pop_cities(b);
        let (small, big) = if ca.len() <= cb.len() {
            (ca, cb)
        } else {
            (cb, ca)
        };
        let mut v: Vec<CityId> = small.iter().filter(|c| big.contains(c)).copied().collect();
        v.sort();
        v
    }

    /// Facilities located in `city`.
    pub fn facilities_in_city(&self, city: CityId) -> &[FacilityId] {
        self.facilities_by_city
            .get(&city)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether `a` and `b` are directly connected (any relationship).
    pub fn are_neighbors(&self, a: Asn, b: Asn) -> bool {
        let adj = self.adjacency(a);
        adj.providers.contains(&b) || adj.customers.contains(&b) || adj.peers.contains(&b)
    }

    /// Total number of inter-AS links (each counted once).
    pub fn link_count(&self) -> usize {
        let total: usize = self
            .adjacency
            .values()
            .map(|a| a.providers.len() + a.customers.len() + a.peers.len())
            .sum();
        total / 2
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.asns.len()
    }
}

/// Incremental builder for [`Topology`]; the generator drives this, and
/// tests use it to assemble tiny hand-made topologies.
#[derive(Debug)]
pub struct TopologyBuilder {
    cities: CityDb,
    asns: Vec<AsInfo>,
    asn_index: HashMap<Asn, usize>,
    pops: Vec<Pop>,
    facilities: Vec<Facility>,
    ixps: Vec<Ixp>,
    adjacency: HashMap<Asn, Adjacency>,
}

impl TopologyBuilder {
    /// Creates an empty builder over the given city database.
    pub fn new(cities: CityDb) -> Self {
        TopologyBuilder {
            cities,
            asns: Vec::new(),
            asn_index: HashMap::new(),
            pops: Vec::new(),
            facilities: Vec::new(),
            ixps: Vec::new(),
            adjacency: HashMap::new(),
        }
    }

    /// Access to the city database during construction.
    pub fn cities(&self) -> &CityDb {
        &self.cities
    }

    /// Registers an AS. Panics on duplicate ASN (generator bug).
    pub fn add_as(&mut self, info: AsInfo) {
        let prev = self.asn_index.insert(info.asn, self.asns.len());
        assert!(prev.is_none(), "duplicate {}", info.asn);
        self.adjacency.entry(info.asn).or_default();
        self.asns.push(info);
    }

    /// Adds a PoP for an existing AS and records it on the AS. Returns
    /// the new PoP id.
    pub fn add_pop(&mut self, asn: Asn, city: CityId) -> PopId {
        let id = PopId(self.pops.len() as u32);
        let location = self.cities.get(city).location;
        self.pops.push(Pop {
            id,
            asn,
            city,
            location,
        });
        let idx = *self.asn_index.get(&asn).expect("PoP for unknown AS");
        self.asns[idx].pops.push(id);
        if !self.asns[idx]
            .countries
            .contains(&self.cities.get(city).country)
        {
            let cc = self.cities.get(city).country;
            self.asns[idx].countries.push(cc);
        }
        id
    }

    /// Records that `customer` buys transit from `provider`.
    /// Duplicate and self links are ignored.
    pub fn add_transit(&mut self, customer: Asn, provider: Asn) {
        if customer == provider {
            return;
        }
        let c = self.adjacency.entry(customer).or_default();
        if c.providers.contains(&provider) {
            return;
        }
        c.providers.push(provider);
        self.adjacency
            .entry(provider)
            .or_default()
            .customers
            .push(customer);
    }

    /// Records a settlement-free peering link. Duplicates, self links and
    /// links that already exist as transit are ignored.
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        if a == b {
            return;
        }
        {
            let adj_a = self.adjacency.entry(a).or_default();
            if adj_a.peers.contains(&b)
                || adj_a.providers.contains(&b)
                || adj_a.customers.contains(&b)
            {
                return;
            }
            adj_a.peers.push(b);
        }
        self.adjacency.entry(b).or_default().peers.push(a);
    }

    /// Registers a facility; returns its id.
    pub fn add_facility(&mut self, name: String, city: CityId, offers_cloud: bool) -> FacilityId {
        let id = FacilityId(self.facilities.len() as u32);
        self.facilities.push(Facility {
            id,
            name,
            city,
            members: Vec::new(),
            ixps: Vec::new(),
            offers_cloud,
        });
        id
    }

    /// Adds `asn` as a member of `facility` (idempotent).
    pub fn add_facility_member(&mut self, facility: FacilityId, asn: Asn) {
        let f = &mut self.facilities[facility.0 as usize];
        if !f.members.contains(&asn) {
            f.members.push(asn);
        }
    }

    /// Registers an IXP present at the given facilities; returns its id.
    pub fn add_ixp(&mut self, name: String, city: CityId, facilities: Vec<FacilityId>) -> IxpId {
        let id = IxpId(self.ixps.len() as u32);
        for &f in &facilities {
            self.facilities[f.0 as usize].ixps.push(id);
        }
        self.ixps.push(Ixp {
            id,
            name,
            city,
            facilities,
            members: Vec::new(),
        });
        id
    }

    /// Adds `asn` as an IXP member (idempotent).
    pub fn add_ixp_member(&mut self, ixp: IxpId, asn: Asn) {
        let ix = &mut self.ixps[ixp.0 as usize];
        if !ix.members.contains(&asn) {
            ix.members.push(asn);
        }
    }

    /// Finalizes the topology, computing derived caches.
    pub fn build(self) -> Topology {
        let mut pop_cities: HashMap<Asn, HashSet<CityId>> = HashMap::new();
        for pop in &self.pops {
            pop_cities.entry(pop.asn).or_default().insert(pop.city);
        }
        let mut facilities_by_city: HashMap<CityId, Vec<FacilityId>> = HashMap::new();
        for f in &self.facilities {
            facilities_by_city.entry(f.city).or_default().push(f.id);
        }
        Topology {
            cities: self.cities,
            asns: self.asns,
            asn_index: self.asn_index,
            pops: self.pops,
            facilities: self.facilities,
            ixps: self.ixps,
            adjacency: self.adjacency,
            pop_cities,
            facilities_by_city,
        }
    }
}

// Read-only snapshot accessors used by the generator module (fields are
// private to protect invariants; these expose copies, not handles).
impl TopologyBuilder {
    pub(crate) fn snapshot_impl(&self) -> Vec<(Asn, AsType, Vec<CityId>)> {
        self.asns
            .iter()
            .map(|info| {
                let cities = info
                    .pops
                    .iter()
                    .map(|&p| self.pops[p.0 as usize].city)
                    .collect();
                (info.asn, info.as_type, cities)
            })
            .collect()
    }

    pub(crate) fn facility_city_impl(&self, id: FacilityId) -> CityId {
        self.facilities[id.0 as usize].city
    }

    pub(crate) fn facility_members_impl(&self, id: FacilityId) -> Vec<Asn> {
        self.facilities[id.0 as usize].members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_geo::CountryCode;

    fn test_as(asn: u32, t: AsType, cc: &str) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            as_type: t,
            home_country: CountryCode::new(cc).unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        }
    }

    fn city(b: &TopologyBuilder, name: &str) -> CityId {
        b.cities().by_name(name).unwrap().id
    }

    #[test]
    fn builder_assembles_graph() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Tier1, "US"));
        b.add_as(test_as(2, AsType::Eyeball, "GB"));
        let lon = city(&b, "London");
        let nyc = city(&b, "NewYork");
        b.add_pop(Asn(1), lon);
        b.add_pop(Asn(1), nyc);
        b.add_pop(Asn(2), lon);
        b.add_transit(Asn(2), Asn(1));
        let t = b.build();

        assert_eq!(t.as_count(), 2);
        assert_eq!(t.link_count(), 1);
        assert!(t.are_neighbors(Asn(1), Asn(2)));
        assert_eq!(t.adjacency(Asn(2)).providers, vec![Asn(1)]);
        assert_eq!(t.adjacency(Asn(1)).customers, vec![Asn(2)]);
        assert_eq!(t.common_pop_cities(Asn(1), Asn(2)), vec![lon]);
        // AS country list got updated from PoPs.
        let info = t.expect_as(Asn(1));
        assert_eq!(info.countries.len(), 2);
    }

    #[test]
    fn duplicate_links_are_ignored() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Tier1, "US"));
        b.add_as(test_as(2, AsType::Tier2, "DE"));
        b.add_transit(Asn(2), Asn(1));
        b.add_transit(Asn(2), Asn(1));
        b.add_peering(Asn(1), Asn(2)); // already transit -> ignored
        b.add_peering(Asn(1), Asn(1)); // self -> ignored
        let t = b.build();
        assert_eq!(t.link_count(), 1);
        assert!(t.adjacency(Asn(1)).peers.is_empty());
    }

    #[test]
    fn peering_is_symmetric() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Content, "US"));
        b.add_as(test_as(2, AsType::Content, "DE"));
        b.add_peering(Asn(1), Asn(2));
        let t = b.build();
        assert_eq!(t.adjacency(Asn(1)).peers, vec![Asn(2)]);
        assert_eq!(t.adjacency(Asn(2)).peers, vec![Asn(1)]);
    }

    #[test]
    fn facility_and_ixp_registration() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Content, "NL"));
        let ams = city(&b, "Amsterdam");
        let f = b.add_facility("Colo-Amsterdam-0".into(), ams, true);
        b.add_facility_member(f, Asn(1));
        b.add_facility_member(f, Asn(1)); // idempotent
        let ix = b.add_ixp("IX-Amsterdam-0".into(), ams, vec![f]);
        b.add_ixp_member(ix, Asn(1));
        let t = b.build();
        assert_eq!(t.facility(f).member_count(), 1);
        assert_eq!(t.facility(f).ixps, vec![ix]);
        assert_eq!(t.ixp(ix).member_count(), 1);
        assert_eq!(t.facilities_in_city(ams), &[f]);
    }

    #[test]
    fn unknown_asn_lookups_are_safe() {
        let t = Topology::builder().build();
        assert!(t.as_info(Asn(99)).is_none());
        assert!(t.adjacency(Asn(99)).providers.is_empty());
        assert!(t.pop_cities(Asn(99)).is_empty());
    }
}
