//! The assembled topology graph.
//!
//! Besides the per-AS [`Adjacency`] records (the convenient,
//! HashMap-backed view), [`TopologyBuilder::build`] freezes two dense
//! representations that the routing core runs on:
//!
//! - a [`NodeIndex`] mapping every ASN to a compact [`NodeId`] in
//!   `0..n` (insertion order), shared behind an `Arc` so routing
//!   tables can carry it without borrowing the topology;
//! - a [`CsrAdjacency`] — one flat edge array in compressed-sparse-row
//!   layout with per-class (provider / customer / peer) ranges per
//!   node, so a routing sweep touches contiguous memory instead of
//!   chasing per-AS heap allocations.

use crate::asys::{AsInfo, AsType, Pop};
use crate::facility::{Facility, Ixp};
use crate::ids::{Asn, FacilityId, IxpId, NodeId, PopId};
use shortcuts_geo::{CityDb, CityId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Business relationship on an inter-AS link, from the perspective of the
/// link as stored (`a`, `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` is a customer of `b` (`a` pays `b` for transit).
    CustomerOf,
    /// `a` and `b` are settlement-free peers.
    Peer,
}

/// Adjacency of one AS, split by relationship class.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    /// ASes this AS buys transit from.
    pub providers: Vec<Asn>,
    /// ASes buying transit from this AS.
    pub customers: Vec<Asn>,
    /// Settlement-free peers.
    pub peers: Vec<Asn>,
}

/// Dense, immutable ASN ↔ [`NodeId`] mapping of one topology.
///
/// Shared behind an `Arc` between the [`Topology`] and every
/// [`crate::routing::RoutingTable`] computed over it, so tables are
/// self-contained (`'static`) while still resolving ASNs without a
/// copy of the map.
#[derive(Debug)]
pub struct NodeIndex {
    asn_to_node: HashMap<Asn, NodeId>,
    node_to_asn: Vec<Asn>,
}

impl NodeIndex {
    fn from_asns(asns: impl IntoIterator<Item = Asn>) -> Self {
        let node_to_asn: Vec<Asn> = asns.into_iter().collect();
        let asn_to_node = node_to_asn
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, NodeId(i as u32)))
            .collect();
        NodeIndex {
            asn_to_node,
            node_to_asn,
        }
    }

    /// Dense id of `asn`, if the AS exists.
    #[inline]
    pub fn node(&self, asn: Asn) -> Option<NodeId> {
        self.asn_to_node.get(&asn).copied()
    }

    /// ASN of a dense id (panics on an id from another topology).
    #[inline]
    pub fn asn(&self, node: NodeId) -> Asn {
        self.node_to_asn[node.index()]
    }

    /// Number of ASes in the index.
    pub fn len(&self) -> usize {
        self.node_to_asn.len()
    }

    /// Whether the topology has no ASes.
    pub fn is_empty(&self) -> bool {
        self.node_to_asn.is_empty()
    }
}

/// Compressed-sparse-row adjacency over [`NodeId`]s.
///
/// All edges of all nodes live in one flat `edges` array. Node `i`
/// owns `edges[start[i] .. start[i+1]]`, internally split into three
/// class ranges — providers first, then customers, then peers — so a
/// routing phase iterates exactly the class it propagates over, in
/// cache order, with no hashing and no per-AS allocation.
#[derive(Debug)]
pub struct CsrAdjacency {
    /// Row offsets, length `n + 1`.
    start: Vec<u32>,
    /// End of node `i`'s provider range (absolute edge index).
    prov_end: Vec<u32>,
    /// End of node `i`'s customer range (absolute edge index); peers
    /// run from here to `start[i + 1]`.
    cust_end: Vec<u32>,
    /// Flat edge array, grouped by node then class.
    edges: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Providers of `n` (ASes `n` buys transit from).
    #[inline]
    pub fn providers(&self, n: NodeId) -> &[NodeId] {
        &self.edges[self.start[n.index()] as usize..self.prov_end[n.index()] as usize]
    }

    /// Customers of `n` (ASes buying transit from `n`).
    #[inline]
    pub fn customers(&self, n: NodeId) -> &[NodeId] {
        &self.edges[self.prov_end[n.index()] as usize..self.cust_end[n.index()] as usize]
    }

    /// Settlement-free peers of `n`.
    #[inline]
    pub fn peers(&self, n: NodeId) -> &[NodeId] {
        &self.edges[self.cust_end[n.index()] as usize..self.start[n.index() + 1] as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.start.len() - 1
    }

    /// Number of directed edges (each undirected link counts twice).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// The complete synthetic Internet: geography, ASes, PoPs, facilities,
/// IXPs and the business-relationship graph.
///
/// Construct via [`crate::generator`] ([`Topology::generate`]) or
/// assemble by hand in tests with [`Topology::builder`].
#[derive(Debug)]
pub struct Topology {
    /// City database the topology is embedded in.
    pub cities: CityDb,
    asns: Vec<AsInfo>,
    asn_index: HashMap<Asn, usize>,
    pops: Vec<Pop>,
    facilities: Vec<Facility>,
    ixps: Vec<Ixp>,
    adjacency: HashMap<Asn, Adjacency>,
    /// Dense ASN ↔ NodeId mapping, shared with routing tables.
    node_index: Arc<NodeIndex>,
    /// Flat CSR adjacency in NodeId space (the routing core's view of
    /// `adjacency`).
    csr: CsrAdjacency,
    /// Cached: ASNs per [`AsType`], indexed by [`AsType::index`], in
    /// insertion order.
    asns_by_type: [Vec<Asn>; 6],
    /// Cached: set of cities where each AS has a PoP.
    pop_cities: HashMap<Asn, HashSet<CityId>>,
    /// Cached: facilities by city.
    facilities_by_city: HashMap<CityId, Vec<FacilityId>>,
}

impl Topology {
    /// Starts building an empty topology over the embedded city database.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new(CityDb::embedded())
    }

    /// All AS records, in insertion order.
    pub fn ases(&self) -> &[AsInfo] {
        &self.asns
    }

    /// Looks up an AS record.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.asn_index.get(&asn).map(|&i| &self.asns[i])
    }

    /// Looks up an AS record, panicking on unknown ASN (for internal use
    /// where the ASN is known-valid by construction).
    pub fn expect_as(&self, asn: Asn) -> &AsInfo {
        self.as_info(asn)
            .unwrap_or_else(|| panic!("unknown {asn} in topology"))
    }

    /// All PoPs, indexed by [`PopId`].
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// Looks up a PoP.
    pub fn pop(&self, id: PopId) -> &Pop {
        &self.pops[id.0 as usize]
    }

    /// All facilities, indexed by [`FacilityId`].
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }

    /// Looks up a facility.
    pub fn facility(&self, id: FacilityId) -> &Facility {
        &self.facilities[id.0 as usize]
    }

    /// All IXPs, indexed by [`IxpId`].
    pub fn ixps(&self) -> &[Ixp] {
        &self.ixps
    }

    /// Looks up an IXP.
    pub fn ixp(&self, id: IxpId) -> &Ixp {
        &self.ixps[id.0 as usize]
    }

    /// Adjacency record of `asn` (empty if the AS has no links).
    pub fn adjacency(&self, asn: Asn) -> &Adjacency {
        static EMPTY: std::sync::OnceLock<Adjacency> = std::sync::OnceLock::new();
        self.adjacency
            .get(&asn)
            .unwrap_or_else(|| EMPTY.get_or_init(Adjacency::default))
    }

    /// All ASNs of a given type, in insertion order (cached at build
    /// time — no scan, no allocation).
    pub fn asns_of_type(&self, t: AsType) -> &[Asn] {
        &self.asns_by_type[t.index()]
    }

    /// All eyeball ASNs.
    pub fn eyeball_asns(&self) -> &[Asn] {
        self.asns_of_type(AsType::Eyeball)
    }

    /// The shared dense ASN ↔ [`NodeId`] mapping.
    pub fn node_index(&self) -> &Arc<NodeIndex> {
        &self.node_index
    }

    /// The CSR adjacency the routing core sweeps over.
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Set of cities where `asn` has a PoP.
    pub fn pop_cities(&self, asn: Asn) -> &HashSet<CityId> {
        static EMPTY: std::sync::OnceLock<HashSet<CityId>> = std::sync::OnceLock::new();
        self.pop_cities
            .get(&asn)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }

    /// Cities where both ASes have PoPs — candidate interconnection
    /// points for the router-level path expansion in netsim.
    pub fn common_pop_cities(&self, a: Asn, b: Asn) -> Vec<CityId> {
        let ca = self.pop_cities(a);
        let cb = self.pop_cities(b);
        let (small, big) = if ca.len() <= cb.len() {
            (ca, cb)
        } else {
            (cb, ca)
        };
        let mut v: Vec<CityId> = small.iter().filter(|c| big.contains(c)).copied().collect();
        v.sort();
        v
    }

    /// Facilities located in `city`.
    pub fn facilities_in_city(&self, city: CityId) -> &[FacilityId] {
        self.facilities_by_city
            .get(&city)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether `a` and `b` are directly connected (any relationship).
    pub fn are_neighbors(&self, a: Asn, b: Asn) -> bool {
        let adj = self.adjacency(a);
        adj.providers.contains(&b) || adj.customers.contains(&b) || adj.peers.contains(&b)
    }

    /// Total number of inter-AS links (each counted once).
    pub fn link_count(&self) -> usize {
        let total: usize = self
            .adjacency
            .values()
            .map(|a| a.providers.len() + a.customers.len() + a.peers.len())
            .sum();
        total / 2
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.asns.len()
    }
}

/// Incremental builder for [`Topology`]; the generator drives this, and
/// tests use it to assemble tiny hand-made topologies.
#[derive(Debug)]
pub struct TopologyBuilder {
    cities: CityDb,
    asns: Vec<AsInfo>,
    asn_index: HashMap<Asn, usize>,
    pops: Vec<Pop>,
    facilities: Vec<Facility>,
    ixps: Vec<Ixp>,
    adjacency: HashMap<Asn, Adjacency>,
}

impl TopologyBuilder {
    /// Creates an empty builder over the given city database.
    pub fn new(cities: CityDb) -> Self {
        TopologyBuilder {
            cities,
            asns: Vec::new(),
            asn_index: HashMap::new(),
            pops: Vec::new(),
            facilities: Vec::new(),
            ixps: Vec::new(),
            adjacency: HashMap::new(),
        }
    }

    /// Access to the city database during construction.
    pub fn cities(&self) -> &CityDb {
        &self.cities
    }

    /// Registers an AS. Panics on duplicate ASN (generator bug).
    pub fn add_as(&mut self, info: AsInfo) {
        let prev = self.asn_index.insert(info.asn, self.asns.len());
        assert!(prev.is_none(), "duplicate {}", info.asn);
        self.adjacency.entry(info.asn).or_default();
        self.asns.push(info);
    }

    /// Adds a PoP for an existing AS and records it on the AS. Returns
    /// the new PoP id.
    pub fn add_pop(&mut self, asn: Asn, city: CityId) -> PopId {
        let id = PopId(self.pops.len() as u32);
        let location = self.cities.get(city).location;
        self.pops.push(Pop {
            id,
            asn,
            city,
            location,
        });
        let idx = *self.asn_index.get(&asn).expect("PoP for unknown AS");
        self.asns[idx].pops.push(id);
        if !self.asns[idx]
            .countries
            .contains(&self.cities.get(city).country)
        {
            let cc = self.cities.get(city).country;
            self.asns[idx].countries.push(cc);
        }
        id
    }

    /// Records that `customer` buys transit from `provider`.
    /// Duplicate and self links are ignored. Panics if either AS was
    /// never registered with [`TopologyBuilder::add_as`] — the CSR
    /// built at [`TopologyBuilder::build`] has no node for it.
    pub fn add_transit(&mut self, customer: Asn, provider: Asn) {
        assert!(
            self.asn_index.contains_key(&customer) && self.asn_index.contains_key(&provider),
            "transit link {customer} -> {provider} references an unregistered AS"
        );
        if customer == provider {
            return;
        }
        let c = self.adjacency.entry(customer).or_default();
        if c.providers.contains(&provider) {
            return;
        }
        c.providers.push(provider);
        self.adjacency
            .entry(provider)
            .or_default()
            .customers
            .push(customer);
    }

    /// Records a settlement-free peering link. Duplicates, self links and
    /// links that already exist as transit are ignored. Panics if
    /// either AS was never registered with [`TopologyBuilder::add_as`].
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        assert!(
            self.asn_index.contains_key(&a) && self.asn_index.contains_key(&b),
            "peering link {a} -- {b} references an unregistered AS"
        );
        if a == b {
            return;
        }
        {
            let adj_a = self.adjacency.entry(a).or_default();
            if adj_a.peers.contains(&b)
                || adj_a.providers.contains(&b)
                || adj_a.customers.contains(&b)
            {
                return;
            }
            adj_a.peers.push(b);
        }
        self.adjacency.entry(b).or_default().peers.push(a);
    }

    /// Registers a facility; returns its id.
    pub fn add_facility(&mut self, name: String, city: CityId, offers_cloud: bool) -> FacilityId {
        let id = FacilityId(self.facilities.len() as u32);
        self.facilities.push(Facility {
            id,
            name,
            city,
            members: Vec::new(),
            ixps: Vec::new(),
            offers_cloud,
        });
        id
    }

    /// Adds `asn` as a member of `facility` (idempotent).
    pub fn add_facility_member(&mut self, facility: FacilityId, asn: Asn) {
        let f = &mut self.facilities[facility.0 as usize];
        if !f.members.contains(&asn) {
            f.members.push(asn);
        }
    }

    /// Registers an IXP present at the given facilities; returns its id.
    pub fn add_ixp(&mut self, name: String, city: CityId, facilities: Vec<FacilityId>) -> IxpId {
        let id = IxpId(self.ixps.len() as u32);
        for &f in &facilities {
            self.facilities[f.0 as usize].ixps.push(id);
        }
        self.ixps.push(Ixp {
            id,
            name,
            city,
            facilities,
            members: Vec::new(),
        });
        id
    }

    /// Adds `asn` as an IXP member (idempotent).
    pub fn add_ixp_member(&mut self, ixp: IxpId, asn: Asn) {
        let ix = &mut self.ixps[ixp.0 as usize];
        if !ix.members.contains(&asn) {
            ix.members.push(asn);
        }
    }

    /// Finalizes the topology, computing derived caches: PoP cities,
    /// facilities by city, the per-type ASN lists, and the dense
    /// [`NodeIndex`] + [`CsrAdjacency`] the routing core runs on.
    pub fn build(self) -> Topology {
        let mut pop_cities: HashMap<Asn, HashSet<CityId>> = HashMap::new();
        for pop in &self.pops {
            pop_cities.entry(pop.asn).or_default().insert(pop.city);
        }
        let mut facilities_by_city: HashMap<CityId, Vec<FacilityId>> = HashMap::new();
        for f in &self.facilities {
            facilities_by_city.entry(f.city).or_default().push(f.id);
        }

        let mut asns_by_type: [Vec<Asn>; 6] = Default::default();
        for info in &self.asns {
            asns_by_type[info.as_type.index()].push(info.asn);
        }

        // Freeze the dense views. NodeId order is AS insertion order,
        // and within a node the CSR keeps each class's builder
        // insertion order — both deterministic, so identical builder
        // inputs yield identical flat layouts.
        let node_index = Arc::new(NodeIndex::from_asns(self.asns.iter().map(|a| a.asn)));
        let n = self.asns.len();
        let mut start = Vec::with_capacity(n + 1);
        let mut prov_end = Vec::with_capacity(n);
        let mut cust_end = Vec::with_capacity(n);
        let total_edges: usize = self
            .adjacency
            .values()
            .map(|a| a.providers.len() + a.customers.len() + a.peers.len())
            .sum();
        let mut edges = Vec::with_capacity(total_edges);
        start.push(0u32);
        let empty = Adjacency::default();
        for info in &self.asns {
            let adj = self.adjacency.get(&info.asn).unwrap_or(&empty);
            let to_node = |asn: &Asn| node_index.node(*asn).expect("edge to unknown AS");
            edges.extend(adj.providers.iter().map(to_node));
            prov_end.push(edges.len() as u32);
            edges.extend(adj.customers.iter().map(to_node));
            cust_end.push(edges.len() as u32);
            edges.extend(adj.peers.iter().map(to_node));
            start.push(edges.len() as u32);
        }
        let csr = CsrAdjacency {
            start,
            prov_end,
            cust_end,
            edges,
        };

        Topology {
            cities: self.cities,
            asns: self.asns,
            asn_index: self.asn_index,
            pops: self.pops,
            facilities: self.facilities,
            ixps: self.ixps,
            adjacency: self.adjacency,
            node_index,
            csr,
            asns_by_type,
            pop_cities,
            facilities_by_city,
        }
    }
}

// Read-only snapshot accessors used by the generator module (fields are
// private to protect invariants; these expose copies, not handles).
impl TopologyBuilder {
    pub(crate) fn snapshot_impl(&self) -> Vec<(Asn, AsType, Vec<CityId>)> {
        self.asns
            .iter()
            .map(|info| {
                let cities = info
                    .pops
                    .iter()
                    .map(|&p| self.pops[p.0 as usize].city)
                    .collect();
                (info.asn, info.as_type, cities)
            })
            .collect()
    }

    pub(crate) fn facility_city_impl(&self, id: FacilityId) -> CityId {
        self.facilities[id.0 as usize].city
    }

    pub(crate) fn facility_members_impl(&self, id: FacilityId) -> Vec<Asn> {
        self.facilities[id.0 as usize].members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_geo::CountryCode;

    fn test_as(asn: u32, t: AsType, cc: &str) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            as_type: t,
            home_country: CountryCode::new(cc).unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        }
    }

    fn city(b: &TopologyBuilder, name: &str) -> CityId {
        b.cities().by_name(name).unwrap().id
    }

    #[test]
    fn builder_assembles_graph() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Tier1, "US"));
        b.add_as(test_as(2, AsType::Eyeball, "GB"));
        let lon = city(&b, "London");
        let nyc = city(&b, "NewYork");
        b.add_pop(Asn(1), lon);
        b.add_pop(Asn(1), nyc);
        b.add_pop(Asn(2), lon);
        b.add_transit(Asn(2), Asn(1));
        let t = b.build();

        assert_eq!(t.as_count(), 2);
        assert_eq!(t.link_count(), 1);
        assert!(t.are_neighbors(Asn(1), Asn(2)));
        assert_eq!(t.adjacency(Asn(2)).providers, vec![Asn(1)]);
        assert_eq!(t.adjacency(Asn(1)).customers, vec![Asn(2)]);
        assert_eq!(t.common_pop_cities(Asn(1), Asn(2)), vec![lon]);
        // AS country list got updated from PoPs.
        let info = t.expect_as(Asn(1));
        assert_eq!(info.countries.len(), 2);
    }

    #[test]
    fn duplicate_links_are_ignored() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Tier1, "US"));
        b.add_as(test_as(2, AsType::Tier2, "DE"));
        b.add_transit(Asn(2), Asn(1));
        b.add_transit(Asn(2), Asn(1));
        b.add_peering(Asn(1), Asn(2)); // already transit -> ignored
        b.add_peering(Asn(1), Asn(1)); // self -> ignored
        let t = b.build();
        assert_eq!(t.link_count(), 1);
        assert!(t.adjacency(Asn(1)).peers.is_empty());
    }

    #[test]
    fn peering_is_symmetric() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Content, "US"));
        b.add_as(test_as(2, AsType::Content, "DE"));
        b.add_peering(Asn(1), Asn(2));
        let t = b.build();
        assert_eq!(t.adjacency(Asn(1)).peers, vec![Asn(2)]);
        assert_eq!(t.adjacency(Asn(2)).peers, vec![Asn(1)]);
    }

    #[test]
    fn facility_and_ixp_registration() {
        let mut b = Topology::builder();
        b.add_as(test_as(1, AsType::Content, "NL"));
        let ams = city(&b, "Amsterdam");
        let f = b.add_facility("Colo-Amsterdam-0".into(), ams, true);
        b.add_facility_member(f, Asn(1));
        b.add_facility_member(f, Asn(1)); // idempotent
        let ix = b.add_ixp("IX-Amsterdam-0".into(), ams, vec![f]);
        b.add_ixp_member(ix, Asn(1));
        let t = b.build();
        assert_eq!(t.facility(f).member_count(), 1);
        assert_eq!(t.facility(f).ixps, vec![ix]);
        assert_eq!(t.ixp(ix).member_count(), 1);
        assert_eq!(t.facilities_in_city(ams), &[f]);
    }

    #[test]
    fn csr_mirrors_adjacency_and_node_index_roundtrips() {
        let mut b = Topology::builder();
        b.add_as(test_as(10, AsType::Tier1, "US"));
        b.add_as(test_as(20, AsType::Tier2, "DE"));
        b.add_as(test_as(30, AsType::Eyeball, "FR"));
        b.add_as(test_as(40, AsType::Eyeball, "GB"));
        b.add_transit(Asn(20), Asn(10));
        b.add_transit(Asn(30), Asn(20));
        b.add_transit(Asn(40), Asn(20));
        b.add_peering(Asn(30), Asn(40));
        let t = b.build();

        let idx = t.node_index();
        assert_eq!(idx.len(), 4);
        for (i, info) in t.ases().iter().enumerate() {
            let node = idx.node(info.asn).expect("every AS indexed");
            assert_eq!(node, NodeId(i as u32), "insertion order");
            assert_eq!(idx.asn(node), info.asn);
        }
        assert!(idx.node(Asn(999)).is_none());

        // Every class range of every node mirrors the Adjacency vecs,
        // in the same order.
        let csr = t.csr();
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 2 * t.link_count());
        for info in t.ases() {
            let node = idx.node(info.asn).unwrap();
            let adj = t.adjacency(info.asn);
            let to_asns = |nodes: &[NodeId]| nodes.iter().map(|&n| idx.asn(n)).collect::<Vec<_>>();
            assert_eq!(to_asns(csr.providers(node)), adj.providers);
            assert_eq!(to_asns(csr.customers(node)), adj.customers);
            assert_eq!(to_asns(csr.peers(node)), adj.peers);
        }
    }

    #[test]
    fn per_type_asn_lists_are_cached_in_insertion_order() {
        let mut b = Topology::builder();
        b.add_as(test_as(3, AsType::Eyeball, "US"));
        b.add_as(test_as(1, AsType::Tier1, "US"));
        b.add_as(test_as(2, AsType::Eyeball, "DE"));
        let t = b.build();
        assert_eq!(t.eyeball_asns(), &[Asn(3), Asn(2)]);
        assert_eq!(t.asns_of_type(AsType::Tier1), &[Asn(1)]);
        assert!(t.asns_of_type(AsType::Research).is_empty());
    }

    #[test]
    fn unknown_asn_lookups_are_safe() {
        let t = Topology::builder().build();
        assert!(t.as_info(Asn(99)).is_none());
        assert!(t.adjacency(Asn(99)).providers.is_empty());
        assert!(t.pop_cities(Asn(99)).is_empty());
    }
}
