//! Incremental repair of routing tables under topology deltas.
//!
//! A [`super::RoutingTable`] is a fixpoint of the valley-free offer
//! rules over the base CSR. When a delta batch masks links or downs
//! ASes, most of that fixpoint survives: under *deletions* the offer
//! set of every node only shrinks, so an entry can change **only if
//! the path it stores crosses removed state**. Repair exploits this
//! with a *reverse-reachability cut*:
//!
//! 1. **Relevance (O(1) per removed link).** The old table stores, for
//!    every node, the next hop of its best path. A removed link
//!    `u — v` can affect the table at all only if `next_node[u] == v`
//!    or `next_node[v] == u` (a downed AS only if it held a route).
//!    For a single-link delta, almost every destination table fails
//!    this test and is untouched — the aggregate speedup over full
//!    recompute comes mostly from here.
//! 2. **Dirty cut (chain walk).** A node is *dirty* iff its stored
//!    next-hop chain crosses a removed link or downed node. The walk
//!    memoizes verdicts along each chain, so marking is O(n) total.
//!    Every clean entry is provably still exact: its stored offer
//!    survives unchanged (the chain suffix is clean by construction),
//!    and all other offers only worsened, so the stored minimum is
//!    still the minimum — including the next-hop ASN tie-break.
//! 3. **Restricted sweep.** Dirty entries are reset to unreached and
//!    the three-phase bucket-queue sweep re-runs seeded from the
//!    *clean frontier* — the in-view neighbors of dirty nodes that
//!    hold surviving entries — instead of from the destination.
//!    Buckets drain in increasing path length, so the drain order (and
//!    therefore the `(class, len, next-hop)` tie-break) is identical
//!    to a from-scratch sweep restricted to the dirty region.
//!
//! Restorations (`LinkUp` / `AsUp`) can *improve* arbitrarily distant
//! entries — monotonicity cuts the other way — so batches containing
//! an up-delta rebuild affected tables fresh via
//! [`compute_table_view`], which is also the per-epoch oracle the
//! equivalence proptests compare repair against, and the fallback when
//! the dirty cut's estimated sweep cost approaches a full sweep's.

use super::{
    compute_table, compute_table_shortest, RouteClass, RouteEntry, RoutingTable, SweepState,
};
use crate::delta::{DeltaView, TopologyDelta};
use crate::graph::Topology;
use crate::ids::{Asn, NodeId};

/// What [`repair_table`] did to bring a table up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The delta cannot touch this table; only the epoch stamp moves.
    Unchanged,
    /// The dirty cut was re-swept in place.
    Repaired {
        /// Edge offers examined by the restricted sweep (the work a
        /// full recompute would have multiplied across the whole CSR).
        rescanned: u64,
    },
    /// Fell back to a fresh [`compute_table_view`] (restoration batch,
    /// or a dirty cut covering most of the graph).
    FullRebuild,
}

/// Full valley-free sweep toward `dst` restricted to the links `view`
/// allows — the per-epoch oracle. An empty view is the base topology
/// and delegates to [`compute_table`] so the churn-free path stays
/// byte-identical. A downed destination keeps its own zero-length
/// entry but offers nothing, so everyone else ends unreached.
pub fn compute_table_view(topo: &Topology, view: &DeltaView, dst: Asn) -> RoutingTable {
    if view.is_empty() {
        return compute_table(topo, dst);
    }
    let nodes = topo.node_index();
    let csr = topo.csr();
    let mut st = SweepState::new(nodes.len(), dst);
    let Some(d) = nodes.node(dst) else {
        return st.finish(topo, dst);
    };
    st.entries[d.index()] = RouteEntry::new(RouteClass::Customer, 0, dst);
    st.next_node[d.index()] = d;

    // Phase 1: customer routes climb provider links (BFS).
    let mut frontier = vec![d];
    let mut next_frontier: Vec<NodeId> = Vec::new();
    let mut len = 1u32;
    while !frontier.is_empty() {
        for &u in &frontier {
            let u_asn = nodes.asn(u);
            for &p in csr.providers(u) {
                if !view.allows(u, p) {
                    continue;
                }
                let e = &mut st.entries[p.index()];
                if e.is_unreached() {
                    *e = RouteEntry::new(RouteClass::Customer, len, u_asn);
                    st.next_node[p.index()] = u;
                    next_frontier.push(p);
                } else if e.path_len() == len && u_asn < e.next_hop() {
                    e.set_next_hop(u_asn);
                    st.next_node[p.index()] = u;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        next_frontier.clear();
        len += 1;
    }

    // Phase 2: one peer hop, in place.
    for i in 0..st.entries.len() {
        let e = st.entries[i];
        if e.is_unreached() || e.class() != RouteClass::Customer {
            continue;
        }
        let u = NodeId(i as u32);
        let u_asn = nodes.asn(u);
        let cand_len = e.path_len() + 1;
        for &p in csr.peers(u) {
            if !view.allows(u, p) {
                continue;
            }
            let pe = &mut st.entries[p.index()];
            let accept = pe.is_unreached()
                || (pe.class() == RouteClass::Peer
                    && (cand_len, u_asn) < (pe.path_len(), pe.next_hop()));
            if accept {
                *pe = RouteEntry::new(RouteClass::Peer, cand_len, u_asn);
                st.next_node[p.index()] = u;
            }
        }
    }

    // Phase 3: routes descend customer links (bucket queue).
    let mut buckets: Vec<Vec<NodeId>> = Vec::new();
    for (i, e) in st.entries.iter().enumerate() {
        if !e.is_unreached() {
            let d = e.path_len() as usize;
            if buckets.len() <= d {
                buckets.resize_with(d + 1, Vec::new);
            }
            buckets[d].push(NodeId(i as u32));
        }
    }
    let mut dist = 0usize;
    while dist < buckets.len() {
        let bucket = std::mem::take(&mut buckets[dist]);
        let len = dist as u32 + 1;
        for &u in &bucket {
            let u_asn = nodes.asn(u);
            for &cust in csr.customers(u) {
                if !view.allows(u, cust) {
                    continue;
                }
                let ce = &mut st.entries[cust.index()];
                if ce.is_unreached() {
                    *ce = RouteEntry::new(RouteClass::Provider, len, u_asn);
                    st.next_node[cust.index()] = u;
                    if buckets.len() <= len as usize {
                        buckets.resize_with(len as usize + 1, Vec::new);
                    }
                    buckets[len as usize].push(cust);
                } else if ce.class() == RouteClass::Provider
                    && ce.path_len() == len
                    && u_asn < ce.next_hop()
                {
                    ce.set_next_hop(u_asn);
                    st.next_node[cust.index()] = u;
                }
            }
        }
        dist += 1;
    }

    st.finish(topo, dst)
}

/// View-restricted shortest-path sweep (the ablation policy). No
/// incremental variant exists for it — stale shortest-path tables are
/// always rebuilt through here.
pub fn compute_table_shortest_view(topo: &Topology, view: &DeltaView, dst: Asn) -> RoutingTable {
    if view.is_empty() {
        return compute_table_shortest(topo, dst);
    }
    let nodes = topo.node_index();
    let csr = topo.csr();
    let mut st = SweepState::new(nodes.len(), dst);
    let Some(d) = nodes.node(dst) else {
        return st.finish(topo, dst);
    };
    st.entries[d.index()] = RouteEntry::new(RouteClass::Customer, 0, dst);
    st.next_node[d.index()] = d;
    let mut frontier = vec![d];
    let mut next_frontier: Vec<NodeId> = Vec::new();
    let mut len = 1u32;
    while !frontier.is_empty() {
        for &u in &frontier {
            let u_asn = nodes.asn(u);
            for &nb in csr
                .providers(u)
                .iter()
                .chain(csr.customers(u))
                .chain(csr.peers(u))
            {
                if !view.allows(u, nb) {
                    continue;
                }
                let e = &mut st.entries[nb.index()];
                if e.is_unreached() {
                    *e = RouteEntry::new(RouteClass::Customer, len, u_asn);
                    st.next_node[nb.index()] = u;
                    next_frontier.push(nb);
                } else if e.path_len() == len && u_asn < e.next_hop() {
                    e.set_next_hop(u_asn);
                    st.next_node[nb.index()] = u;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        next_frontier.clear();
        len += 1;
    }
    st.finish(topo, dst)
}

/// Verdict of one candidate offer against the incumbent entry, under
/// the full `(class, len, next-hop ASN)` preference order with
/// unreached as +∞.
enum Offer {
    /// Candidate strictly better in `(class, len)` — entry replaced,
    /// target must (re)propagate.
    Set,
    /// Equal `(class, len)`, smaller next-hop ASN — tie-break update
    /// only, nothing to propagate.
    Tie,
    /// Candidate loses.
    No,
}

/// Applies one offer to `target`'s entry, returning what happened.
fn offer(
    st: &mut SweepState,
    target: NodeId,
    class: RouteClass,
    len: u32,
    from_asn: Asn,
    from_node: NodeId,
) -> Offer {
    let e = &mut st.entries[target.index()];
    if e.is_unreached() {
        *e = RouteEntry::new(class, len, from_asn);
        st.next_node[target.index()] = from_node;
        return Offer::Set;
    }
    if (class, len) < (e.class(), e.path_len()) {
        *e = RouteEntry::new(class, len, from_asn);
        st.next_node[target.index()] = from_node;
        return Offer::Set;
    }
    if (class, len) == (e.class(), e.path_len()) && from_asn < e.next_hop() {
        e.set_next_hop(from_asn);
        st.next_node[target.index()] = from_node;
        return Offer::Tie;
    }
    Offer::No
}

/// Brings `old` (valid under `old_view`) up to date with `new_view`
/// (= `old_view` + `batch`). Returns `None` when the table is provably
/// untouched — the caller just bumps the epoch stamp — otherwise the
/// repaired (or rebuilt) table, entry-for-entry identical to
/// [`compute_table_view`] under `new_view`.
pub fn repair_table(
    topo: &Topology,
    old_view: &DeltaView,
    new_view: &DeltaView,
    batch: &[TopologyDelta],
    old: &RoutingTable,
) -> (Option<RoutingTable>, RepairOutcome) {
    if old_view == new_view {
        return (None, RepairOutcome::Unchanged);
    }
    // Restorations can improve entries anywhere; rebuild fresh.
    if batch
        .iter()
        .any(|d| matches!(d, TopologyDelta::LinkUp { .. } | TopologyDelta::AsUp { .. }))
    {
        let t = compute_table_view(topo, new_view, old.destination);
        return (Some(t), RepairOutcome::FullRebuild);
    }
    let nodes = topo.node_index();
    let Some(dst_node) = nodes.node(old.destination) else {
        // Unknown destination: the table is degenerate (only the
        // destination itself) and no delta can change that.
        return (None, RepairOutcome::Unchanged);
    };

    // The stored chains were all valid under `old_view`, so only this
    // batch's own removals can break them. Collect those as tiny dense
    // lists — the O(n) chain walk below then does a couple of integer
    // compares per step instead of hashing into the view's sets, which
    // measured ~10× slower across a whole table.
    let mut new_down: Vec<NodeId> = Vec::new();
    let mut new_masked: Vec<(NodeId, NodeId)> = Vec::new();
    for d in batch {
        match *d {
            TopologyDelta::AsDown { asn } => {
                if let Some(x) = nodes.node(asn) {
                    if old_view.node_up(x) {
                        new_down.push(x);
                    }
                }
            }
            TopologyDelta::LinkDown { a, b } => {
                if let (Some(u), Some(v)) = (nodes.node(a), nodes.node(b)) {
                    if old_view.allows(u, v) {
                        new_masked.push((u, v));
                    }
                }
            }
            // Restorations were handled above.
            TopologyDelta::AsUp { .. } | TopologyDelta::LinkUp { .. } => {}
        }
    }
    // `nx` must be checked too: the memoized walk normally discovers a
    // downed next hop when it advances onto it, but the destination is
    // pinned clean below, so a chain ending at a downed destination
    // would otherwise never see the break.
    let breaks = |x: NodeId, nx: NodeId| {
        new_down.contains(&x)
            || new_down.contains(&nx)
            || new_masked.contains(&(x, nx))
            || new_masked.contains(&(nx, x))
    };

    // Relevance: does any newly removed link carry a stored next hop,
    // or any newly downed node hold a route?
    let uses_link = |u: NodeId, v: NodeId| {
        (!old.entries[u.index()].is_unreached() && old.next_node[u.index()] == v)
            || (!old.entries[v.index()].is_unreached() && old.next_node[v.index()] == u)
    };
    let link_removed = new_masked.iter().any(|&(u, v)| uses_link(u, v));
    let node_removed = new_down
        .iter()
        .any(|&w| !old.entries[w.index()].is_unreached());
    if !link_removed && !node_removed {
        return (None, RepairOutcome::Unchanged);
    }

    // Dirty cut: memoized walk of every stored next-hop chain. The
    // destination's self-entry is pinned clean even when the
    // destination is down (it offers nothing then, matching the view
    // sweep); unreached entries stay unreached under deletions.
    const UNKNOWN: u8 = 0;
    const CLEAN: u8 = 1;
    const DIRTY: u8 = 2;
    let csr = topo.csr();
    let n = old.entries.len();
    let mut status = vec![UNKNOWN; n];
    status[dst_node.index()] = CLEAN;
    let mut trail: Vec<NodeId> = Vec::new();
    let mut dirty_count = 0usize;

    // The restricted sweep's cost is the dirty set's own edge budget
    // *plus* the frontier above it: phase-3 seeds are the providers
    // adjacent to the cut, and a high-degree hub on that frontier
    // scans all its customers however small the cut is. Accumulate
    // that estimate as nodes go dirty (deduped seeds make it an
    // overestimate for overlapping frontiers — exactly the cuts where
    // rebuilding wins) and bail to the plain full sweep mid-walk the
    // moment repair can't beat it. The 16× margin is deliberately
    // aggressive: the restricted sweep's scattered access measures
    // several times the full sweep's streamlined per-edge cost, so
    // re-sweeping only pays off for cuts well over an order of
    // magnitude below the edge count. Calibrated on the
    // `routing_churn` bench — single-link cuts win ~15×, while wide
    // AS-down cuts would lose ~2.5× if re-swept and instead rebuild
    // at walk-cost parity. The floor keeps toy graphs (where both
    // paths are trivially cheap) on the repair path so its machinery
    // stays exercised. Misjudging is cheap in both directions:
    // rebuild is always correct, repair is exact.
    let sweep_cost = |x: NodeId| {
        let mut c = csr.providers(x).len() + csr.customers(x).len() + csr.peers(x).len();
        for &u in csr.providers(x) {
            c += csr.customers(u).len();
        }
        c
    };
    let budget = csr.edge_count().max(8192);
    let mut est = 0usize;

    for i in 0..n {
        if status[i] != UNKNOWN {
            continue;
        }
        if old.entries[i].is_unreached() {
            status[i] = CLEAN;
            continue;
        }
        let mut x = NodeId(i as u32);
        let verdict = loop {
            if status[x.index()] != UNKNOWN {
                break status[x.index()];
            }
            if breaks(x, old.next_node[x.index()]) {
                status[x.index()] = DIRTY;
                dirty_count += 1;
                est += sweep_cost(x);
                break DIRTY;
            }
            trail.push(x);
            x = old.next_node[x.index()];
        };
        for &y in &trail {
            status[y.index()] = verdict;
            if verdict == DIRTY {
                dirty_count += 1;
                est += sweep_cost(y);
            }
        }
        trail.clear();
        if 16 * est > budget {
            let t = compute_table_view(topo, new_view, old.destination);
            return (Some(t), RepairOutcome::FullRebuild);
        }
    }
    if dirty_count == 0 {
        return (None, RepairOutcome::Unchanged);
    }
    let dirty: Vec<NodeId> = (0..n)
        .filter(|&i| status[i] == DIRTY)
        .map(|i| NodeId(i as u32))
        .collect();

    // Reset the dirty cut; everything clean is already final.
    let dst = old.destination;
    let mut st = SweepState {
        entries: old.entries.clone(),
        next_node: old.next_node.clone(),
    };
    for &x in &dirty {
        st.entries[x.index()] = RouteEntry::unreached(dst);
        st.next_node[x.index()] = NodeId(0);
    }

    let mut rescanned = 0u64;
    let mut buckets: Vec<Vec<NodeId>> = Vec::new();
    let mut seeded = vec![false; n];
    fn push_bucket(buckets: &mut Vec<Vec<NodeId>>, d: usize, x: NodeId) {
        if buckets.len() <= d {
            buckets.resize_with(d + 1, Vec::new);
        }
        buckets[d].push(x);
    }

    // Phase 1 (restricted): seeds are the in-view customers of dirty
    // nodes that hold surviving customer routes; propagation re-enters
    // the dirty region only (offers into clean entries are provable
    // no-ops, counted as rescans).
    for &p in &dirty {
        if !new_view.node_up(p) {
            continue;
        }
        for &c in csr.customers(p) {
            if seeded[c.index()] || !new_view.node_up(c) {
                continue;
            }
            let e = st.entries[c.index()];
            if e.is_unreached() || e.class() != RouteClass::Customer {
                continue;
            }
            seeded[c.index()] = true;
            push_bucket(&mut buckets, e.path_len() as usize, c);
        }
    }
    let mut dist = 0usize;
    while dist < buckets.len() {
        let bucket = std::mem::take(&mut buckets[dist]);
        let len = dist as u32 + 1;
        for &u in &bucket {
            let e = st.entries[u.index()];
            if e.is_unreached()
                || e.class() != RouteClass::Customer
                || e.path_len() as usize != dist
            {
                continue;
            }
            let u_asn = nodes.asn(u);
            for &p in csr.providers(u) {
                if !new_view.allows(u, p) {
                    continue;
                }
                rescanned += 1;
                if let Offer::Set = offer(&mut st, p, RouteClass::Customer, len, u_asn, u) {
                    push_bucket(&mut buckets, len as usize, p);
                }
            }
        }
        dist += 1;
    }

    // Phase 2 (restricted): customer-route holders are final now, so
    // dirty nodes pull the best surviving peer offer directly.
    for &p in &dirty {
        if !new_view.node_up(p) {
            continue;
        }
        for &u in csr.peers(p) {
            if !new_view.allows(u, p) {
                continue;
            }
            let e = st.entries[u.index()];
            if e.is_unreached() || e.class() != RouteClass::Customer {
                continue;
            }
            rescanned += 1;
            offer(
                &mut st,
                p,
                RouteClass::Peer,
                e.path_len() + 1,
                nodes.asn(u),
                u,
            );
        }
    }

    // Phase 3 (restricted): seeds are every in-view route holder
    // adjacent-above a dirty node — plus dirty nodes already repaired
    // in phases 1–2, which may pass routes further down.
    buckets.clear();
    seeded.iter_mut().for_each(|s| *s = false);
    for &p in &dirty {
        let e = st.entries[p.index()];
        if !e.is_unreached() && !seeded[p.index()] {
            seeded[p.index()] = true;
            push_bucket(&mut buckets, e.path_len() as usize, p);
        }
        if !new_view.node_up(p) {
            continue;
        }
        for &u in csr.providers(p) {
            if seeded[u.index()] || !new_view.node_up(u) {
                continue;
            }
            let e = st.entries[u.index()];
            if e.is_unreached() {
                continue;
            }
            seeded[u.index()] = true;
            push_bucket(&mut buckets, e.path_len() as usize, u);
        }
    }
    let mut dist = 0usize;
    while dist < buckets.len() {
        let bucket = std::mem::take(&mut buckets[dist]);
        let len = dist as u32 + 1;
        for &u in &bucket {
            let e = st.entries[u.index()];
            if e.is_unreached() || e.path_len() as usize != dist {
                continue;
            }
            let u_asn = nodes.asn(u);
            for &cust in csr.customers(u) {
                if !new_view.allows(u, cust) {
                    continue;
                }
                rescanned += 1;
                if let Offer::Set = offer(&mut st, cust, RouteClass::Provider, len, u_asn, u) {
                    push_bucket(&mut buckets, len as usize, cust);
                }
            }
        }
        dist += 1;
    }

    (
        Some(st.finish(topo, dst)),
        RepairOutcome::Repaired { rescanned },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asys::{AsInfo, AsType};
    use crate::graph::TopologyBuilder;
    use shortcuts_geo::CountryCode;

    fn mk_as(b: &mut TopologyBuilder, asn: u32, t: AsType) {
        b.add_as(AsInfo {
            asn: Asn(asn),
            as_type: t,
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        });
    }

    /// The routing tests' classic valley topology: tier-1s 1,2 peered;
    /// tier-2s 3,4 peered; stubs 5,6; transit 3→1, 4→2, 5→3, 6→4.
    fn valley_topology() -> Topology {
        let mut b = Topology::builder();
        mk_as(&mut b, 1, AsType::Tier1);
        mk_as(&mut b, 2, AsType::Tier1);
        mk_as(&mut b, 3, AsType::Tier2);
        mk_as(&mut b, 4, AsType::Tier2);
        mk_as(&mut b, 5, AsType::Eyeball);
        mk_as(&mut b, 6, AsType::Eyeball);
        b.add_transit(Asn(3), Asn(1));
        b.add_transit(Asn(4), Asn(2));
        b.add_transit(Asn(5), Asn(3));
        b.add_transit(Asn(6), Asn(4));
        b.add_peering(Asn(1), Asn(2));
        b.add_peering(Asn(3), Asn(4));
        b.build()
    }

    fn assert_tables_equal(a: &RoutingTable, b: &RoutingTable, ctx: &str) {
        assert_eq!(a.destination, b.destination, "{ctx}");
        assert_eq!(a.reachable_count(), b.reachable_count(), "{ctx}");
        for i in 0..a.entries.len() {
            let node = NodeId(i as u32);
            assert_eq!(a.route_at(node), b.route_at(node), "{ctx}: node {i}");
            assert_eq!(
                a.as_path_from(node),
                b.as_path_from(node),
                "{ctx}: node {i}"
            );
        }
    }

    #[test]
    fn link_down_repair_matches_view_oracle() {
        let topo = valley_topology();
        let base = DeltaView::empty();
        let batch = [TopologyDelta::LinkDown {
            a: Asn(3),
            b: Asn(4),
        }];
        let view = base.applied(&topo, &batch);
        for dst in [1u32, 2, 3, 4, 5, 6] {
            let old = compute_table(&topo, Asn(dst));
            let oracle = compute_table_view(&topo, &view, Asn(dst));
            let (repaired, outcome) = repair_table(&topo, &base, &view, &batch, &old);
            match repaired {
                Some(t) => assert_tables_equal(&t, &oracle, &format!("dst {dst}")),
                None => {
                    assert_eq!(outcome, RepairOutcome::Unchanged);
                    assert_tables_equal(&old, &oracle, &format!("dst {dst} (unchanged)"));
                }
            }
        }
    }

    #[test]
    fn irrelevant_link_is_an_o1_no_op() {
        let topo = valley_topology();
        let base = DeltaView::empty();
        // The 3→1 transit never carries a best path toward stub 6:
        // 3 prefers its peer 4, and 1 its peer 2.
        let batch = [TopologyDelta::LinkDown {
            a: Asn(3),
            b: Asn(1),
        }];
        let view = base.applied(&topo, &batch);
        let old = compute_table(&topo, Asn(6));
        let (repaired, outcome) = repair_table(&topo, &base, &view, &batch, &old);
        assert!(repaired.is_none());
        assert_eq!(outcome, RepairOutcome::Unchanged);
    }

    #[test]
    fn destination_down_leaves_only_its_self_entry() {
        let topo = valley_topology();
        let base = DeltaView::empty();
        let batch = [TopologyDelta::AsDown { asn: Asn(6) }];
        let view = base.applied(&topo, &batch);
        let old = compute_table(&topo, Asn(6));
        let oracle = compute_table_view(&topo, &view, Asn(6));
        assert_eq!(oracle.reachable_count(), 1);
        assert!(oracle.route(Asn(6)).is_some());
        let (repaired, _) = repair_table(&topo, &base, &view, &batch, &old);
        assert_tables_equal(&repaired.unwrap(), &oracle, "downed dst");
    }

    #[test]
    fn restoration_batches_rebuild_fresh() {
        let topo = valley_topology();
        let down = [TopologyDelta::LinkDown {
            a: Asn(3),
            b: Asn(4),
        }];
        let view1 = DeltaView::empty().applied(&topo, &down);
        let up = [TopologyDelta::LinkUp {
            a: Asn(3),
            b: Asn(4),
        }];
        let view2 = view1.applied(&topo, &up);
        let old = compute_table_view(&topo, &view1, Asn(6));
        let (repaired, outcome) = repair_table(&topo, &view1, &view2, &up, &old);
        assert_eq!(outcome, RepairOutcome::FullRebuild);
        // Fully restored view ≡ the base table.
        assert_tables_equal(
            &repaired.unwrap(),
            &compute_table(&topo, Asn(6)),
            "restored",
        );
    }
}
