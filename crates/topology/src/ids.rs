//! Strongly typed identifiers for topology entities.
//!
//! Keeping these as distinct newtypes (rather than bare `u32`s) prevents a
//! whole family of "passed a facility id where an ASN was expected" bugs
//! in the multi-crate pipeline that follows.

use std::fmt;

/// Autonomous System Number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Dense index of an AS within one assembled topology.
///
/// ASNs are sparse (the generator hands out realistic numbers up to the
/// tens of thousands); a `NodeId` is the AS's position in the
/// topology's insertion-ordered AS table, so `0..n` is contiguous and
/// can index flat arrays directly. The mapping lives in
/// [`crate::graph::NodeIndex`] and is fixed once
/// [`crate::graph::TopologyBuilder::build`] runs — routing tables and
/// the CSR adjacency are all expressed in this space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a flat-array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a point of presence within the topology (global, not
/// per-AS: a PoP belongs to exactly one AS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PopId(pub u32);

impl fmt::Display for PopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pop{}", self.0)
    }
}

/// Identifier of a colocation facility (mirrors PeeringDB facility ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FacilityId(pub u32);

impl fmt::Display for FacilityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fac{}", self.0)
    }
}

/// Identifier of an Internet Exchange Point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IxpId(pub u32);

impl fmt::Display for IxpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ixp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats() {
        assert_eq!(Asn(3356).to_string(), "AS3356");
        assert_eq!(PopId(7).to_string(), "pop7");
        assert_eq!(FacilityId(34).to_string(), "fac34");
        assert_eq!(IxpId(1).to_string(), "ixp1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<_> = [Asn(1), Asn(2), Asn(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(Asn(1) < Asn(2));
        assert!(FacilityId(10) > FacilityId(2));
    }
}
