//! Autonomous systems: classification, geographic footprint, prefixes.

use crate::ids::{Asn, PopId};
use crate::ip::Prefix;
use shortcuts_geo::{CityId, CountryCode, GeoPoint};

/// Business classification of an AS.
///
/// The generator uses the type to decide geographic footprint, provider
/// choice and peering appetite; the datasets crate uses it to assign
/// APNIC-style user-coverage numbers (eyeballs get real coverage,
/// enterprises get noise); the paper's methodology distinguishes eyeball
/// endpoints (§2.1), research-hosted PlanetLab relays (§2.3.1) and
/// everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsType {
    /// Global transit-free backbone (tier-1). PoPs on every continent.
    Tier1,
    /// Regional transit provider (tier-2). PoPs within one region.
    Tier2,
    /// Access / eyeball ISP serving end users in one country.
    Eyeball,
    /// Content / cloud provider with presence at major hubs.
    Content,
    /// Stub enterprise network (single-homed, no users to speak of).
    Enterprise,
    /// Research / NREN network (hosts PlanetLab sites).
    Research,
}

impl AsType {
    /// All types, stable order.
    pub const ALL: [AsType; 6] = [
        AsType::Tier1,
        AsType::Tier2,
        AsType::Eyeball,
        AsType::Content,
        AsType::Enterprise,
        AsType::Research,
    ];

    /// Position of this type in [`AsType::ALL`] (dense array index).
    pub fn index(self) -> usize {
        match self {
            AsType::Tier1 => 0,
            AsType::Tier2 => 1,
            AsType::Eyeball => 2,
            AsType::Content => 3,
            AsType::Enterprise => 4,
            AsType::Research => 5,
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            AsType::Tier1 => "tier1",
            AsType::Tier2 => "tier2",
            AsType::Eyeball => "eyeball",
            AsType::Content => "content",
            AsType::Enterprise => "enterprise",
            AsType::Research => "research",
        }
    }
}

/// A point of presence: a router location of an AS in some city.
#[derive(Debug, Clone)]
pub struct Pop {
    /// Globally unique PoP id.
    pub id: PopId,
    /// Owning AS.
    pub asn: Asn,
    /// City the PoP is in.
    pub city: CityId,
    /// Exact location (city center in this model).
    pub location: GeoPoint,
}

/// Full record of an autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Business classification.
    pub as_type: AsType,
    /// Home country (for eyeballs: the country whose users it serves;
    /// for transits: country of headquarters).
    pub home_country: CountryCode,
    /// All countries with at least one PoP.
    pub countries: Vec<CountryCode>,
    /// PoP ids owned by this AS (indexes into [`crate::Topology::pops`]).
    pub pops: Vec<PopId>,
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Prefix>,
    /// Fraction of the home country's Internet users served (eyeballs
    /// only; 0 for other types). Drives the synthetic APNIC dataset.
    pub user_share: f64,
    /// Whether the AS sells cloud/VM services (content/cloud providers
    /// and some colo-resident hosters). Used for Table 1 enrichment.
    pub offers_cloud: bool,
}

impl AsInfo {
    /// Whether this AS is an eyeball access network.
    pub fn is_eyeball(&self) -> bool {
        self.as_type == AsType::Eyeball
    }

    /// Whether this AS provides transit (tier-1 or tier-2).
    pub fn is_transit(&self) -> bool {
        matches!(self.as_type, AsType::Tier1 | AsType::Tier2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = AsType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), AsType::ALL.len());
    }

    #[test]
    fn classification_helpers() {
        let mk = |t| AsInfo {
            asn: Asn(1),
            as_type: t,
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        };
        assert!(mk(AsType::Eyeball).is_eyeball());
        assert!(!mk(AsType::Content).is_eyeball());
        assert!(mk(AsType::Tier1).is_transit());
        assert!(mk(AsType::Tier2).is_transit());
        assert!(!mk(AsType::Enterprise).is_transit());
    }
}
