//! IPv4 prefixes and address allocation.
//!
//! Every AS in the synthetic topology originates one or more IPv4
//! prefixes. Individual addresses (router interfaces in facilities, probe
//! hosts, PlanetLab nodes) are carved out of these prefixes by an
//! [`IpAllocator`]. The datasets crate builds its CAIDA-style prefix→AS
//! table from the same prefixes, so IP-to-ASN mapping is consistent by
//! construction — except where the staleness model deliberately breaks it
//! to exercise the paper's §2.2 filters.

use crate::ids::Asn;
use std::fmt;
use std::net::Ipv4Addr;

/// An IPv4 prefix (`base/len`).
///
/// Invariant (enforced by [`Prefix::new`]): the host bits of `base` are
/// zero and `len <= 32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    base: u32,
    len: u8,
}

/// Error constructing a [`Prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length greater than 32.
    LengthTooLong,
    /// Host bits of the base address were not zero.
    HostBitsSet,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthTooLong => write!(f, "prefix length must be <= 32"),
            PrefixError::HostBitsSet => write!(f, "host bits must be zero"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Prefix {
    /// Creates a prefix, validating that host bits are clear.
    pub fn new(base: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthTooLong);
        }
        let base_u = u32::from(base);
        let mask = Self::mask_for(len);
        if base_u & !mask != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Prefix { base: base_u, len })
    }

    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network mask for this prefix.
    pub fn mask(&self) -> u32 {
        Self::mask_for(self.len)
    }

    /// Base address.
    pub fn base(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// Prefix length in bits (CIDR notation; a prefix always covers at
    /// least one address, so there is no `is_empty` counterpart).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered by this prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & self.mask() == self.base
    }

    /// The `i`-th address in the prefix (0 = base), or `None` if out of
    /// range.
    pub fn nth(&self, i: u64) -> Option<Ipv4Addr> {
        if i >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(self.base + i as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

/// Sequential IPv4 allocator over the synthetic address space.
///
/// ASes receive `/18` blocks carved out of `10.0.0.0/8`-style space
/// extended over the full 32-bit range (this is a simulation — there is
/// no requirement to avoid reserved ranges, but we start at `16.0.0.0`
/// to keep addresses looking "public").
#[derive(Debug)]
pub struct IpAllocator {
    next_block: u32,
    block_bits: u8,
}

impl IpAllocator {
    /// Default per-AS prefix length.
    pub const DEFAULT_PREFIX_LEN: u8 = 18;

    /// Creates an allocator handing out `/len` blocks.
    pub fn new(len: u8) -> Self {
        assert!((8..=24).contains(&len), "unreasonable block size");
        IpAllocator {
            // Start allocations at 16.0.0.0.
            next_block: 16u32 << 24,
            block_bits: len,
        }
    }

    /// Allocates the next `/len` block.
    ///
    /// Panics if the synthetic address space is exhausted (cannot happen
    /// at the topology sizes used here; treat as a logic error).
    pub fn alloc_prefix(&mut self) -> Prefix {
        let base = self.next_block;
        let size = 1u32 << (32 - self.block_bits);
        self.next_block = self
            .next_block
            .checked_add(size)
            .expect("synthetic IPv4 space exhausted");
        Prefix::new(Ipv4Addr::from(base), self.block_bits)
            .expect("allocator produces aligned blocks")
    }
}

impl Default for IpAllocator {
    fn default() -> Self {
        IpAllocator::new(Self::DEFAULT_PREFIX_LEN)
    }
}

/// A prefix origination record: which AS originates which prefix.
///
/// The topology generator produces one per allocated prefix; the
/// datasets crate turns these into the CAIDA-style `prefix2as` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Origination {
    /// The originated prefix.
    pub prefix: Prefix,
    /// The originating AS.
    pub asn: Asn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_rejects_bad_inputs() {
        assert_eq!(
            Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 24),
            Err(PrefixError::HostBitsSet)
        );
        assert_eq!(
            Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 33),
            Err(PrefixError::LengthTooLong)
        );
    }

    #[test]
    fn prefix_contains_and_size() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap();
        assert!(p.contains(Ipv4Addr::new(10, 1, 200, 3)));
        assert!(!p.contains(Ipv4Addr::new(10, 2, 0, 0)));
        assert_eq!(p.size(), 65536);
    }

    #[test]
    fn prefix_nth_addresses() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 0), 24).unwrap();
        assert_eq!(p.nth(0), Some(Ipv4Addr::new(10, 1, 2, 0)));
        assert_eq!(p.nth(255), Some(Ipv4Addr::new(10, 1, 2, 255)));
        assert_eq!(p.nth(256), None);
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let p = Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0).unwrap();
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(p.size(), 1u64 << 32);
    }

    #[test]
    fn allocator_hands_out_disjoint_blocks() {
        let mut alloc = IpAllocator::default();
        let a = alloc.alloc_prefix();
        let b = alloc.alloc_prefix();
        assert_ne!(a, b);
        assert!(!a.contains(b.base()));
        assert!(!b.contains(a.base()));
        assert_eq!(a.len(), IpAllocator::DEFAULT_PREFIX_LEN);
    }

    #[test]
    fn allocator_blocks_are_contiguous() {
        let mut alloc = IpAllocator::new(20);
        let a = alloc.alloc_prefix();
        let b = alloc.alloc_prefix();
        assert_eq!(u32::from(b.base()), u32::from(a.base()) + (1 << 12));
    }

    #[test]
    fn display_format() {
        let p = Prefix::new(Ipv4Addr::new(16, 0, 0, 0), 18).unwrap();
        assert_eq!(p.to_string(), "16.0.0.0/18");
    }
}
