//! Byte budgets for the engine's caches.
//!
//! A [`MemoryBudget`] is one number — a total byte allowance for an
//! engine stack — carved into fixed shares for the two caches that
//! dominate residency: the router's destination-table cache and the
//! ping engine's pair cache. The service's `WorldPool` applies the
//! *same* total as a pool-level allowance across whole warmed stacks.
//!
//! The contract that makes budgeting safe is that every cached value
//! is a **deterministic world fact**: evicting it and recomputing it
//! later yields the identical bytes. A budget therefore never changes
//! results — only how much is resident at once — and the equivalence
//! suites assert exactly that (budgeted runs are byte-identical to
//! unbudgeted ones).
//!
//! Budgets are *approximate* by design: accounting uses cheap
//! per-entry size estimates ([`crate::routing::RoutingTable::approx_bytes`]
//! and the pair cache's per-entry estimate), not allocator truth.
//! They bound residency within a small constant factor, which is what
//! an operator sizing a host actually needs.

use std::fmt;

/// Fraction of the total allotted to the router's destination-table
/// cache (per mille, to keep the arithmetic integral).
const ROUTER_SHARE_PER_MILLE: u64 = 450;
/// Fraction of the total allotted to the ping engine's pair cache.
const PAIR_SHARE_PER_MILLE: u64 = 450;
// The remaining 10% is slack for the fixed-size parts of a warmed
// stack (host registry, latency model, counters) that are not
// individually accounted.

/// A byte allowance for an engine stack's caches, or unbounded.
///
/// `MemoryBudget::default()` is unbounded — existing call sites keep
/// their grow-forever behaviour unless a budget is set explicitly
/// (CLI `--memory-budget`, or the `memory` field on the campaign /
/// sweep / service configs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MemoryBudget {
    total: Option<u64>,
}

impl MemoryBudget {
    /// No limit: caches grow forever (the pre-budget behaviour).
    pub fn unbounded() -> Self {
        Self { total: None }
    }

    /// A hard total of `bytes` across the stack's caches.
    pub fn bytes(bytes: u64) -> Self {
        Self { total: Some(bytes) }
    }

    /// Parses `"<n>"`, `"<n>K"`, `"<n>M"` or `"<n>G"` (case
    /// insensitive, binary units) into a budget. `"unbounded"`,
    /// `"none"` and `"0"` mean no limit.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("unbounded") || s.eq_ignore_ascii_case("none") || s == "0" {
            return Ok(Self::unbounded());
        }
        let (digits, mult) = match s.as_bytes().last() {
            Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 1u64 << 10),
            Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 1u64 << 20),
            Some(b'g') | Some(b'G') => (&s[..s.len() - 1], 1u64 << 30),
            _ => (s, 1),
        };
        let n: u64 = digits
            .parse()
            .map_err(|_| format!("invalid memory budget '{s}' (expected <bytes>[K|M|G])"))?;
        let bytes = n
            .checked_mul(mult)
            .ok_or_else(|| format!("memory budget '{s}' overflows u64"))?;
        if bytes == 0 {
            return Ok(Self::unbounded());
        }
        Ok(Self::bytes(bytes))
    }

    /// The total allowance in bytes, or `None` when unbounded.
    pub fn total_bytes(&self) -> Option<u64> {
        self.total
    }

    pub fn is_unbounded(&self) -> bool {
        self.total.is_none()
    }

    /// The share reserved for the router's destination-table cache.
    pub fn router_bytes(&self) -> Option<u64> {
        self.total.map(|t| t / 1000 * ROUTER_SHARE_PER_MILLE)
    }

    /// The share reserved for the ping engine's pair cache (split
    /// evenly across its shards by the cache itself).
    pub fn pair_bytes(&self) -> Option<u64> {
        self.total.map(|t| t / 1000 * PAIR_SHARE_PER_MILLE)
    }

    /// Rejects budgets too small to be useful for a concrete world:
    /// the router share must hold at least `min_tables` destination
    /// tables of `table_bytes` each, and the pair share at least one
    /// entry of `pair_entry_bytes` per shard. Catching this up front
    /// (at the CLI, or when a session attaches a world) turns silent
    /// thrashing into an actionable error.
    pub fn ensure_fits(
        &self,
        table_bytes: u64,
        min_tables: u64,
        pair_entry_bytes: u64,
        pair_shards: u64,
    ) -> Result<(), String> {
        let Some(total) = self.total else {
            return Ok(());
        };
        let need_router = table_bytes.saturating_mul(min_tables);
        if self.router_bytes().unwrap_or(u64::MAX) < need_router {
            return Err(format!(
                "memory budget {total} B is too small: its router share \
                 ({} B) cannot hold {min_tables} routing table(s) of ~{table_bytes} B \
                 for this world; raise --memory-budget to at least {} B",
                self.router_bytes().unwrap_or(0),
                need_router * 1000 / ROUTER_SHARE_PER_MILLE + 1000,
            ));
        }
        let need_pair = pair_entry_bytes.saturating_mul(pair_shards);
        if self.pair_bytes().unwrap_or(u64::MAX) < need_pair {
            return Err(format!(
                "memory budget {total} B is too small: its pair-cache share \
                 ({} B) cannot hold one ~{pair_entry_bytes} B entry in each of \
                 {pair_shards} shards; raise --memory-budget to at least {} B",
                self.pair_bytes().unwrap_or(0),
                need_pair * 1000 / PAIR_SHARE_PER_MILLE + 1000,
            ));
        }
        Ok(())
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.total {
            None => write!(f, "unbounded"),
            Some(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_plain_bytes_and_binary_suffixes() {
        assert_eq!(
            MemoryBudget::parse("1234").unwrap().total_bytes(),
            Some(1234)
        );
        assert_eq!(
            MemoryBudget::parse("8K").unwrap().total_bytes(),
            Some(8 * 1024)
        );
        assert_eq!(
            MemoryBudget::parse("3m").unwrap().total_bytes(),
            Some(3 << 20)
        );
        assert_eq!(
            MemoryBudget::parse("2G").unwrap().total_bytes(),
            Some(2 << 30)
        );
    }

    #[test]
    fn parse_treats_zero_and_keywords_as_unbounded() {
        assert!(MemoryBudget::parse("0").unwrap().is_unbounded());
        assert!(MemoryBudget::parse("unbounded").unwrap().is_unbounded());
        assert!(MemoryBudget::parse("NONE").unwrap().is_unbounded());
        assert!(MemoryBudget::default().is_unbounded());
    }

    #[test]
    fn parse_rejects_garbage_and_overflow() {
        assert!(MemoryBudget::parse("").is_err());
        assert!(MemoryBudget::parse("12X").is_err());
        assert!(MemoryBudget::parse("-5M").is_err());
        assert!(MemoryBudget::parse("99999999999999999999G").is_err());
        assert!(MemoryBudget::parse("18446744073709551615G").is_err());
    }

    #[test]
    fn shares_split_the_total() {
        let b = MemoryBudget::bytes(1_000_000);
        assert_eq!(b.router_bytes(), Some(450_000));
        assert_eq!(b.pair_bytes(), Some(450_000));
        assert!(MemoryBudget::unbounded().router_bytes().is_none());
    }

    #[test]
    fn ensure_fits_rejects_budgets_below_one_table() {
        // Router share of 4500 B cannot hold one 8 KiB table.
        let b = MemoryBudget::bytes(10_000);
        let err = b.ensure_fits(8192, 1, 100, 64).unwrap_err();
        assert!(err.contains("router share"), "{err}");
        // A comfortable budget passes.
        MemoryBudget::bytes(10 << 20)
            .ensure_fits(8192, 1, 100, 64)
            .unwrap();
        // Unbounded always passes.
        MemoryBudget::unbounded()
            .ensure_fits(u64::MAX, 4, u64::MAX, 64)
            .unwrap();
    }

    #[test]
    fn ensure_fits_rejects_pair_share_below_one_entry_per_shard() {
        // Router table tiny, but 64 shards × 200 B entries need
        // 12800 B of pair share; total 20000 gives only 9000.
        let b = MemoryBudget::bytes(20_000);
        let err = b.ensure_fits(16, 1, 200, 64).unwrap_err();
        assert!(err.contains("pair-cache share"), "{err}");
    }

    #[test]
    fn display_reports_bytes_or_unbounded() {
        assert_eq!(MemoryBudget::bytes(4096).to_string(), "4096");
        assert_eq!(MemoryBudget::unbounded().to_string(), "unbounded");
    }
}
